"""Deterministic wire-fault injection: chaos ops, writer, and proxy.

The resilience claims of the serving stack (CRC frame integrity,
retries, breakers, heartbeats — :mod:`repro.net`) are only claims until
something actually mangles the wire.  This module is that something,
built to be *reproducible*: every fault decision flows from a seeded
:class:`numpy.random.Generator` keyed by ``(seed, stream_id)``, so a
failing chaos run replays bit-for-bit from its config.

Three layers, smallest first:

* :class:`ChaosOps` — the sans-io fault planner.  Feed it a chunk of
  bytes, get back a :class:`ChunkPlan`: possibly delayed, corrupted
  (per-byte Bernoulli XOR), split into partial writes, truncated
  mid-chunk, or dropped with a connection reset.  All counters live
  here.
* :class:`ChaosWriter` — in-process wrapper giving one
  ``asyncio.StreamWriter`` a chaotic send path (tests without sockets).
* :class:`ChaosProxy` — a standalone TCP proxy: point a client at its
  port, it pumps bytes to the real gateway through a :class:`ChaosOps`
  pair per connection.  :meth:`ChaosProxy.partition` simulates a full
  network partition (existing connections die, new ones are refused)
  until :meth:`ChaosProxy.heal`.

Nothing here knows about frames on purpose: faults land on arbitrary
byte boundaries, which is exactly what TCP delivers and exactly what
the protocol's length prefix + CRC trailer must survive.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = ["ChaosConfig", "ChaosOps", "ChaosProxy", "ChaosWriter", "ChunkPlan"]

#: Proxy read size — large enough that several frames share a chunk,
#: small enough that big frames span chunks (both paths get exercised).
_CHUNK = 65536


@dataclass(frozen=True)
class ChaosConfig(object):
    """Fault probabilities for one chaotic stream direction.

    All probabilities are per *chunk* except ``corrupt_p``, which is
    per *byte* (a chunk's corrupted-byte count is Binomial(n, p)).
    Zero everywhere (the default) makes every layer a bit-exact
    passthrough — chaos is strictly opt-in.
    """

    seed: int = 0
    corrupt_p: float = 0.0
    truncate_p: float = 0.0
    reset_p: float = 0.0
    latency_p: float = 0.0
    latency_s: float = 0.02
    partial_write_p: float = 0.0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ChunkPlan(object):
    """What :meth:`ChaosOps.plan` decided for one chunk."""

    parts: List[bytes] = field(default_factory=list)
    delay_s: float = 0.0
    truncated: bool = False
    reset: bool = False


class ChaosOps(object):
    """Deterministic per-stream fault planner (sans-io).

    ``stream_id`` separates the random streams of different
    connections/directions under one seed, so adding a connection never
    shifts the fault pattern of another.
    """

    def __init__(self, config: ChaosConfig, stream_id: int = 0) -> None:
        self.config = config
        self.stream_id = stream_id
        self._rng = np.random.default_rng([config.seed, stream_id])
        self.chunks = 0
        self.bytes_seen = 0
        self.corrupted_bytes = 0
        self.corrupted_chunks = 0
        self.truncations = 0
        self.resets = 0
        self.delays = 0
        self.partial_writes = 0

    def plan(self, chunk: bytes) -> ChunkPlan:
        """Decide the fate of ``chunk``; updates counters."""
        cfg = self.config
        rng = self._rng
        self.chunks += 1
        self.bytes_seen += len(chunk)
        plan = ChunkPlan()
        if cfg.latency_p > 0 and rng.random() < cfg.latency_p:
            plan.delay_s = cfg.latency_s * (0.5 + float(rng.random()))
            self.delays += 1
        if cfg.reset_p > 0 and rng.random() < cfg.reset_p:
            plan.reset = True
            self.resets += 1
            return plan
        data = chunk
        if cfg.truncate_p > 0 and rng.random() < cfg.truncate_p and len(data) > 1:
            cut = int(rng.integers(1, len(data)))
            data = data[:cut]
            plan.truncated = True
            self.truncations += 1
        if cfg.corrupt_p > 0 and data:
            buf = bytearray(data)
            mask = rng.random(len(buf)) < cfg.corrupt_p
            hits = np.flatnonzero(mask)
            if hits.size:
                # XOR with a nonzero byte so a hit always flips something
                flips = rng.integers(1, 256, size=hits.size)
                for pos, flip in zip(hits.tolist(), flips.tolist()):
                    buf[pos] ^= flip
                self.corrupted_bytes += int(hits.size)
                self.corrupted_chunks += 1
                data = bytes(buf)
        if (
            cfg.partial_write_p > 0
            and len(data) > 1
            and rng.random() < cfg.partial_write_p
        ):
            cut = int(rng.integers(1, len(data)))
            plan.parts = [data[:cut], data[cut:]]
            self.partial_writes += 1
        else:
            plan.parts = [data] if data else []
        return plan

    def to_dict(self) -> dict:
        """Injection counters (aggregated by the proxy per direction)."""
        return {
            "chunks": self.chunks,
            "bytes": self.bytes_seen,
            "corrupted_bytes": self.corrupted_bytes,
            "corrupted_chunks": self.corrupted_chunks,
            "truncations": self.truncations,
            "resets": self.resets,
            "delays": self.delays,
            "partial_writes": self.partial_writes,
        }


class ChaosWriter(object):
    """In-process chaotic send path over a real ``StreamWriter``.

    Mirrors the writer API the protocol helpers use (``write``,
    ``drain``, ``close``, ``wait_closed``), applying a
    :class:`ChaosOps` plan to every write.  A reset plan closes the
    underlying transport — the peer sees a dropped connection, the
    writer raises ``ConnectionResetError`` on the *next* use, exactly
    like a real torn socket.
    """

    def __init__(self, writer: asyncio.StreamWriter, ops: ChaosOps) -> None:
        self._writer = writer
        self.ops = ops
        self._dead = False
        self._pending_plans: List[ChunkPlan] = []

    def write(self, data: bytes) -> None:
        if self._dead:
            raise ConnectionResetError("chaos: connection was reset")
        self._pending_plans.append(self.ops.plan(bytes(data)))

    async def drain(self) -> None:
        plans, self._pending_plans = self._pending_plans, []
        for plan in plans:
            if self._dead:
                raise ConnectionResetError("chaos: connection was reset")
            if plan.delay_s:
                await asyncio.sleep(plan.delay_s)
            if plan.reset:
                self._dead = True
                self._writer.close()
                raise ConnectionResetError("chaos: connection was reset")
            for part in plan.parts:
                self._writer.write(part)
                await self._writer.drain()
            if plan.truncated:
                self._dead = True
                self._writer.close()

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    def get_extra_info(self, name: str, default=None):
        return self._writer.get_extra_info(name, default)


class _ProxyConn(object):
    """Both writers of one proxied connection, closable as a unit."""

    __slots__ = ("client_writer", "upstream_writer", "tasks")

    def __init__(
        self,
        client_writer: asyncio.StreamWriter,
        upstream_writer: asyncio.StreamWriter,
    ) -> None:
        self.client_writer = client_writer
        self.upstream_writer = upstream_writer
        self.tasks: Set["asyncio.Task"] = set()

    def kill(self) -> None:
        for writer in (self.client_writer, self.upstream_writer):
            try:
                writer.close()
            except Exception:
                pass


class ChaosProxy(object):
    """Chaotic TCP proxy in front of a real gateway.

    Every accepted connection gets an upstream connection to
    ``(target_host, target_port)`` and two pump tasks, each with its
    own :class:`ChaosOps` stream (``stream_id`` = connection index × 2
    for client→gateway, +1 for gateway→client), so fault patterns are
    independent per connection *and* per direction, and fully
    reproducible from ``config.seed``.

    :meth:`partition` drops every live connection and refuses new ones
    until :meth:`heal`; :meth:`kill_connections` is the one-shot
    variant (existing connections die, new ones connect fine).
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        config: Optional[ChaosConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.config = config if config is not None else ChaosConfig()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._partitioned = False
        self._conn_seq = itertools.count()
        self._conns: Set[_ProxyConn] = set()
        self._ops: List[ChaosOps] = []
        self.refused = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start proxying; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting and drop every proxied connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.kill_connections()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # fault controls
    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Network partition: kill live connections, refuse new ones."""
        self._partitioned = True
        for conn in list(self._conns):
            conn.kill()

    def heal(self) -> None:
        """End the partition; new connections flow again."""
        self._partitioned = False

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    async def kill_connections(self) -> None:
        """Drop every live proxied connection (new ones still accepted)."""
        for conn in list(self._conns):
            conn.kill()
        # give the pump tasks a beat to observe their dead sockets
        tasks = [t for c in list(self._conns) for t in c.tasks]
        if tasks:
            await asyncio.wait(tasks, timeout=1.0)

    def injected(self) -> Dict[str, int]:
        """Aggregate fault counters across all connections/directions."""
        total: Dict[str, int] = {}
        for ops in self._ops:
            for key, value in ops.to_dict().items():
                total[key] = total.get(key, 0) + value
        total["connections"] = len(self._ops) // 2
        total["refused"] = self.refused
        return total

    # ------------------------------------------------------------------
    # pumping
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._partitioned:
            self.refused += 1
            writer.close()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except (ConnectionError, OSError):
            self.refused += 1
            writer.close()
            return
        index = next(self._conn_seq)
        ops_up = ChaosOps(self.config, stream_id=index * 2)
        ops_down = ChaosOps(self.config, stream_id=index * 2 + 1)
        self._ops.extend((ops_up, ops_down))
        conn = _ProxyConn(writer, up_writer)
        self._conns.add(conn)
        pump_up = asyncio.ensure_future(
            self._pump(reader, up_writer, ops_up, conn)
        )
        pump_down = asyncio.ensure_future(
            self._pump(up_reader, writer, ops_down, conn)
        )
        conn.tasks.update((pump_up, pump_down))
        try:
            await asyncio.wait({pump_up, pump_down})
        finally:
            conn.kill()
            self._conns.discard(conn)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        ops: ChaosOps,
        conn: _ProxyConn,
    ) -> None:
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    break
                if self._partitioned:
                    break
                plan = ops.plan(chunk)
                if plan.delay_s:
                    await asyncio.sleep(plan.delay_s)
                if plan.reset:
                    break
                for part in plan.parts:
                    writer.write(part)
                    await writer.drain()
                if plan.truncated:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            # one dead direction kills the whole proxied connection —
            # half-duplex zombies would defeat dead-peer detection
            conn.kill()
