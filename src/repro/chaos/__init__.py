"""Deterministic wire-fault injection for the serving stack.

See :mod:`repro.chaos.transport` for the fault planner
(:class:`ChaosOps`), the in-process chaotic writer
(:class:`ChaosWriter`), and the standalone chaos TCP proxy
(:class:`ChaosProxy`) the chaos soak drives its traffic through.
"""

from repro.chaos.transport import (
    ChaosConfig,
    ChaosOps,
    ChaosProxy,
    ChaosWriter,
    ChunkPlan,
)

__all__ = ["ChaosConfig", "ChaosOps", "ChaosProxy", "ChaosWriter", "ChunkPlan"]
