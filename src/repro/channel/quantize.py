"""Fixed-point message formats for the hardware decoder.

The paper represents P and R messages as 8-bit fixed-point numbers
(Section IV-A) and reports "Quantization 6" in Table II (6 significant
message bits in the comparison).  :class:`FixedPointFormat` models a
signed two's-complement format with saturating arithmetic, matching what
the synthesized datapath does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat(object):
    """Signed fixed-point format: ``total_bits`` with ``frac_bits`` fraction.

    Values are stored as integers in ``[-(2^(B-1)-1), 2^(B-1)-1]``
    (symmetric saturation: the most negative code is unused, as is usual
    in min-sum datapaths so that negation never overflows).
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("need at least 2 bits (sign + magnitude)")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                f"frac_bits {self.frac_bits} out of range for "
                f"{self.total_bits}-bit format"
            )

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_code(self) -> int:
        """Smallest representable integer code (symmetric)."""
        return -self.max_code

    @property
    def scale(self) -> float:
        """Real value of one LSB step."""
        return 1.0 / (1 << self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> saturated integer codes (int32)."""
        scaled = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(scaled, self.min_code, self.max_code).astype(np.int32)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def saturate(self, codes: np.ndarray) -> np.ndarray:
        """Clamp integer codes into the representable range."""
        return np.clip(codes, self.min_code, self.max_code).astype(np.int32)


#: The paper's 8-bit message format (Section IV-A): 8 bits, 2 fractional.
MESSAGE_8BIT = FixedPointFormat(total_bits=8, frac_bits=2)

#: The 6-bit quantization reported in Table II's comparison row.
MESSAGE_6BIT = FixedPointFormat(total_bits=6, frac_bits=1)


def quantize_llrs(
    llrs: np.ndarray, fmt: FixedPointFormat = MESSAGE_8BIT
) -> np.ndarray:
    """Quantize channel LLRs into the decoder's message format."""
    return fmt.quantize(llrs)
