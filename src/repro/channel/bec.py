"""Binary erasure channel — the density-evolution testbed.

Each transmitted bit is erased independently with probability
``epsilon``; surviving bits arrive noiselessly.  In LLR terms: erased
positions carry 0 (no information), known positions carry a large
LLR of the correct sign.  Min-sum handles this representation natively
(an erased input contributes the zero minimum until resolved), so the
same decoders used for AWGN validate the density-evolution thresholds
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import bpsk_modulate
from repro.utils.rng import SeedLike, as_generator

#: LLR magnitude representing a perfectly known bit.
_KNOWN_LLR = 50.0


@dataclass
class ErasureChannel(object):
    """BEC with erasure probability ``epsilon``."""

    epsilon: float
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon {self.epsilon} outside [0, 1]")
        self._rng = as_generator(self.seed)

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Transmit bits; erased positions return 0 LLR."""
        bits = np.asarray(bits, dtype=np.uint8)
        symbols = bpsk_modulate(bits)
        erased = self._rng.random(bits.shape[0]) < self.epsilon
        return np.where(erased, 0.0, _KNOWN_LLR * symbols)

    def erase_mask(self, n: int) -> np.ndarray:
        """Draw an erasure pattern without transmitting (for tests)."""
        return self._rng.random(n) < self.epsilon
