"""BPSK modulation over an AWGN channel.

Conventions match the paper's Algorithm 1: bit 0 maps to +1, bit 1 to
-1; the received sample is ``y = x + n`` with ``n ~ N(0, sigma^2)``; the
channel LLR (a-posteriori initialization) is ``P_n = 2 y_n / sigma^2``,
positive meaning "bit is 0".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator


def bpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Map bits {0, 1} to symbols {+1.0, -1.0}."""
    bits = np.asarray(bits, dtype=np.uint8)
    return 1.0 - 2.0 * bits.astype(np.float64)


def ebno_to_sigma(ebno_db: float, rate: float) -> float:
    """Noise standard deviation for a given Eb/N0 (dB) and code rate.

    With unit symbol energy, ``Es/N0 = rate * Eb/N0`` and
    ``sigma^2 = 1 / (2 * Es/N0)``.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"code rate must be in (0, 1], got {rate}")
    esno = rate * 10.0 ** (ebno_db / 10.0)
    return math.sqrt(1.0 / (2.0 * esno))


def snr_to_sigma(snr_db: float) -> float:
    """Noise standard deviation for a given symbol SNR Es/N0 (dB)."""
    esno = 10.0 ** (snr_db / 10.0)
    return math.sqrt(1.0 / (2.0 * esno))


def llr_from_channel(received: np.ndarray, sigma: float) -> np.ndarray:
    """Channel LLRs ``2 y / sigma^2`` (Algorithm 1 initialization)."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return 2.0 * np.asarray(received, dtype=np.float64) / (sigma * sigma)


@dataclass
class AwgnChannel(object):
    """A reusable BPSK/AWGN channel with its own random stream.

    Parameters
    ----------
    sigma:
        Noise standard deviation per real dimension.
    seed:
        Seed or generator for the noise stream.
    """

    sigma: float
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        self._rng = as_generator(self.seed)

    @classmethod
    def from_ebno(
        cls, ebno_db: float, rate: float, seed: SeedLike = None
    ) -> "AwgnChannel":
        """Construct from Eb/N0 in dB at a given code rate."""
        return cls(ebno_to_sigma(ebno_db, rate), seed)

    def transmit(self, bits: np.ndarray) -> np.ndarray:
        """Modulate bits and add noise; returns received samples."""
        symbols = bpsk_modulate(bits)
        if self.sigma == 0:
            return symbols
        noise = self._rng.normal(0.0, self.sigma, size=symbols.shape)
        return symbols + noise

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Transmit and convert straight to channel LLRs.

        For the noiseless channel (``sigma == 0``) returns ``+/-LARGE``
        saturated LLRs so downstream fixed-point paths stay finite.
        """
        received = self.transmit(bits)
        if self.sigma == 0:
            return 100.0 * received
        return llr_from_channel(received, self.sigma)
