"""Bit interleaving: spreading fading bursts across the codeword.

A block-fading channel erases runs of consecutive bits; an LDPC code
handles scattered erasures far better than bursts.  The classic fix is
a row-column block interleaver between encoder and modulator (and the
matching deinterleaver on the LLRs before decoding).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class BlockInterleaver(object):
    """Row-column block interleaver.

    Writes the sequence row-wise into a ``rows x cols`` array and reads
    it column-wise.  ``rows * cols`` must equal the block length.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ReproError(f"bad interleaver shape {rows} x {cols}")
        self.rows = rows
        self.cols = cols
        self.length = rows * cols
        self._perm = (
            np.arange(self.length).reshape(rows, cols).T.reshape(-1)
        )
        self._inv = np.argsort(self._perm)

    @classmethod
    def for_length(cls, length: int, depth: int = 32) -> "BlockInterleaver":
        """Build an interleaver for a given block length.

        ``depth`` is the target row count; it is reduced to the largest
        divisor of ``length`` at most ``depth`` so the shape is exact.
        """
        rows = max(d for d in range(1, depth + 1) if length % d == 0)
        return cls(rows, length // rows)

    def interleave(self, values: np.ndarray) -> np.ndarray:
        """Permute a block (bits or LLRs)."""
        values = np.asarray(values)
        if values.shape != (self.length,):
            raise ReproError(
                f"block length {values.shape} != ({self.length},)"
            )
        return values[self._perm]

    def deinterleave(self, values: np.ndarray) -> np.ndarray:
        """Inverse permutation."""
        values = np.asarray(values)
        if values.shape != (self.length,):
            raise ReproError(
                f"block length {values.shape} != ({self.length},)"
            )
        return values[self._inv]

    def spread(self) -> int:
        """Minimum output distance of two adjacent input bits.

        For a row-column interleaver this equals the row count — the
        burst length the design can fully disperse.
        """
        return self.rows
