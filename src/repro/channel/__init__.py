"""Channel models and LLR front-end.

BPSK over AWGN with the paper's initialization ``P_n = 2 y_n / sigma^2``
(Algorithm 1), plus the fixed-point quantizers that model the decoder's
6/8-bit message formats.
"""

from repro.channel.awgn import (
    AwgnChannel,
    bpsk_modulate,
    ebno_to_sigma,
    llr_from_channel,
    snr_to_sigma,
)
from repro.channel.quantize import FixedPointFormat, quantize_llrs
from repro.channel.fading import RayleighChannel
from repro.channel.interleaver import BlockInterleaver
from repro.channel.bec import ErasureChannel

__all__ = [
    "AwgnChannel",
    "bpsk_modulate",
    "ebno_to_sigma",
    "llr_from_channel",
    "snr_to_sigma",
    "FixedPointFormat",
    "quantize_llrs",
    "RayleighChannel",
    "BlockInterleaver",
    "ErasureChannel",
]
