"""Flat Rayleigh fading — the handset's channel, not the lab's.

The paper targets "next generation wireless handset SoC"s; over-the-air
links fade.  This model applies an i.i.d. (fully interleaved) or
block-fading Rayleigh envelope ``h`` to BPSK symbols with coherent
detection and perfect CSI:

* received: ``y = h * x + n``, ``h`` Rayleigh with ``E[h^2] = 1``;
* LLR: ``2 h y / sigma^2`` (the faded matched-filter output).

Block fading (one ``h`` per coherence block) is what makes the
interleaver in :mod:`repro.channel.interleaver` earn its keep: without
interleaving, a faded block wipes out consecutive code bits and the
decoder sees error bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import bpsk_modulate
from repro.utils.rng import SeedLike, as_generator


@dataclass
class RayleighChannel(object):
    """Flat Rayleigh fading with AWGN and perfect CSI.

    Parameters
    ----------
    sigma:
        Noise standard deviation (as in the AWGN model).
    coherence:
        Bits per fading block: 1 = fully interleaved (i.i.d. fading),
        larger values model slow fading across consecutive bits.
    seed:
        RNG seed/stream for fading and noise.
    """

    sigma: float
    coherence: int = 1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        if self.coherence < 1:
            raise ValueError(f"coherence must be >= 1, got {self.coherence}")
        self._rng = as_generator(self.seed)

    def fading_envelope(self, n: int) -> np.ndarray:
        """Draw the per-bit Rayleigh gains (unit mean-square)."""
        blocks = -(-n // self.coherence)
        # |CN(0,1)| is Rayleigh with E[h^2] = 1.
        h = np.abs(
            (self._rng.normal(size=blocks) + 1j * self._rng.normal(size=blocks))
            / np.sqrt(2.0)
        )
        return np.repeat(h, self.coherence)[:n]

    def llrs(self, bits: np.ndarray) -> np.ndarray:
        """Transmit bits through the faded channel; return LLRs."""
        bits = np.asarray(bits, dtype=np.uint8)
        symbols = bpsk_modulate(bits)
        h = self.fading_envelope(bits.shape[0])
        if self.sigma == 0:
            return 100.0 * h * symbols
        noise = self._rng.normal(0.0, self.sigma, size=symbols.shape)
        received = h * symbols + noise
        return 2.0 * h * received / (self.sigma * self.sigma)
