"""Seeded fault-injection campaigns: sweep fault rate x injection site.

A :class:`FaultCampaign` answers the question the paper's low-power
pitch raises but never measures: *how much corruption can the layered
min-sum decoder absorb before it stops working?*  Aggressive voltage
scaling and clock gating buy the power savings of Section V at the cost
of soft-error headroom in the P/R SRAMs and datapath — and the
algorithm's inherent message resilience (the property flexible-decoder
designs like Condo & Masera's NoC decoder lean on) is what determines
whether that trade is safe.

For every (site, rate) cell the campaign decodes the *same* noisy
frames (frame RNG is keyed by ``(seed, frame)``, independent of the
cell, so penalties are apples-to-apples against the fault-free
baseline) with a freshly seeded injector, then classifies each frame:

* **frame error** — decoded bits differ from the true codeword
  (residual FER);
* **detected** — the built-in detector (the parity / syndrome check
  that hardware gets for free) flagged the frame as failed;
* **silent corruption** — the dangerous cell: parity passed, frame
  wrong (an undetected error delivered to the user).

Everything is deterministic under a fixed seed: same seed, same
campaign, bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.perlayer import PerLayerArch
from repro.channel import AwgnChannel
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS, LayeredMinSumDecoder
from repro.encoder import RuEncoder
from repro.errors import FaultConfigError
from repro.faults.injectors import ALL_SITES, ARCH_SITES, LLR_SITE, FaultInjector
from repro.faults.models import FaultModel, LLRPerturbation, TransientBitFlip
from repro.utils.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder

__all__ = ["CampaignCell", "CampaignResult", "FaultCampaign"]

#: Fault-free reference rows use this pseudo-site name.
BASELINE_SITE = "none"


def default_model_factory(site: str, rate: float) -> FaultModel:
    """The built-in model per site: SEU bit flips in hardware state,
    sign-flip perturbation in the numpy decoder's LLR domain."""
    if site == LLR_SITE:
        return LLRPerturbation(rate, mode="flip-sign")
    return TransientBitFlip(rate)


@dataclass(frozen=True)
class CampaignCell(object):
    """Outcome of one (site, rate) sweep point."""

    site: str
    rate: float
    frames: int
    frame_errors: int
    detected_errors: int
    silent_errors: int
    injections: int
    mean_iterations: float

    @property
    def fer(self) -> float:
        """Residual frame error rate under injection."""
        return self.frame_errors / self.frames if self.frames else 0.0

    @property
    def silent_rate(self) -> float:
        """Fraction of frames delivered wrong with parity passing."""
        return self.silent_errors / self.frames if self.frames else 0.0

    @property
    def detection_rate(self) -> float:
        """Fraction of erroneous frames the parity detector flagged."""
        if self.frame_errors == 0:
            return 1.0
        return self.detected_errors / self.frame_errors


@dataclass
class CampaignResult(object):
    """All cells of a campaign plus its provenance."""

    code_name: str
    ebno_db: float
    seed: int
    frames_per_cell: int
    max_iterations: int
    baselines: List[CampaignCell] = field(default_factory=list)
    cells: List[CampaignCell] = field(default_factory=list)

    def cell(self, site: str, rate: float) -> CampaignCell:
        """Look up one sweep point."""
        for c in self.cells:
            if c.site == site and c.rate == rate:
                return c
        raise KeyError(f"no cell for site={site!r}, rate={rate}")

    def baseline(self, site: str) -> CampaignCell:
        """The fault-free reference for ``site``'s decode backend."""
        backend = "llr" if site == LLR_SITE else "arch"
        for c in self.baselines:
            if c.site == f"{BASELINE_SITE}/{backend}":
                return c
        raise KeyError(f"no baseline for site={site!r}")

    def report(self, title: str = "") -> str:
        """Aligned text table in the evaluation-harness house style."""
        rows = []
        for c in self.baselines + self.cells:
            rows.append(
                [
                    c.site,
                    f"{c.rate:.0e}" if c.rate else "0",
                    c.frames,
                    f"{c.fer:.3f}",
                    f"{c.silent_rate:.3f}",
                    f"{c.detection_rate:.2f}",
                    c.injections,
                    f"{c.mean_iterations:.1f}",
                ]
            )
        return render_table(
            ["site", "rate", "frames", "FER", "silent", "detect", "flips",
             "iters"],
            rows,
            title=title
            or (
                f"Fault campaign: {self.code_name}, Eb/N0 = {self.ebno_db} dB, "
                f"{self.frames_per_cell} frames/cell, seed {self.seed}"
            ),
        )


class FaultCampaign(object):
    """Sweep fault rate x injection site over a fixed traffic sample.

    Parameters
    ----------
    code:
        The QC-LDPC code under test.
    sites:
        Injection sites: any of ``("p_mem", "r_mem", "shifter",
        "minsearch")`` (cycle-accurate architecture backend) and/or
        ``"llr"`` (float numpy decoder, perturbed between iterations).
    rates:
        Per-lane / per-element fault probabilities to sweep.
    frames_per_cell:
        Decodes per (site, rate) cell.
    ebno_db:
        Channel operating point; pick a high value so the channel alone
        rarely fails and the fault contribution dominates.
    seed:
        Master seed; frame content is keyed by ``(seed, frame)`` and
        injector streams by ``(seed, site, rate)``, so every cell sees
        identical traffic and the whole campaign replays exactly.
    max_iterations:
        Decoder iteration budget (paper: 10).
    model_factory:
        ``factory(site, rate) -> FaultModel`` override; the default uses
        SEU bit flips for hardware sites and sign-flip LLR perturbation
        for the numpy decoder.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; every cell
        gets a ``campaign.cell`` span and its injector emits
        ``fault.inject`` events labelled with the site.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`;
        :meth:`run` publishes per-cell ``faults_*`` counters labelled
        by ``site``/``rate`` (frames, frame errors, detected, silent,
        injections) so campaign outcomes export alongside serve and
        decode metrics.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        sites: Sequence[str] = ARCH_SITES,
        rates: Sequence[float] = (1e-4, 1e-3, 1e-2),
        frames_per_cell: int = 20,
        ebno_db: float = 5.0,
        seed: int = 0,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        model_factory: Optional[Callable[[str, float], FaultModel]] = None,
        recorder: "Optional[TraceRecorder]" = None,
        registry: "Optional[MetricsRegistry]" = None,
    ) -> None:
        bad = [s for s in sites if s not in ALL_SITES]
        if bad:
            raise FaultConfigError(f"unknown sites {bad}; have {list(ALL_SITES)}")
        if not sites:
            raise FaultConfigError("need at least one injection site")
        if not rates:
            raise FaultConfigError("need at least one fault rate")
        if frames_per_cell < 1:
            raise FaultConfigError(
                f"frames_per_cell must be >= 1, got {frames_per_cell}"
            )
        self.code = code
        self.sites = list(sites)
        self.rates = [float(r) for r in rates]
        self.frames_per_cell = frames_per_cell
        self.ebno_db = ebno_db
        self.seed = seed
        self.max_iterations = max_iterations
        self.model_factory = model_factory or default_model_factory
        self.recorder = recorder
        self.registry = registry

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def _frames(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """The shared (codeword, llrs) sample every cell decodes."""
        encoder = RuEncoder(self.code)
        frames = []
        for i in range(self.frames_per_cell):
            rng = np.random.default_rng([self.seed, i])
            message = rng.integers(0, 2, encoder.k).astype(np.uint8)
            codeword = encoder.encode(message)
            channel = AwgnChannel.from_ebno(self.ebno_db, self.code.rate, seed=rng)
            frames.append((codeword, channel.llrs(codeword)))
        return frames

    # ------------------------------------------------------------------
    # decode backends
    # ------------------------------------------------------------------
    def _decode_arch(self, site, rate, injector, frames) -> CampaignCell:
        config = ArchConfig(self.code, max_iterations=self.max_iterations)
        faults = {site: injector} if injector is not None else None
        arch = PerLayerArch(config, faults=faults)
        return self._classify(
            site,
            rate,
            injector,
            frames,
            lambda llrs: arch.decode(llrs).decode,
        )

    def _decode_llr(self, site, rate, injector, frames) -> CampaignCell:
        hook = injector.iteration_hook if injector is not None else None
        decoder = LayeredMinSumDecoder(
            self.code, max_iterations=self.max_iterations, iteration_hook=hook
        )
        return self._classify(site, rate, injector, frames, decoder.decode)

    def _classify(self, site, rate, injector, frames, decode) -> CampaignCell:
        frame_errors = detected = silent = 0
        iterations = 0
        for codeword, llrs in frames:
            result = decode(llrs)
            iterations += result.iterations
            wrong = bool(np.any(result.bits != codeword))
            if wrong:
                frame_errors += 1
                if result.converged:
                    silent += 1  # parity passed, payload wrong: undetected
                else:
                    detected += 1
        return CampaignCell(
            site=site,
            rate=rate,
            frames=len(frames),
            frame_errors=frame_errors,
            detected_errors=detected,
            silent_errors=silent,
            injections=injector.injections if injector is not None else 0,
            mean_iterations=iterations / len(frames),
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _publish(self, cell: CampaignCell) -> None:
        """Mirror one cell's counts onto the registry's labeled counters."""
        reg = self.registry
        if reg is None:
            return
        labels = {"site": cell.site, "rate": f"{cell.rate:g}"}
        label_names = ("site", "rate")
        pairs = (
            ("faults_frames", "frames decoded in a campaign cell", cell.frames),
            ("faults_frame_errors", "frames decoded wrong", cell.frame_errors),
            ("faults_detected", "wrong frames flagged by parity",
             cell.detected_errors),
            ("faults_silent", "wrong frames with parity passing",
             cell.silent_errors),
            ("faults_injections", "corrupted lanes injected", cell.injections),
        )
        for name, help_text, value in pairs:
            reg.counter(name, help_text, label_names).inc(value, **labels)

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute the full site x rate sweep and return all cells."""
        frames = self._frames()
        result = CampaignResult(
            code_name=self.code.name or f"({self.code.n})",
            ebno_db=self.ebno_db,
            seed=self.seed,
            frames_per_cell=self.frames_per_cell,
            max_iterations=self.max_iterations,
        )

        backends_used = []
        for site in self.sites:
            backend = "llr" if site == LLR_SITE else "arch"
            if backend not in backends_used:
                backends_used.append(backend)
        for backend in backends_used:
            runner = self._decode_llr if backend == "llr" else self._decode_arch
            cell = runner(f"{BASELINE_SITE}/{backend}", 0.0, None, frames)
            result.baselines.append(cell)
            self._publish(cell)

        rec = self.recorder
        tracing = rec is not None and rec.enabled
        for site in self.sites:
            for rate in self.rates:
                # key the injector stream by the site/rate *identity*
                # (not sweep position) so a cell replays bit-identically
                # regardless of which other cells the campaign contains
                site_key = ALL_SITES.index(site)
                rate_key = int(np.float64(rate).view(np.uint64))
                injector = FaultInjector(
                    self.model_factory(site, rate),
                    seed=np.random.default_rng(
                        [self.seed, 7919, site_key, rate_key]
                    ),
                    # min-search registers are corrupted at their write
                    # port; memories/shifter on the read path
                    on=("read", "write") if site == "minsearch" else ("read",),
                    recorder=rec,
                    site=site,
                )
                runner = (
                    self._decode_llr if site == LLR_SITE else self._decode_arch
                )
                cell_t0 = time.perf_counter() if tracing else 0.0
                cell = runner(site, rate, injector, frames)
                if tracing:
                    rec.complete(
                        "campaign.cell", cell_t0, site=site, rate=rate,
                        frames=cell.frames,
                    )
                result.cells.append(cell)
                self._publish(cell)
        return result
