"""Fault injection and resilience measurement (``repro.faults``).

The paper's whole pitch is *low power* — clock gating, small memories,
voltage headroom — and aggressive low-power operation is exactly the
regime where soft errors in the P/R memories and datapath become real.
This package asks the question the paper leaves open: how much of that
corruption does layered min-sum decoding absorb for free, and where
does it collapse?

Three layers:

* :mod:`~repro.faults.models` — *what* a corruption looks like:
  transient SEU bit flips, stuck-at bits, LLR-domain perturbation;
* :mod:`~repro.faults.injectors` — *where/when*: a seeded
  :class:`FaultInjector` attaches to the architecture model's P/R
  SRAMs, barrel shifter, or min-search registers (``attach_fault``), or
  rides the numpy decoders' ``iteration_hook``;
* :mod:`~repro.faults.campaign` — *measurement*: a deterministic
  :class:`FaultCampaign` sweeps fault rate x site and reports residual
  FER, silent-corruption rate, and parity-detector coverage.

Quickstart::

    from repro.codes import wimax_code
    from repro.faults import FaultCampaign

    campaign = FaultCampaign(
        wimax_code("1/2", 576),
        sites=("p_mem", "r_mem", "minsearch"),
        rates=(1e-4, 1e-3, 1e-2),
        seed=0,
    )
    print(campaign.run().report())
"""

from repro.faults.campaign import CampaignCell, CampaignResult, FaultCampaign
from repro.faults.injectors import (
    ALL_SITES,
    ARCH_SITES,
    LLR_SITE,
    FaultInjector,
)
from repro.faults.models import (
    FaultModel,
    LLRPerturbation,
    StuckAt,
    TransientBitFlip,
)

__all__ = [
    "ALL_SITES",
    "ARCH_SITES",
    "LLR_SITE",
    "CampaignCell",
    "CampaignResult",
    "FaultCampaign",
    "FaultInjector",
    "FaultModel",
    "LLRPerturbation",
    "StuckAt",
    "TransientBitFlip",
]
