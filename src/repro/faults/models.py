"""Composable fault models: what a single corruption event looks like.

A fault model describes *how* state is corrupted; it is deliberately
ignorant of *where* and *when* — that is the
:class:`~repro.faults.injectors.FaultInjector`'s job.  Two value domains
are covered, matching the two decoder substrates:

* **integer lane words** — the z-lane int32 vectors flowing through the
  architecture model's P/R SRAMs, barrel shifter, and min-search
  registers.  Values are interpreted as ``bit_width``-bit two's
  complement (the paper's 8-bit message format), so flipping the top
  bit really flips the hardware sign bit;
* **float LLR vectors** — the numpy decoders' working state, perturbed
  directly in LLR space.

All randomness comes from the generator the caller passes in, so a
seeded campaign replays bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultConfigError

__all__ = ["FaultModel", "TransientBitFlip", "StuckAt", "LLRPerturbation"]


def _to_twos_complement(word: np.ndarray, bit_width: int) -> np.ndarray:
    """Signed lane values -> unsigned ``bit_width``-bit patterns."""
    mask = (1 << bit_width) - 1
    return word.astype(np.int64) & mask


def _from_twos_complement(pattern: np.ndarray, bit_width: int) -> np.ndarray:
    """Unsigned ``bit_width``-bit patterns -> signed lane values."""
    sign_bit = 1 << (bit_width - 1)
    pattern = pattern.astype(np.int64)
    return np.where(pattern >= sign_bit, pattern - (1 << bit_width), pattern)


class FaultModel(object):
    """Base class: corrupt integer lane words and/or float LLR vectors.

    Subclasses override one or both hooks; the default is a no-op, so a
    model targeting only one domain composes safely with any site.
    """

    def corrupt_word(
        self, word: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a (possibly) corrupted copy of an integer lane word."""
        return word

    def corrupt_llrs(
        self, llrs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a (possibly) corrupted copy of a float LLR vector."""
        return llrs


class TransientBitFlip(FaultModel):
    """Single-event upsets: each lane flips one random bit with ``rate``.

    ``rate`` is the per-lane per-access upset probability; an upset
    flips one uniformly chosen bit of the lane's ``bit_width``-bit
    two's-complement pattern.  This is the classic SEU model for the
    low-voltage SRAM regime the paper's power argument targets.
    """

    def __init__(self, rate: float, bit_width: int = 8) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(f"bit-flip rate must be in [0, 1], got {rate}")
        if bit_width < 2:
            raise FaultConfigError(f"bit_width must be >= 2, got {bit_width}")
        self.rate = rate
        self.bit_width = bit_width

    def corrupt_word(
        self, word: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Flip one random bit in each lane that draws an upset."""
        if self.rate == 0.0:
            return word
        word = np.asarray(word)
        hit = rng.random(word.shape) < self.rate
        if not hit.any():
            return word
        bits = rng.integers(0, self.bit_width, size=word.shape)
        pattern = _to_twos_complement(word, self.bit_width)
        pattern = np.where(hit, pattern ^ (1 << bits), pattern)
        return _from_twos_complement(pattern, self.bit_width).astype(word.dtype)

    def __repr__(self) -> str:
        return f"TransientBitFlip(rate={self.rate}, bit_width={self.bit_width})"


class StuckAt(FaultModel):
    """A hard defect: one bit of selected lanes reads as a constant.

    Parameters
    ----------
    bit:
        Bit position of the ``bit_width``-bit pattern that is stuck.
    stuck_to:
        0 or 1 — the value the bit is stuck at.
    lanes:
        Lane indices affected (default: lane 0 only).  A stuck-at fault
        is a manufacturing/wear defect, so the set is fixed, not random.
    """

    def __init__(
        self,
        bit: int,
        stuck_to: int = 1,
        lanes=(0,),
        bit_width: int = 8,
    ) -> None:
        if not 0 <= bit < bit_width:
            raise FaultConfigError(
                f"bit {bit} out of range for {bit_width}-bit words"
            )
        if stuck_to not in (0, 1):
            raise FaultConfigError(f"stuck_to must be 0 or 1, got {stuck_to}")
        self.bit = bit
        self.stuck_to = stuck_to
        self.lanes = tuple(int(l) for l in lanes)
        self.bit_width = bit_width

    def corrupt_word(
        self, word: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Force the stuck bit in the configured lanes (deterministic)."""
        word = np.asarray(word)
        lanes = [l for l in self.lanes if 0 <= l < word.shape[-1]]
        if not lanes:
            return word
        pattern = _to_twos_complement(word, self.bit_width)
        mask = 1 << self.bit
        if self.stuck_to:
            pattern[..., lanes] |= mask
        else:
            pattern[..., lanes] &= ~mask
        return _from_twos_complement(pattern, self.bit_width).astype(word.dtype)

    def __repr__(self) -> str:
        return (
            f"StuckAt(bit={self.bit}, stuck_to={self.stuck_to}, "
            f"lanes={self.lanes})"
        )


class LLRPerturbation(FaultModel):
    """Message perturbation for the numpy decoders, in LLR space.

    Each element is hit with probability ``rate``; a hit applies one of:

    * ``"flip-sign"`` — negate the LLR (the worst-case single upset: a
      confident decision inverts);
    * ``"gauss"`` — add zero-mean Gaussian noise of stddev ``magnitude``;
    * ``"erase"`` — zero the LLR (erasure: all confidence lost).
    """

    MODES = ("flip-sign", "gauss", "erase")

    def __init__(self, rate: float, mode: str = "flip-sign", magnitude: float = 4.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(f"perturbation rate must be in [0, 1], got {rate}")
        if mode not in self.MODES:
            raise FaultConfigError(f"mode must be one of {self.MODES}, got {mode!r}")
        if magnitude < 0:
            raise FaultConfigError(f"magnitude must be >= 0, got {magnitude}")
        self.rate = rate
        self.mode = mode
        self.magnitude = magnitude

    def corrupt_llrs(
        self, llrs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Perturb (or zero/flip) each LLR that draws a fault."""
        if self.rate == 0.0:
            return llrs
        llrs = np.asarray(llrs, dtype=np.float64)
        hit = rng.random(llrs.shape) < self.rate
        if not hit.any():
            return llrs
        out = llrs.copy()
        if self.mode == "flip-sign":
            out[hit] = -out[hit]
        elif self.mode == "gauss":
            out[hit] += rng.normal(0.0, self.magnitude, size=int(hit.sum()))
        else:  # erase
            out[hit] = 0.0
        return out

    def __repr__(self) -> str:
        return (
            f"LLRPerturbation(rate={self.rate}, mode={self.mode!r}, "
            f"magnitude={self.magnitude})"
        )
