"""Fault injectors: bind a fault model to a site, a trigger, and a seed.

A :class:`FaultInjector` is the stateful middleman between a
:class:`~repro.faults.models.FaultModel` (how to corrupt) and an
injection site (where).  The architecture's storage models — P/R SRAMs,
the barrel shifter, the min-search register arrays — accept an injector
via ``attach_fault`` and route every access through it; the numpy
decoders take one as an ``iteration_hook``.  The injector

* owns a seeded :class:`numpy.random.Generator`, so a campaign cell
  replays deterministically;
* filters by access kind (``on={"read"}``, ``{"write"}`` or both), so a
  read-disturb SEU and a write-path defect are distinct experiments;
* counts ``accesses`` and corrupted ``injections``, which the campaign
  reports alongside the decode outcomes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.errors import FaultConfigError
from repro.faults.models import FaultModel
from repro.utils.rng import SeedLike, as_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.obs.trace import TraceRecorder

__all__ = ["FaultInjector", "ARCH_SITES", "LLR_SITE", "ALL_SITES"]

#: Injection sites wired into :class:`repro.arch.perlayer.PerLayerArch`.
ARCH_SITES = ("p_mem", "r_mem", "shifter", "minsearch")

#: The numpy-decoder site: working-LLR perturbation between iterations.
LLR_SITE = "llr"

ALL_SITES = ARCH_SITES + (LLR_SITE,)

_KINDS = frozenset(("read", "write"))


class FaultInjector(object):
    """Apply one fault model at one site, deterministically.

    Parameters
    ----------
    model:
        The fault model to apply.
    seed:
        Seed / generator for the injector's private random stream.
    on:
        Access kinds that trigger injection (default: reads only — the
        transient read-disturb case; pass ``("read", "write")`` for a
        cell defect visible on both paths).
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; every actual
        corruption (not every access) emits a ``fault.inject`` event
        labelled with ``site``, the access kind, and the number of
        lanes flipped, so injection hits line up with decode spans on
        one timeline.
    log:
        Optional :class:`~repro.obs.log.EventLog`; the same corruptions
        are also written as ``warning``-level ``fault.inject`` records
        (site/kind/lanes fields), so injection campaigns leave a
        grep-able structured trail alongside the trace events.
    site:
        Label attached to the ``fault.inject`` events (the injection
        site name; informational only).
    """

    def __init__(
        self,
        model: FaultModel,
        seed: SeedLike = None,
        on: Iterable[str] = ("read",),
        recorder: "Optional[TraceRecorder]" = None,
        log: "Optional[EventLog]" = None,
        site: str = "",
    ) -> None:
        on = frozenset(on)
        if not on or not on <= _KINDS:
            raise FaultConfigError(
                f"on must be a non-empty subset of {sorted(_KINDS)}, got {sorted(on)}"
            )
        self.model = model
        self.rng = as_generator(seed)
        self.on = on
        self.recorder = recorder
        self.log = log
        self.site = site
        self.enabled = True
        self.accesses = 0
        self.injections = 0

    # ------------------------------------------------------------------
    # storage-model hooks (integer lane words)
    # ------------------------------------------------------------------
    def on_read(self, word: np.ndarray) -> np.ndarray:
        """Filter a word flowing out of a memory/shifter read."""
        return self._apply_word(word, "read")

    def on_write(self, word: np.ndarray) -> np.ndarray:
        """Filter a word flowing into a memory/register write."""
        return self._apply_word(word, "write")

    def _apply_word(self, word: np.ndarray, kind: str) -> np.ndarray:
        if not self.enabled or kind not in self.on:
            return word
        self.accesses += 1
        corrupted = self.model.corrupt_word(word, self.rng)
        if corrupted is not word:
            flips = int(np.count_nonzero(corrupted != word))
            self.injections += flips
            if flips and self.recorder is not None:
                self.recorder.event(
                    "fault.inject", site=self.site, kind=kind, lanes=flips
                )
            if flips and self.log is not None:
                self.log.warning(
                    "fault.inject", site=self.site, kind=kind, lanes=flips
                )
        return corrupted

    # ------------------------------------------------------------------
    # numpy-decoder hook (float or integer working state, in place)
    # ------------------------------------------------------------------
    def iteration_hook(self, iteration: int, p: np.ndarray) -> None:
        """Perturb a decoder's working state in place (an ``iteration_hook``).

        Works for both arithmetic modes: integer P codes go through the
        model's word path, float LLRs through the LLR path.
        """
        if not self.enabled:
            return
        self.accesses += 1
        if np.issubdtype(p.dtype, np.integer):
            corrupted = self.model.corrupt_word(p, self.rng)
        else:
            corrupted = self.model.corrupt_llrs(p, self.rng)
        if corrupted is not p:
            flips = int(np.count_nonzero(corrupted != p))
            self.injections += flips
            if flips and self.recorder is not None:
                self.recorder.event(
                    "fault.inject",
                    site=self.site,
                    kind="iteration",
                    iteration=iteration,
                    lanes=flips,
                )
            if flips and self.log is not None:
                self.log.warning(
                    "fault.inject",
                    site=self.site,
                    kind="iteration",
                    iteration=iteration,
                    lanes=flips,
                )
            p[...] = corrupted

    def reset(self) -> None:
        """Zero the access/injection counters (the RNG stream continues)."""
        self.accesses = 0
        self.injections = 0
