"""repro — reproduction of the SOCC 2009 HLS-based LDPC decoder paper.

The package is organized in two halves:

* the *algorithm* substrate: :mod:`repro.codes`, :mod:`repro.encoder`,
  :mod:`repro.channel`, :mod:`repro.decoder` — a complete QC-LDPC
  coding system (IEEE 802.16e WiMax and IEEE 802.11n code families,
  layered scaled min-sum decoding per the paper's Algorithm 1);

* the *hardware design* substrate: :mod:`repro.hls` (a PICO-like
  high-level-synthesis engine), :mod:`repro.arch` (cycle-accurate
  models of the paper's two decoder architectures), :mod:`repro.synth`
  (a 65 nm technology / area / timing model), and :mod:`repro.power`
  (a SpyGlass-like power estimator).

:mod:`repro.eval` ties both halves together and regenerates every
table and figure of the paper's evaluation section.
"""

from repro.codes import QCLDPCCode, wimax_code, wifi_code
from repro.decoder import DecodeResult, LayeredMinSumDecoder, decode
from repro.channel import AwgnChannel, llr_from_channel
from repro.encoder import RuEncoder

__all__ = [
    "QCLDPCCode",
    "wimax_code",
    "wifi_code",
    "DecodeResult",
    "LayeredMinSumDecoder",
    "decode",
    "AwgnChannel",
    "llr_from_channel",
    "RuEncoder",
    "__version__",
]

__version__ = "1.0.0"
