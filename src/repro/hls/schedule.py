"""Delay-aware (chaining) list scheduling and modulo pipelining.

The scheduler measures operator delays in FO4 units and packs dependent
operators into the same cycle while they fit the clock budget — exactly
what synthesis does.  Consequences, matching the paper's Fig 8:

* at a slow target clock a whole decoder core chains into 1-2 cycles;
* at a fast clock the same chain is cut at cycle boundaries, so core
  latency in cycles (the pipeline depth) *grows with clock frequency*,
  and with it the per-iteration latency;
* an operator whose own delay exceeds one cycle budget becomes a
  multi-stage pipelined unit.

Memory semantics:

* SRAM/ROM macro loads register their address at a cycle boundary and
  deliver data at the next boundary (1-cycle access);
* stores and register-file writes commit at the following boundary;
* a statement with ``load`` and ``store`` on the *same* array is a fused
  read-modify-write register update (e.g. the running min1/min2 of the
  decoder's core1): the registered state is stable for the whole cycle,
  so the update logic may chain after mid-cycle inputs, and the result
  commits at the next boundary — a carried recurrence through it
  supports II = 1.

Two entry points:

* :meth:`Scheduler.schedule_block` — non-overlapped scheduling of one
  block;
* :meth:`Scheduler.schedule_pipelined` — modulo scheduling at the
  smallest feasible initiation interval (II), respecting per-II-slot
  resource and memory-port limits and loop-carried dependences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.hls.dfg import DataflowGraph
from repro.hls.ir import ArrayDecl, Stmt
from repro.synth.timing import TimingModel

_MAX_II_SEARCH = 64
_EPS = 1e-9


@dataclass
class Schedule(object):
    """Result of scheduling one block.

    Attributes
    ----------
    starts:
        Issue cycle of each statement.
    finishes:
        Time each statement's result is available, in fractional cycles
        (integral values are cycle boundaries / registered results).
    length:
        Block latency in whole cycles (first issue to last commit).
    ii:
        Initiation interval (= ``length`` for non-pipelined blocks).
    """

    starts: List[int]
    finishes: List[float]
    length: int
    ii: int

    def depth(self) -> int:
        """Pipeline depth in cycles (alias for ``length``)."""
        return self.length


class Scheduler(object):
    """Chaining list / modulo scheduler with FU and port constraints.

    Parameters
    ----------
    timing:
        Timing model providing the per-cycle FO4 budget.
    clock_mhz:
        Target clock.
    resources:
        Operator-kind -> available lane-unit count; kinds not listed
        are unlimited (spatial hardware, PICO's default).
    arrays:
        Declarations for memory-port constraints: SRAMs and FIFOs
        honour their declared read/write ports per cycle; register
        files and ROMs replicate read ports freely but keep their
        declared write ports.
    """

    def __init__(
        self,
        timing: TimingModel,
        clock_mhz: float,
        resources: Optional[Dict[str, int]] = None,
        arrays: Optional[List[ArrayDecl]] = None,
    ) -> None:
        self.timing = timing
        self.clock_mhz = clock_mhz
        self.resources = dict(resources or {})
        self.arrays = {decl.name: decl for decl in (arrays or [])}
        self.budget_fo4 = timing.tech.fo4_budget(clock_mhz)

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    def _is_macro(self, array: str) -> bool:
        decl = self.arrays.get(array)
        return bool(decl and decl.kind in ("sram", "rom"))

    def _read_ports(self, array: str) -> Optional[int]:
        decl = self.arrays.get(array)
        if decl is None:
            return None
        if decl.kind in ("regfile", "rom"):
            return None
        return decl.read_ports

    def _write_ports(self, array: str) -> Optional[int]:
        decl = self.arrays.get(array)
        if decl is None:
            return None
        return decl.write_ports

    def _is_rmw(self, stmt: Stmt) -> bool:
        return (
            stmt.load is not None
            and stmt.store is not None
            and stmt.load.array == stmt.store.array
        )

    def delay_of(self, stmt: Stmt) -> float:
        """Effective FO4 delay of one statement, wire load included."""
        return self.timing.effective_delay_fo4(stmt.op.delay_fo4, stmt.op.simd)

    def stages_of(self, stmt: Stmt) -> int:
        """Whole-cycle stage count of one statement (>= 1)."""
        if stmt.load and self._is_macro(stmt.load.array):
            return 1
        return max(1, math.ceil(self.delay_of(stmt) / self.budget_fo4 - _EPS))

    # ------------------------------------------------------------------
    # lower bounds
    # ------------------------------------------------------------------
    def resource_mii(self, dfg: DataflowGraph) -> int:
        """Resource-constrained lower bound on the II."""
        mii = 1
        unit_counts: Dict[str, int] = {}
        for stmt in dfg.stmts:
            unit_counts[stmt.op.kind] = (
                unit_counts.get(stmt.op.kind, 0) + stmt.op.simd
            )
        for kind, count in unit_counts.items():
            limit = self.resources.get(kind)
            if limit:
                mii = max(mii, math.ceil(count / limit))
        for (array, direction), count in dfg.port_demand().items():
            ports = (
                self._read_ports(array)
                if direction == "read"
                else self._write_ports(array)
            )
            if ports:
                mii = max(mii, math.ceil(count / ports))
        return mii

    # ------------------------------------------------------------------
    # placement core
    # ------------------------------------------------------------------
    def _place(
        self,
        stmt: Stmt,
        avail: float,
        ii: int,
        usage: Dict[Tuple[int, str], int],
        port_usage: Dict[Tuple[int, str, str], int],
        horizon_cycles: int,
    ) -> Optional[Tuple[int, float]]:
        """Find (start_cycle, finish_time) for a statement.

        ``avail`` is the earliest fractional-cycle time all inputs are
        ready.  Returns None if no slot fits within the horizon.
        """
        frac = self.delay_of(stmt) / self.budget_fo4
        macro_load = stmt.load is not None and self._is_macro(stmt.load.array)
        registered_output = (
            stmt.store is not None or macro_load or self._is_rmw(stmt)
        )

        first_cycle = int(math.floor(avail + _EPS))
        for cycle in range(first_cycle, first_cycle + horizon_cycles):
            if not self._fits(stmt, cycle, ii, usage, port_usage):
                continue
            if macro_load or frac >= 1.0 - _EPS:
                # Boundary-aligned: address/state registered at `cycle`.
                if cycle + _EPS < avail:
                    continue
                stages = self.stages_of(stmt)
                finish = float(cycle + stages)
                return cycle, finish
            # Chainable single-cycle op.
            start_time = max(avail, float(cycle))
            if start_time >= cycle + 1 - _EPS:
                continue  # inputs not ready within this cycle
            if start_time + frac <= cycle + 1 + _EPS:
                finish = start_time + frac
                if registered_output:
                    finish = float(cycle + 1)
                return cycle, finish
            # Does not fit the remainder of this cycle; try the next.
        return None

    # ------------------------------------------------------------------
    # block (non-pipelined) scheduling
    # ------------------------------------------------------------------
    def schedule_block(self, dfg: DataflowGraph) -> Schedule:
        """Dependence-driven chaining schedule of one block."""
        schedule = self._schedule(dfg, ii=0)
        if schedule is None:
            raise ScheduleError("block scheduling failed (resource deadlock)")
        return schedule

    # ------------------------------------------------------------------
    # modulo (pipelined) scheduling
    # ------------------------------------------------------------------
    def schedule_pipelined(self, dfg: DataflowGraph, min_ii: int = 1) -> Schedule:
        """Modulo scheduling at the smallest feasible II."""
        lower = max(min_ii, self.resource_mii(dfg))
        for ii in range(lower, lower + _MAX_II_SEARCH):
            schedule = self._schedule(dfg, ii=ii)
            if schedule is not None:
                return schedule
        raise ScheduleError(
            f"no feasible II found in [{lower}, {lower + _MAX_II_SEARCH})"
        )

    # ------------------------------------------------------------------
    # shared engine
    # ------------------------------------------------------------------
    def _schedule(self, dfg: DataflowGraph, ii: int) -> Optional[Schedule]:
        n = len(dfg.stmts)
        starts: List[int] = [-1] * n
        finishes: List[float] = [0.0] * n
        usage: Dict[Tuple[int, str], int] = {}
        port_usage: Dict[Tuple[int, str, str], int] = {}
        horizon = 4 * n + 64

        # Program order is a topological order for distance-0 edges.
        for i in range(n):
            avail = 0.0
            for dep in dfg.preds(i):
                if dep.distance == 0:
                    avail = max(avail, finishes[dep.src])
                elif ii and starts[dep.src] >= 0:
                    avail = max(avail, finishes[dep.src] - dep.distance * ii)
            placed = self._place(
                dfg.stmts[i], avail, ii, usage, port_usage, horizon
            )
            if placed is None:
                return None
            starts[i], finishes[i] = placed
            self._commit(dfg.stmts[i], starts[i], ii, usage, port_usage)

        if ii:
            # Verify carried edges into earlier-placed statements:
            # finish(src) - d*II <= issue-ready time of dst.
            for dep in dfg.deps:
                if dep.distance == 0:
                    continue
                if finishes[dep.src] - dep.distance * ii > starts[dep.dst] + _EPS:
                    return None

        length = max(1, int(math.ceil(max(finishes) - _EPS)))
        return Schedule(starts, finishes, length, ii if ii else length)

    # ------------------------------------------------------------------
    # resource tables
    # ------------------------------------------------------------------
    def _slot(self, cycle: int, ii: int) -> int:
        return cycle % ii if ii else cycle

    def _fits(
        self,
        stmt: Stmt,
        cycle: int,
        ii: int,
        usage: Dict[Tuple[int, str], int],
        port_usage: Dict[Tuple[int, str, str], int],
    ) -> bool:
        slot = self._slot(cycle, ii)
        limit = self.resources.get(stmt.op.kind)
        if (
            limit is not None
            and usage.get((slot, stmt.op.kind), 0) + stmt.op.simd > limit
        ):
            return False
        if stmt.load:
            ports = self._read_ports(stmt.load.array)
            if ports is not None:
                if port_usage.get((slot, stmt.load.array, "read"), 0) >= ports:
                    return False
        if stmt.store:
            ports = self._write_ports(stmt.store.array)
            if ports is not None:
                if port_usage.get((slot, stmt.store.array, "write"), 0) >= ports:
                    return False
        return True

    def _commit(
        self,
        stmt: Stmt,
        cycle: int,
        ii: int,
        usage: Dict[Tuple[int, str], int],
        port_usage: Dict[Tuple[int, str, str], int],
    ) -> None:
        slot = self._slot(cycle, ii)
        key = (slot, stmt.op.kind)
        usage[key] = usage.get(key, 0) + stmt.op.simd
        if stmt.load:
            pkey = (slot, stmt.load.array, "read")
            port_usage[pkey] = port_usage.get(pkey, 0) + 1
        if stmt.store:
            pkey = (slot, stmt.store.array, "write")
            port_usage[pkey] = port_usage.get(pkey, 0) + 1
