"""Loop-nest intermediate representation for the HLS engine.

Programs are untimed, C-like loop nests over declared arrays — the same
abstraction level as the paper's "sequential un-timed C".  A program is

* a set of :class:`ArrayDecl` storage declarations (register files,
  SRAM macros, ROMs, FIFOs);
* a body of :class:`Stmt` operations and :class:`Loop` nests, where
  loop bounds are compile-time constants (as they are in the decoder's
  C code) and array indices are affine in the enclosing loop variables.

Scalar dataflow is single-assignment: each statement defines one fresh
value name; sources reference value names or array reads.  This keeps
dependence analysis exact for scalars and reduces memory disambiguation
to comparing affine index expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import HlsError
from repro.hls.pragmas import Pragma
from repro.synth.library import cell

# ---------------------------------------------------------------------------
# index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine(object):
    """Affine index expression: ``sum(coeff * var) + const``.

    ``terms`` maps loop-variable names to integer coefficients.  After
    full unrolling every index reduces to a constant (empty ``terms``).
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @classmethod
    def of(cls, var: Optional[str] = None, coeff: int = 1, const: int = 0) -> "Affine":
        """Shorthand: ``Affine.of('i', 2, 1)`` is ``2*i + 1``."""
        if var is None:
            return cls((), const)
        return cls(((var, coeff),), const)

    def substitute(self, var: str, value: int) -> "Affine":
        """Replace ``var`` with a constant, folding into ``const``."""
        terms = []
        const = self.const
        for name, coeff in self.terms:
            if name == var:
                const += coeff * value
            else:
                terms.append((name, coeff))
        return Affine(tuple(terms), const)

    def shift_var(self, var: str, base_var: str, scale: int, offset: int) -> "Affine":
        """Rewrite ``var`` as ``scale * base_var + offset`` (partial unroll)."""
        terms = []
        const = self.const
        for name, coeff in self.terms:
            if name == var:
                terms.append((base_var, coeff * scale))
                const += coeff * offset
            else:
                terms.append((name, coeff))
        return Affine(tuple(terms), const)

    @property
    def is_const(self) -> bool:
        """True when no loop variables remain."""
        return not self.terms

    def value(self) -> int:
        """The constant value; raises if variables remain."""
        if not self.is_const:
            raise HlsError(f"index {self} is not a constant")
        return self.const

    def __str__(self) -> str:
        parts = [f"{c}*{v}" for v, c in self.terms]
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------

ARRAY_KINDS = ("regfile", "sram", "rom", "fifo")


@dataclass(frozen=True)
class ArrayDecl(object):
    """A storage declaration.

    ``kind`` selects the hardware realization (and its cost model):

    * ``"regfile"`` — flip-flop register file (the paper's global C
      arrays: Q_array, min1/min2/pos/sign arrays);
    * ``"sram"``   — user-supplied SRAM macro (P and R memories);
    * ``"rom"``    — read-only table (the parity-check matrix ROM);
    * ``"fifo"``   — hardware FIFO (the pipelined design's Q FIFO).
    """

    name: str
    words: int
    width_bits: int
    kind: str = "regfile"
    read_ports: int = 1
    write_ports: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ARRAY_KINDS:
            raise HlsError(
                f"array {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {ARRAY_KINDS}"
            )
        if self.words < 1 or self.width_bits < 1:
            raise HlsError(f"array {self.name!r}: bad shape")

    @property
    def bits(self) -> int:
        """Total storage capacity in bits."""
        return self.words * self.width_bits


@dataclass(frozen=True)
class MemAccess(object):
    """One array access: the array name plus an affine word index."""

    array: str
    index: Affine

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


# ---------------------------------------------------------------------------
# operations / statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Op(object):
    """An operation class with operand width, costed via the library.

    ``simd`` models lane-parallel datapaths: ``Op("sub", 8, simd=96)``
    is 96 independent 8-bit subtractors operating on one 768-bit word —
    the decoder's z-lane cores.  Area scales with the lane count; delay
    stays that of one lane.  (Loop *replication* — distinct statements
    per copy — is the UNROLL pragma's job; ``simd`` is for the
    word-wide lanes that always act in lock-step.)
    """

    kind: str
    width: int = 8
    simd: int = 1

    def __post_init__(self) -> None:
        cell(self.kind)  # raises for unknown kinds
        if self.width < 1 or self.simd < 1:
            raise HlsError(f"bad op shape: width={self.width} simd={self.simd}")

    @property
    def area_ge(self) -> float:
        """Operator area in gate equivalents (all lanes)."""
        return cell(self.kind).area_at(self.width) * self.simd

    @property
    def delay_fo4(self) -> float:
        """Operator delay in FO4 units (one lane's depth)."""
        return cell(self.kind).delay_at(self.width)

    @property
    def total_bits(self) -> int:
        """Result width across all lanes."""
        return self.width * self.simd


@dataclass
class Stmt(object):
    """One IR statement: ``dest = op(srcs)`` with optional memory access.

    Attributes
    ----------
    dest:
        Fresh scalar value name defined by this statement ("" for pure
        stores).
    op:
        The operation performed.
    srcs:
        Scalar value names read (dataflow predecessors).
    load / store:
        Optional memory read / write performed by the statement.  Loads
        define ``dest`` from memory; stores write the first source.
    """

    dest: str
    op: Op
    srcs: Tuple[str, ...] = ()
    load: Optional[MemAccess] = None
    store: Optional[MemAccess] = None

    def renamed(self, suffix: str, local_names: Dict[str, str]) -> "Stmt":
        """Clone with unrolled value names (used by the unroller).

        Sources resolve through the map *before* the destination is
        registered, so a self-referencing accumulator source picks up
        the previous replica's definition, not this one's.
        """
        srcs = tuple(local_names.get(s, s) for s in self.srcs)
        dest = self.dest
        if dest:
            dest = f"{dest}{suffix}"
            local_names[self.dest] = dest
        return Stmt(dest, self.op, srcs, self.load, self.store)

    def __str__(self) -> str:
        parts = [f"{self.dest or '_'} = {self.op.kind}({', '.join(self.srcs)})"]
        if self.load:
            parts.append(f"load {self.load}")
        if self.store:
            parts.append(f"store {self.store}")
        return "; ".join(parts)


Node = Union[Stmt, "Loop"]


@dataclass
class Loop(object):
    """A counted loop over ``var in range(trip)`` with optional pragmas."""

    var: str
    trip: int
    body: List[Node] = field(default_factory=list)
    pragmas: Tuple[Pragma, ...] = ()
    gate_block: str = ""

    def __post_init__(self) -> None:
        if self.trip < 1:
            raise HlsError(f"loop {self.var!r}: trip count must be >= 1")

    @property
    def unroll_factor(self) -> int:
        """Resolved unroll factor (full unroll -> trip count)."""
        for pragma in self.pragmas:
            if pragma.kind == "unroll":
                factor = pragma.factor if pragma.factor is not None else self.trip
                if self.trip % factor != 0:
                    raise HlsError(
                        f"loop {self.var!r}: unroll factor {factor} does "
                        f"not divide trip count {self.trip}"
                    )
                return factor
        return 1

    @property
    def pipelined(self) -> bool:
        """True when a pipeline pragma is attached."""
        return any(p.kind == "pipeline" for p in self.pragmas)

    @property
    def requested_ii(self) -> int:
        """The initiation interval requested by the pipeline pragma."""
        for pragma in self.pragmas:
            if pragma.kind == "pipeline":
                return pragma.ii
        return 1


@dataclass
class Program(object):
    """A compilable unit: declarations plus a top-level body."""

    name: str
    arrays: List[ArrayDecl] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)

    def array(self, name: str) -> ArrayDecl:
        """Look up a declaration by name."""
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise HlsError(f"program {self.name!r}: no array named {name!r}")

    def validate(self) -> None:
        """Check that every memory access targets a declared array."""
        names = {decl.name for decl in self.arrays}

        def walk(nodes: Sequence[Node]) -> None:
            for node in nodes:
                if isinstance(node, Loop):
                    walk(node.body)
                    continue
                for access in (node.load, node.store):
                    if access and access.array not in names:
                        raise HlsError(
                            f"statement {node} references undeclared "
                            f"array {access.array!r}"
                        )

        walk(self.body)
