"""Pragma-driven loop unrolling (the paper's Fig 3 transformation).

Unrolling a loop by factor ``f`` replicates its body ``f`` times in
space — after scheduling, each replica becomes its own datapath copy
(``decoder_core() x f`` in the paper's figure).  The residual loop runs
``trip / f`` sequential passes; a full unroll (``f == trip``) removes
the loop entirely.

Replica ``k`` of the body sees the original loop variable as
``f * v' + k`` where ``v'`` is the residual loop's variable; for a full
unroll the variable folds to the constant ``k``.  Scalar value names
are suffixed per replica to preserve single assignment, and the rename
map persists across replicas *and* into the code that follows the
loop: a source naming a value redefined by an earlier replica resolves
to that replica's definition.  This is sequential-C semantics, and it
is what turns an accumulator statement ``acc = add(acc, pr)`` into a
combinational adder chain when its loop is fully unrolled.

Limitation (documented, asserted nowhere): scalar recurrences across
iterations of a *non-unrolled pipelined* loop are not modelled — route
such state through a ``regfile`` read-modify-write (as the decoder's
min/sign updates do) or unroll the loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hls.ir import Loop, MemAccess, Node, Program, Stmt


def unroll_program(program: Program) -> Program:
    """Apply every unroll pragma, returning a new flattened program."""
    program.validate()
    names: Dict[str, str] = {}
    body = _unroll_nodes(program.body, names)
    return Program(program.name, list(program.arrays), body)


def _unroll_nodes(nodes: List[Node], names: Dict[str, str]) -> List[Node]:
    out: List[Node] = []
    for node in nodes:
        if isinstance(node, Stmt):
            out.append(node.renamed("", names))
            continue
        out.extend(_unroll_loop(node, names))
    return out


def _unroll_loop(loop: Loop, names: Dict[str, str]) -> List[Node]:
    factor = loop.unroll_factor

    if factor == 1:
        inner = _unroll_nodes(loop.body, names)
        residual = Loop(loop.var, loop.trip, inner, loop.pragmas, loop.gate_block)
        return [residual]

    full = factor == loop.trip
    replicas: List[Node] = []
    for k in range(factor):
        for node in loop.body:
            replicas.extend(
                _clone(node, loop.var, factor, k, full, f"__{loop.var}{k}", names)
            )

    if full:
        return replicas
    residual = Loop(
        loop.var,
        loop.trip // factor,
        replicas,
        tuple(p for p in loop.pragmas if p.kind != "unroll"),
        loop.gate_block,
    )
    return [residual]


def _clone(
    node: Node,
    var: str,
    factor: int,
    k: int,
    full: bool,
    suffix: str,
    names: Dict[str, str],
) -> List[Node]:
    if isinstance(node, Loop):
        # Recursively expand nested loops inside the replica; inner
        # unroll pragmas apply within the replica's scope.
        body: List[Node] = []
        for child in node.body:
            body.extend(_clone(child, var, factor, k, full, suffix, names))
        inner_loop = Loop(node.var, node.trip, body, node.pragmas, node.gate_block)
        return _unroll_loop(inner_loop, names)

    stmt = node.renamed(suffix, names)
    stmt.load = _rewrite(stmt.load, var, factor, k, full)
    stmt.store = _rewrite(stmt.store, var, factor, k, full)
    return [stmt]


def _rewrite(
    access: Optional[MemAccess], var: str, factor: int, k: int, full: bool
) -> Optional[MemAccess]:
    if access is None:
        return None
    if full:
        return MemAccess(access.array, access.index.substitute(var, k))
    return MemAccess(access.array, access.index.shift_var(var, var, factor, k))
