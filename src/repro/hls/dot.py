"""Graphviz (dot) export of dataflow graphs and module hierarchies.

Two views an HLS user keeps open while tuning pragmas:

* :func:`dfg_to_dot` — one scheduled block's dataflow graph, nodes
  annotated with operator kind and issue cycle, solid edges for data
  dependences and dashed for memory-order edges;
* :func:`hierarchy_to_dot` — the compiled module tree with replication
  counts (the ``x96`` clusters of the paper's block diagrams).
"""

from __future__ import annotations

from typing import Optional

from repro.hls.dfg import DataflowGraph
from repro.hls.rtl import RtlModule
from repro.hls.schedule import Schedule


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def dfg_to_dot(
    dfg: DataflowGraph,
    schedule: Optional[Schedule] = None,
    name: str = "dfg",
) -> str:
    """Render a dataflow graph (optionally scheduled) as dot text."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for i, stmt in enumerate(dfg.stmts):
        label = f"{i}: {stmt.op.kind}"
        if stmt.op.simd > 1:
            label += f" x{stmt.op.simd}"
        if stmt.dest:
            label += f"\\n{stmt.dest}"
        if stmt.load:
            label += f"\\nld {stmt.load.array}"
        if stmt.store:
            label += f"\\nst {stmt.store.array}"
        if schedule is not None:
            label += f"\\n@cycle {schedule.starts[i]}"
        lines.append(f"  n{i} [label={_quote(label)}];")
    for dep in dfg.deps:
        style = "solid" if dep.kind == "raw" else "dashed"
        extra = ""
        if dep.distance:
            extra = f', label="d{dep.distance}", color=red'
        lines.append(
            f"  n{dep.src} -> n{dep.dst} [style={style}{extra}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def hierarchy_to_dot(rtl: RtlModule, name: str = "hierarchy") -> str:
    """Render a compiled module tree as dot text."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=folder];"]
    counter = [0]
    index = {}

    def visit(module: RtlModule) -> int:
        node = counter[0]
        counter[0] += 1
        index[id(module)] = node
        bits = module.register_bits
        label = module.name.rsplit("/", 1)[-1] or module.name
        detail = []
        if bits:
            detail.append(f"{bits} reg bits")
        if module.memories:
            detail.append(f"{len(module.memories)} mems")
        if module.gated:
            detail.append("gated")
        text = label + ("\\n" + ", ".join(detail) if detail else "")
        lines.append(f"  m{node} [label={_quote(text)}];")
        for child, copies in module.submodules:
            child_node = visit(child)
            edge_label = f' [label="x{copies}"]' if copies > 1 else ""
            lines.append(f"  m{node} -> m{child_node}{edge_label};")
        return node

    visit(rtl)
    lines.append("}")
    return "\n".join(lines) + "\n"
