"""Netlist-level RTL model: the HLS back-end's output summary.

An :class:`RtlModule` is the structural quantity bridge between the
HLS front end and the area/power models: functional units with widths,
register bits, mux inputs, memory macros, and replicated submodules
(the ``x96 copies`` clusters of the paper's Figs 5 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import HlsError
from repro.synth.library import cell


@dataclass(frozen=True)
class MemoryMacro(object):
    """A memory instance: SRAM macro, ROM table, FIFO, or register file."""

    name: str
    words: int
    width_bits: int
    kind: str  # "sram" | "rom" | "fifo" | "regfile"

    @property
    def bits(self) -> int:
        """Capacity in bits."""
        return self.words * self.width_bits


@dataclass
class RtlModule(object):
    """Hierarchical netlist summary.

    Attributes
    ----------
    name:
        Module name (e.g. ``core1_dp``, ``decoder_core1``).
    fu_counts:
        (op kind, width) -> functional-unit instances.
    register_bits:
        Flip-flop bits in this module (pipeline + state registers).
    mux_inputs:
        Extra mux inputs from FU sharing.
    memories:
        Memory macros instantiated here.
    submodules:
        (module, copies) children — ``copies`` models the unroll-driven
        replication of datapath clusters.
    gated:
        Whether this module sits behind a block-level clock gate.
    """

    name: str
    fu_counts: Dict[Tuple[str, int], int] = field(default_factory=dict)
    register_bits: int = 0
    mux_inputs: int = 0
    memories: List[MemoryMacro] = field(default_factory=list)
    submodules: List[Tuple["RtlModule", int]] = field(default_factory=list)
    gated: bool = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_fu(self, kind: str, width: int, count: int = 1) -> None:
        """Add functional units of a kind/width."""
        cell(kind)  # validate kind
        if count < 0:
            raise HlsError(f"negative FU count for {kind}")
        key = (kind, width)
        self.fu_counts[key] = self.fu_counts.get(key, 0) + count

    def add_submodule(self, module: "RtlModule", copies: int = 1) -> None:
        """Instantiate ``copies`` replicas of a child module."""
        if copies < 1:
            raise HlsError(f"submodule copies must be >= 1, got {copies}")
        self.submodules.append((module, copies))

    # ------------------------------------------------------------------
    # rollups (inclusive of submodules)
    # ------------------------------------------------------------------
    def walk(self, multiplier: int = 1) -> Iterator[Tuple["RtlModule", int]]:
        """Yield (module, effective copies) over the whole hierarchy."""
        yield self, multiplier
        for child, copies in self.submodules:
            yield from child.walk(multiplier * copies)

    def total_register_bits(self) -> int:
        """Flip-flop bits including all replicated submodules."""
        return sum(m.register_bits * mult for m, mult in self.walk())

    def total_fu_area_ge(self) -> float:
        """Functional-unit area in gate equivalents, hierarchy-wide."""
        total = 0.0
        for module, mult in self.walk():
            for (kind, width), count in module.fu_counts.items():
                total += cell(kind).area_at(width) * count * mult
        return total

    def total_mux_inputs(self) -> int:
        """Mux inputs hierarchy-wide."""
        return sum(m.mux_inputs * mult for m, mult in self.walk())

    def total_memory_bits(self, kinds: Tuple[str, ...] = ("sram",)) -> int:
        """Capacity of memories of the given kinds, hierarchy-wide."""
        total = 0
        for module, mult in self.walk():
            for macro in module.memories:
                if macro.kind in kinds:
                    total += macro.bits * mult
        return total

    def regfile_bits(self) -> int:
        """Register-file macro bits realized as flip-flops."""
        total = 0
        for module, mult in self.walk():
            for macro in module.memories:
                if macro.kind in ("regfile", "fifo"):
                    total += macro.bits * mult
        return total

    def gated_register_bits(self) -> int:
        """Flip-flop + regfile bits inside clock-gated blocks.

        A module nested anywhere under a gated block is behind that
        block's gate, so gating is inherited down the hierarchy.
        """

        def visit(module: "RtlModule", mult: int, gated: bool) -> int:
            gated = gated or module.gated
            total = 0
            if gated:
                total += module.register_bits * mult
                for macro in module.memories:
                    if macro.kind in ("regfile", "fifo"):
                        total += macro.bits * mult
            for child, copies in module.submodules:
                total += visit(child, mult * copies, gated)
            return total

        return visit(self, 1, False)

    def summary(self) -> Dict[str, float]:
        """Headline structural numbers for reports."""
        return {
            "register_bits": self.total_register_bits(),
            "regfile_bits": self.regfile_bits(),
            "fu_area_ge": self.total_fu_area_ge(),
            "mux_inputs": self.total_mux_inputs(),
            "sram_bits": self.total_memory_bits(("sram",)),
        }
