"""Dataflow-graph construction over a straight-line statement list.

A :class:`DataflowGraph` is the scheduler's input: statement nodes plus
the dependence edges from :mod:`repro.hls.dependence`, with convenience
queries (predecessors, critical-path priorities, resource demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HlsError
from repro.hls.dependence import Dependence, analyze
from repro.hls.ir import Stmt


@dataclass
class DataflowGraph(object):
    """Statements plus dependence edges for one schedulable block."""

    stmts: List[Stmt]
    deps: List[Dependence]
    loop_var: Optional[str] = None
    _preds: Dict[int, List[Dependence]] = field(default_factory=dict, repr=False)
    _succs: Dict[int, List[Dependence]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for dep in self.deps:
            self._preds.setdefault(dep.dst, []).append(dep)
            self._succs.setdefault(dep.src, []).append(dep)

    def __len__(self) -> int:
        return len(self.stmts)

    def preds(self, node: int) -> List[Dependence]:
        """Incoming dependence edges of a node."""
        return self._preds.get(node, [])

    def succs(self, node: int) -> List[Dependence]:
        """Outgoing dependence edges of a node."""
        return self._succs.get(node, [])

    # ------------------------------------------------------------------
    # priorities
    # ------------------------------------------------------------------
    def heights(self, latency_of) -> List[int]:
        """Critical-path height of each node (list-scheduling priority).

        ``latency_of(stmt) -> int`` supplies per-op latencies.  Only
        intra-iteration (distance-0) edges contribute to height.
        """
        n = len(self.stmts)
        height = [0] * n
        # Statements are in program order, and distance-0 edges always
        # point forward, so one reverse sweep suffices.
        for i in range(n - 1, -1, -1):
            h = latency_of(self.stmts[i])
            best = 0
            for dep in self.succs(i):
                if dep.distance == 0:
                    best = max(best, height[dep.dst])
            height[i] = h + best
        return height

    # ------------------------------------------------------------------
    # resource demand
    # ------------------------------------------------------------------
    def op_counts(self) -> Dict[str, int]:
        """How many statements use each operator kind."""
        counts: Dict[str, int] = {}
        for stmt in self.stmts:
            counts[stmt.op.kind] = counts.get(stmt.op.kind, 0) + 1
        return counts

    def port_demand(self) -> Dict[Tuple[str, str], int]:
        """Accesses per (array, direction) — memory-port pressure."""
        demand: Dict[Tuple[str, str], int] = {}
        for stmt in self.stmts:
            if stmt.load:
                key = (stmt.load.array, "read")
                demand[key] = demand.get(key, 0) + 1
            if stmt.store:
                key = (stmt.store.array, "write")
                demand[key] = demand.get(key, 0) + 1
        return demand


def build_dfg(stmts: List[Stmt], loop_var: Optional[str] = None) -> DataflowGraph:
    """Analyze dependences and wrap the block in a DataflowGraph."""
    if not stmts:
        raise HlsError("cannot build a dataflow graph from an empty block")
    return DataflowGraph(stmts, analyze(stmts, loop_var), loop_var)
