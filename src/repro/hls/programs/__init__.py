"""IR programs compiled by the HLS engine.

* :mod:`decoder` — the paper's two LDPC decoder architectures (Figs 5
  and 7) as parameterized loop nests;
* :mod:`kernels` — small signal-processing kernels (FIR, vector ops,
  matrix multiply) used by tests and the HLS example.
"""

from repro.hls.programs.decoder import (
    DecoderProfile,
    build_perlayer_program,
    build_pipelined_program,
)
from repro.hls.programs.kernels import fir_program, matmul_program, vecadd_program

__all__ = [
    "DecoderProfile",
    "build_perlayer_program",
    "build_pipelined_program",
    "fir_program",
    "matmul_program",
    "vecadd_program",
]
