"""Small classic kernels for tests and the generic-HLS example.

These show the engine is a general tool, not a decoder-only script:
the same unroll/pipeline pragmas that scale the LDPC decoder scale a
FIR filter or a matrix multiply.
"""

from __future__ import annotations

from typing import Optional

from repro.hls.ir import Affine, ArrayDecl, Loop, MemAccess, Op, Program, Stmt
from repro.hls.pragmas import PIPELINE, UNROLL


def vecadd_program(
    n: int = 64, unroll: Optional[int] = None, pipelined: bool = True
) -> Program:
    """``y[i] = a[i] + b[i]`` — the smallest useful test program."""
    pragmas = []
    if unroll:
        pragmas.append(UNROLL(unroll))
    if pipelined:
        pragmas.append(PIPELINE(1))
    i = Affine.of("i")
    body = [
        Stmt("va", Op("load", 8), (), load=MemAccess("a", i)),
        Stmt("vb", Op("load", 8), (), load=MemAccess("b", i)),
        Stmt("vs", Op("add", 8), ("va", "vb")),
        Stmt("", Op("store", 8), ("vs",), store=MemAccess("y", i)),
    ]
    return Program(
        "vecadd",
        [
            ArrayDecl("a", n, 8, "sram"),
            ArrayDecl("b", n, 8, "sram"),
            ArrayDecl("y", n, 8, "sram"),
        ],
        [Loop("i", n, body, tuple(pragmas))],
    )


def fir_program(
    taps: int = 8,
    samples: int = 256,
    unroll_taps: bool = True,
    pipelined: bool = True,
) -> Program:
    """A ``taps``-tap FIR filter over a sample stream.

    The sample window lives in a register delay line (``regfile``), so
    all taps read in parallel.  Unrolling the tap loop turns the
    accumulator recurrence into a combinational multiply-add chain (the
    persistent-rename property of the unroller); pipelining the sample
    loop then reaches II = 1 — the canonical HLS demonstration.
    """
    t = Affine.of("t")
    tap_body = [
        Stmt(
            "xv",
            Op("load", 8),
            (),
            load=MemAccess("x", Affine((("n", 1), ("t", 1)), 0)),
        ),
        Stmt("cv", Op("load", 8), (), load=MemAccess("coef", t)),
        Stmt("pr", Op("mul", 8), ("xv", "cv")),
        Stmt("ac", Op("add", 16), ("ac", "pr")),
    ]
    tap_pragmas = (UNROLL(),) if unroll_taps else ()
    sample_body = [
        Loop("t", taps, tap_body, tap_pragmas),
        Stmt("", Op("store", 16), ("ac",), store=MemAccess("y", Affine.of("n"))),
    ]
    sample_pragmas = (PIPELINE(1),) if pipelined else ()
    return Program(
        "fir",
        [
            ArrayDecl("x", samples + taps, 8, "regfile"),
            ArrayDecl("coef", taps, 8, "rom"),
            ArrayDecl("y", samples, 16, "sram"),
        ],
        [Loop("n", samples, sample_body, sample_pragmas)],
    )


def matmul_program(size: int = 8, unroll_inner: bool = True) -> Program:
    """``C = A @ B`` for square ``size`` matrices.

    Operands live in register files so the fully unrolled dot product
    reads all ``size`` pairs at once; the inner product accumulates
    through an SSA adder chain.
    """
    inner = [
        Stmt(
            "av",
            Op("load", 8),
            (),
            load=MemAccess("A", Affine((("i", size), ("k", 1)), 0)),
        ),
        Stmt(
            "bv",
            Op("load", 8),
            (),
            load=MemAccess("B", Affine((("k", size), ("j", 1)), 0)),
        ),
        Stmt("pv", Op("mul", 8), ("av", "bv")),
        Stmt("sv", Op("add", 16), ("sv", "pv")),
    ]
    inner_pragmas = (UNROLL(),) if unroll_inner else ()
    j_body = [
        Loop("k", size, inner, inner_pragmas),
        Stmt(
            "",
            Op("store", 16),
            ("sv",),
            store=MemAccess("C", Affine((("i", size), ("j", 1)), 0)),
        ),
    ]
    loops = Loop("i", size, [Loop("j", size, j_body)])
    return Program(
        "matmul",
        [
            ArrayDecl("A", size * size, 8, "regfile"),
            ArrayDecl("B", size * size, 8, "regfile"),
            ArrayDecl("C", size * size, 16, "sram"),
        ],
        [loops],
    )
