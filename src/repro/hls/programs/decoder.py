"""The paper's decoder architectures as HLS input programs.

These loop nests mirror the C pseudo-code in the paper's Figs 5 and 7:

.. code-block:: c

    for (i = 0; i < I; i++) {          // iterations
      for (l = 0; l < L; l++) {        // layers
        for (j = 0; j < COLS; j++) {   // decoder_core1, block-serial
          barrel_shifter();            //   z lanes in lock-step
          core1_dp();                  //   Q = P - R; min/min2/sign
        }
        for (k = 0; k < COLS; k++) {   // decoder_core2
          core2_dp();                  //   R' = 0.75*sign*min; P' = Q+R'
        }
      }
    }

The z-lane lock-step datapath is expressed with ``simd`` operations
(one statement = ``parallelism`` lanes); choosing ``parallelism < z``
multiplies the column trip count by ``z / parallelism`` — the paper's
Fig 3 scalability knob (96 cores vs 48 cores at twice the cycles).

The two-layer pipelined variant (Fig 7) differs structurally by:
per-core private copies of the min1/min2/pos1/sign arrays, a Q FIFO
instead of the Q array, and the scoreboard register with its
check/set/clear operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.codes.qc import QCLDPCCode
from repro.errors import HlsError
from repro.hls.ir import Affine, ArrayDecl, Loop, MemAccess, Op, Program, Stmt
from repro.hls.pragmas import PIPELINE

#: Position (pos1) register width, as in the paper's block diagram.
_POS_BITS = 5
#: Parity-check ROM entry: block column (5b) + shift (7b) + flags.
_ROM_BITS = 16


@dataclass(frozen=True)
class DecoderProfile(object):
    """Structural parameters of the code family a decoder must support.

    Attributes
    ----------
    z:
        Maximum expansion factor (96 for WiMax).
    nb:
        Block columns (24) — the P memory depth.
    mb:
        Block rows / layers of the largest-rate... of the reference
        code (12 for rate 1/2).
    max_degree:
        Largest layer degree of the reference code (7 for rate 1/2).
    r_words:
        R-memory depth — the max non-zero block count over every rate
        class the decoder must support (84 for full WiMax support).
    msg_bits:
        Message quantization (8-bit P/R as in Section IV-A).
    iterations:
        Decoding iteration budget (10 in Table II).
    """

    z: int = 96
    nb: int = 24
    mb: int = 12
    max_degree: int = 7
    r_words: int = 84
    msg_bits: int = 8
    iterations: int = 10

    @classmethod
    def from_code(
        cls,
        code: QCLDPCCode,
        r_words: Optional[int] = None,
        msg_bits: int = 8,
        iterations: int = 10,
    ) -> "DecoderProfile":
        """Derive a profile from a concrete code instance."""
        return cls(
            z=code.z,
            nb=code.nb,
            mb=code.mb,
            max_degree=code.max_layer_degree,
            r_words=r_words if r_words is not None else code.nnz_blocks,
            msg_bits=msg_bits,
            iterations=iterations,
        )

    def memory_bits(self) -> int:
        """Total P + R SRAM capacity (Table II's 82,944 bits)."""
        word = self.z * self.msg_bits
        return self.nb * word + self.r_words * word


def _resolve_parallelism(profile: DecoderProfile, parallelism: Optional[int]) -> int:
    p = parallelism if parallelism is not None else profile.z
    if p < 1 or profile.z % p != 0:
        raise HlsError(
            f"parallelism {p} must divide the expansion factor {profile.z}"
        )
    return p


# ---------------------------------------------------------------------------
# shared statement builders
# ---------------------------------------------------------------------------


def _core1_stmts(
    p: int, w: int, suffix: str, q_dest: str, q_store: MemAccess
) -> List[Stmt]:
    """core1_dp: read P/R, form Q, update running min1/min2/pos/sign."""
    j = Affine.of("j")
    zero = Affine.of(const=0)
    s = suffix
    return [
        Stmt(f"h{s}", Op("load", _ROM_BITS), (), load=MemAccess("h_rom", j)),
        Stmt(f"pw{s}", Op("load", w, p), (f"h{s}",), load=MemAccess("p_mem", j)),
        Stmt(f"ps{s}", Op("rotate", w, p), (f"pw{s}", f"h{s}")),
        Stmt(f"rw{s}", Op("load", w, p), (f"h{s}",), load=MemAccess("r_mem", j)),
        Stmt(f"q{s}", Op("sub", w, p), (f"ps{s}", f"rw{s}")),
        Stmt("", Op("store", w, p), (f"q{s}",), store=q_store),
        Stmt(f"aq{s}", Op("abs", w, p), (f"q{s}",)),
        Stmt(f"sg{s}", Op("sign", 1, p), (f"q{s}",)),
        Stmt(
            f"sa{s}",
            Op("xor", 1, p),
            (f"sg{s}",),
            load=MemAccess(f"sign_array{s}", zero),
            store=MemAccess(f"sign_array{s}", zero),
        ),
        Stmt(
            f"m1{s}",
            Op("min", w, p),
            (f"aq{s}",),
            load=MemAccess(f"min1_array{s}", zero),
            store=MemAccess(f"min1_array{s}", zero),
        ),
        Stmt(f"mx{s}", Op("max", w, p), (f"aq{s}",)),
        Stmt(
            f"m2{s}",
            Op("min", w, p),
            (f"mx{s}",),
            load=MemAccess(f"min2_array{s}", zero),
            store=MemAccess(f"min2_array{s}", zero),
        ),
        Stmt(f"pc{s}", Op("cmp", 1, p), (f"aq{s}",)),
        Stmt(
            f"po{s}",
            Op("mux", _POS_BITS, p),
            (f"pc{s}",),
            load=MemAccess(f"pos1_array{s}", zero),
            store=MemAccess(f"pos1_array{s}", zero),
        ),
    ]


def _core2_stmts(p: int, w: int, suffix: str, q_load: MemAccess) -> List[Stmt]:
    """core2_dp: select min, scale by 0.75, apply signs, write back."""
    k = Affine.of("k")
    zero = Affine.of(const=0)
    s = suffix
    return [
        Stmt(f"qv{s}", Op("load", w, p), (), load=q_load),
        Stmt(f"l1{s}", Op("load", w, p), (), load=MemAccess(f"min1_array{s}", zero)),
        Stmt(f"l2{s}", Op("load", w, p), (), load=MemAccess(f"min2_array{s}", zero)),
        Stmt(
            f"lp{s}",
            Op("load", _POS_BITS, p),
            (),
            load=MemAccess(f"pos1_array{s}", zero),
        ),
        Stmt(f"ls{s}", Op("load", 1, p), (), load=MemAccess(f"sign_array{s}", zero)),
        Stmt(f"sel{s}", Op("mux", w, p), (f"l1{s}", f"l2{s}", f"lp{s}")),
        Stmt(f"sc{s}", Op("scale34", w, p), (f"sel{s}",)),
        Stmt(f"qs{s}", Op("sign", 1, p), (f"qv{s}",)),
        Stmt(f"rs{s}", Op("xor", 1, p), (f"ls{s}", f"qs{s}")),
        Stmt(f"ng{s}", Op("neg", w, p), (f"sc{s}",)),
        Stmt(f"rn{s}", Op("mux", w, p), (f"sc{s}", f"ng{s}", f"rs{s}")),
        Stmt("", Op("store", w, p), (f"rn{s}",), store=MemAccess("r_mem", k)),
        Stmt(f"pn{s}", Op("add", w, p), (f"qv{s}", f"rn{s}")),
        Stmt(f"pt{s}", Op("sat", w, p), (f"pn{s}",)),
        Stmt("", Op("store", w, p), (f"pt{s}",), store=MemAccess("p_mem", k)),
        # On-the-fly early-termination support: accumulate the parity of
        # the hard decisions written back, so the top level can "return
        # early if all the parity checks are satisfied" at zero cycles.
        Stmt(f"hd{s}", Op("sign", 1, p), (f"pt{s}",)),
        Stmt(
            f"sy{s}",
            Op("xor", 1, p),
            (f"hd{s}",),
            load=MemAccess("syndrome_acc", zero),
            store=MemAccess("syndrome_acc", zero),
        ),
    ]


def _shared_arrays(
    profile: DecoderProfile, p: int, passes: int
) -> List[ArrayDecl]:
    word = p * profile.msg_bits
    return [
        ArrayDecl("p_mem", profile.nb * passes, word, "sram"),
        ArrayDecl("r_mem", profile.r_words * passes, word, "sram"),
        ArrayDecl("h_rom", profile.r_words, _ROM_BITS, "rom"),
        # Per-lane parity accumulator for zero-cycle early termination.
        ArrayDecl("syndrome_acc", passes, p, "regfile"),
    ]


def _core_arrays(p: int, w: int, suffix: str, passes: int) -> List[ArrayDecl]:
    return [
        ArrayDecl(f"min1_array{suffix}", passes, p * w, "regfile"),
        ArrayDecl(f"min2_array{suffix}", passes, p * w, "regfile"),
        ArrayDecl(f"pos1_array{suffix}", passes, p * _POS_BITS, "regfile"),
        ArrayDecl(f"sign_array{suffix}", passes, p, "regfile"),
    ]


# ---------------------------------------------------------------------------
# architecture builders
# ---------------------------------------------------------------------------


def build_perlayer_program(
    profile: DecoderProfile = DecoderProfile(),
    parallelism: Optional[int] = None,
) -> Program:
    """The per-layer two-stage architecture of Figs 4/5.

    One shared set of min/pos/sign arrays; core1 fully drains a layer
    into the Q register array before core2 starts.
    """
    p = _resolve_parallelism(profile, parallelism)
    passes = profile.z // p
    w = profile.msg_bits
    cols = profile.max_degree * passes

    arrays = _shared_arrays(profile, p, passes)
    arrays.append(ArrayDecl("q_array", profile.max_degree * passes, p * w, "regfile"))
    arrays.extend(_core_arrays(p, w, "", passes))

    core1 = Loop(
        "j",
        cols,
        _core1_stmts(p, w, "", "q", MemAccess("q_array", Affine.of("j"))),
        (PIPELINE(1),),
        gate_block="core1",
    )
    core2 = Loop(
        "k",
        cols,
        _core2_stmts(p, w, "", MemAccess("q_array", Affine.of("k"))),
        (PIPELINE(1),),
        gate_block="core2",
    )
    layers = Loop("l", profile.mb, [core1, core2])
    iters = Loop("it", profile.iterations, [layers])
    return Program(f"ldpc_perlayer_p{p}", arrays, [iters])


def build_pipelined_program(
    profile: DecoderProfile = DecoderProfile(),
    parallelism: Optional[int] = None,
) -> Program:
    """The two-layer pipelined architecture of Figs 6/7.

    Each core owns private min/pos/sign array copies; Q values flow
    through a FIFO; the scoreboard register adds hazard check/set logic
    to core1 and clear logic to core2.  (The *timing* overlap of the
    two cores across layers is a property of the generated hardware's
    handshake, simulated cycle-accurately by
    :mod:`repro.arch.pipelined`; the program here defines the
    structure.)
    """
    p = _resolve_parallelism(profile, parallelism)
    passes = profile.z // p
    w = profile.msg_bits
    cols = profile.max_degree * passes

    arrays = _shared_arrays(profile, p, passes)
    arrays.append(
        ArrayDecl("q_fifo", profile.max_degree * passes, p * w, "fifo")
    )
    arrays.extend(_core_arrays(p, w, "_c1", passes))
    arrays.extend(_core_arrays(p, w, "_c2", passes))
    arrays.append(ArrayDecl("scoreboard", 1, profile.nb, "regfile"))

    zero = Affine.of(const=0)
    check = [
        # check_scoreboard(): stall core1 while a P write is pending.
        Stmt("sb", Op("load", profile.nb), (), load=MemAccess("scoreboard", zero)),
        Stmt("hz", Op("cmp", profile.nb), ("sb",)),
        # set_scoreboard(): mark this column pending.
        Stmt(
            "sbs",
            Op("or", profile.nb),
            ("hz",),
            load=MemAccess("scoreboard", zero),
            store=MemAccess("scoreboard", zero),
        ),
    ]
    clear = [
        # clear_scoreboard(): writeback done for this column.
        Stmt(
            "sbc",
            Op("and", profile.nb),
            (),
            load=MemAccess("scoreboard", zero),
            store=MemAccess("scoreboard", zero),
        ),
    ]

    core1 = Loop(
        "j",
        cols,
        check
        + _core1_stmts(p, w, "_c1", "q", MemAccess("q_fifo", Affine.of("j"))),
        (PIPELINE(1),),
        gate_block="core1",
    )
    core2 = Loop(
        "k",
        cols,
        _core2_stmts(p, w, "_c2", MemAccess("q_fifo", Affine.of("k"))) + clear,
        (PIPELINE(1),),
        gate_block="core2",
    )
    layers = Loop("l", profile.mb, [core1, core2])
    iters = Loop("it", profile.iterations, [layers])
    return Program(f"ldpc_pipelined_p{p}", arrays, [iters])
