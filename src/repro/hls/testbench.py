"""Testbench generation: PICO's "customized test benches", reproduced.

PICO emits, alongside the RTL, a testbench that drives the design with
the C simulation's inputs and checks its outputs against the C results.
This module does the same for the decoder: given a frame of channel
LLRs, it runs the bit-accurate fixed-point model to produce golden
vectors and emits

* ``stimulus`` — the quantized LLRs, one P-memory word per line, as
  hex (two's complement, 8 bits per lane);
* ``golden`` — the expected P memory contents after decoding;
* a Verilog testbench skeleton that loads the stimulus with
  ``$readmemh``, runs the decoder, and compares against the golden
  memory word by word.

The vectors are self-consistent by construction (the same fixed-point
arithmetic the architecture models are certified against), so a real
RTL implementation passing this bench is equivalent to the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import LayeredMinSumDecoder
from repro.errors import HlsError


@dataclass
class TestbenchBundle(object):
    """Everything PICO would hand the verification engineer."""

    stimulus_hex: List[str]
    golden_hex: List[str]
    testbench_verilog: str
    iterations: int
    converged: bool


def _word_to_hex(word: np.ndarray, lane_bits: int) -> str:
    """Pack lane codes (two's complement) into one hex word string."""
    mask = (1 << lane_bits) - 1
    value = 0
    # Lane 0 occupies the least-significant bits.
    for lane in reversed(word.tolist()):
        value = (value << lane_bits) | (int(lane) & mask)
    digits = (len(word) * lane_bits + 3) // 4
    return f"{value:0{digits}x}"


def _hex_to_word(text: str, lanes: int, lane_bits: int) -> np.ndarray:
    """Inverse of :func:`_word_to_hex`."""
    value = int(text, 16)
    mask = (1 << lane_bits) - 1
    sign = 1 << (lane_bits - 1)
    out = np.zeros(lanes, dtype=np.int32)
    for lane in range(lanes):
        code = value & mask
        out[lane] = code - (1 << lane_bits) if code & sign else code
        value >>= lane_bits
    return out


def generate_testbench(
    code: QCLDPCCode,
    channel_llrs: np.ndarray,
    max_iterations: int = 10,
    fmt: FixedPointFormat = MESSAGE_8BIT,
    design_name: str = "ldpc_decoder_top",
) -> TestbenchBundle:
    """Produce golden vectors and a Verilog testbench for one frame."""
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.shape != (code.n,):
        raise HlsError(f"LLR length {llrs.shape} != ({code.n},)")

    codes = fmt.quantize(llrs)
    decoder = LayeredMinSumDecoder(
        code, max_iterations=max_iterations, fixed=True, fmt=fmt
    )
    result = decoder.decode_codes(codes)
    final_codes = np.round(result.llrs / fmt.scale).astype(np.int32)

    stimulus = [
        _word_to_hex(codes[j * code.z : (j + 1) * code.z], fmt.total_bits)
        for j in range(code.nb)
    ]
    golden = [
        _word_to_hex(final_codes[j * code.z : (j + 1) * code.z], fmt.total_bits)
        for j in range(code.nb)
    ]

    word_bits = code.z * fmt.total_bits
    verilog = f"""\
// Auto-generated testbench for {design_name}
// Frame: n={code.n}, z={code.z}, {fmt.total_bits}-bit messages,
// expected result: {'converged' if result.converged else 'not converged'} \
in {result.iterations} iterations.
`timescale 1ns/1ps
module tb_{design_name};
  reg clk = 0;
  reg rst_n = 0;
  reg enable = 0;
  wire done;

  reg [{word_bits - 1}:0] stimulus [0:{code.nb - 1}];
  reg [{word_bits - 1}:0] golden   [0:{code.nb - 1}];
  integer i, errors;

  {design_name} dut (
    .clk(clk), .rst_n(rst_n), .enable(enable), .done(done)
  );

  always #1.25 clk = ~clk;  // 400 MHz

  initial begin
    $readmemh("stimulus.hex", stimulus);
    $readmemh("golden.hex", golden);
    // Load the P memory (backdoor; replace with the bus interface).
    for (i = 0; i < {code.nb}; i = i + 1)
      dut.p_mem[i] = stimulus[i];
    #10 rst_n = 1; enable = 1;
    wait (done);
    errors = 0;
    for (i = 0; i < {code.nb}; i = i + 1)
      if (dut.p_mem[i] !== golden[i]) begin
        errors = errors + 1;
        $display("MISMATCH word %0d: got %h want %h",
                 i, dut.p_mem[i], golden[i]);
      end
    if (errors == 0) $display("PASS: all {code.nb} P words match");
    else $display("FAIL: %0d mismatching words", errors);
    $finish;
  end
endmodule
"""
    return TestbenchBundle(
        stimulus_hex=stimulus,
        golden_hex=golden,
        testbench_verilog=verilog,
        iterations=result.iterations,
        converged=result.converged,
    )
