"""Block-level clock-gating analysis (the paper's Section IV-C).

PICO inserts two levels of gating:

* *register-level*: a register whose enable is inactive in a cycle is
  not clocked;
* *block-level*: an entire processing block (a core cluster) with no
  activity has its clock shut off.

For power estimation the quantity that matters is, per register
population, the fraction of cycles it is actually clocked.  This module
derives those fractions from an architecture activity trace (see
:mod:`repro.arch.scheduler_trace`): a block active for 71% of cycles
has its sequential internal power cut by the remaining 29% — exactly
the reduction Table I reports for the two-layer pipelined decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass
class GatingReport(object):
    """Clock-gating effectiveness for one design + workload.

    Attributes
    ----------
    block_activity:
        Block name -> fraction of cycles clocked (0..1) with gating.
    gated_fraction:
        Register-bit-weighted average activity: the multiplier applied
        to sequential internal power when gating is enabled.
    """

    block_activity: Dict[str, float] = field(default_factory=dict)
    gated_fraction: float = 1.0

    @property
    def internal_power_saving(self) -> float:
        """Fractional sequential-internal power saved by gating."""
        return 1.0 - self.gated_fraction


def analyze_gating(
    block_activity: Mapping[str, float],
    block_register_bits: Mapping[str, int],
) -> GatingReport:
    """Combine per-block activity with register populations.

    Parameters
    ----------
    block_activity:
        Block name -> fraction of cycles the block was active (from an
        architecture simulation trace).
    block_register_bits:
        Block name -> flip-flop bits behind that block's gate.
    """
    total_bits = 0
    weighted = 0.0
    activity: Dict[str, float] = {}
    for name, bits in block_register_bits.items():
        frac = min(max(float(block_activity.get(name, 1.0)), 0.0), 1.0)
        activity[name] = frac
        total_bits += bits
        weighted += frac * bits
    gated = weighted / total_bits if total_bits else 1.0
    return GatingReport(block_activity=activity, gated_fraction=gated)
