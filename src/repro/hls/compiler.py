"""The top-level PICO-like compiler driver.

``PicoCompiler.compile(program)`` runs the full flow of the paper's
Fig 1 on one program: unroll pragmas, build dataflow graphs, schedule
(list or modulo per pragma), allocate functional units and registers,
and emit an :class:`~repro.hls.rtl.RtlModule` netlist summary plus a
cycle count for one top-to-bottom execution of the program body.

Cycle accounting:

* a straight-line block costs its schedule length;
* a sequential loop costs ``trip * body_cycles``;
* a pipelined loop costs ``(trip - 1) * II + body_length`` (ramp-up
  plus steady state) — the block-serial decoder core loops run at
  II = 1, so a layer of degree d costs ``d - 1 + depth`` cycles, which
  is exactly the per-layer fill/drain behaviour of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import HlsError
from repro.hls.allocation import Allocation, allocate
from repro.hls.dfg import build_dfg
from repro.hls.ir import ArrayDecl, Loop, Node, Program, Stmt
from repro.hls.rtl import MemoryMacro, RtlModule
from repro.hls.schedule import Schedule, Scheduler
from repro.hls.unroll import unroll_program
from repro.synth.area import AreaReport, estimate_area
from repro.synth.tech65 import TSMC65GP, TechnologyModel
from repro.synth.timing import TimingModel


@dataclass
class BlockReport(object):
    """Schedule + allocation for one scheduled region."""

    label: str
    schedule: Schedule
    allocation: Allocation
    pipelined: bool
    trip: int = 1

    @property
    def cycles(self) -> int:
        """Total cycles this region contributes to one program pass."""
        if self.pipelined:
            return (self.trip - 1) * self.schedule.ii + self.schedule.length
        return self.trip * self.schedule.length


@dataclass
class HlsResult(object):
    """Everything the back-end models need about a compiled program."""

    program: Program
    clock_mhz: float
    cycles: int
    rtl: RtlModule
    blocks: List[BlockReport] = field(default_factory=list)

    def area(self, tech: TechnologyModel = TSMC65GP) -> AreaReport:
        """Area report at the compile-time target clock."""
        return estimate_area(self.rtl, self.clock_mhz, tech)

    def block(self, label: str) -> BlockReport:
        """Look up a region report by label."""
        for report in self.blocks:
            if report.label == label:
                return report
        raise HlsError(f"no scheduled block labelled {label!r}")


class PicoCompiler(object):
    """Un-timed IR in, netlist + schedule out (the paper's Fig 1 flow).

    Parameters
    ----------
    clock_mhz:
        Target clock frequency; drives operator latencies, pipeline
        depths, and the area sizing factor.
    tech:
        Technology model (default 65 nm).
    resources:
        Optional FU budget per operator kind; by default operators are
        unlimited and parallelism is set purely by the unroll pragmas,
        which is PICO's behaviour in the paper.
    """

    def __init__(
        self,
        clock_mhz: float,
        tech: TechnologyModel = TSMC65GP,
        resources: Optional[Dict[str, int]] = None,
    ) -> None:
        self.clock_mhz = clock_mhz
        self.tech = tech
        self.timing = TimingModel(tech)
        self.resources = dict(resources or {})

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def compile(self, program: Program) -> HlsResult:
        """Run unroll -> schedule -> allocate -> RTL on a program."""
        flat = unroll_program(program)
        scheduler = Scheduler(
            self.timing, self.clock_mhz, self.resources, flat.arrays
        )
        top = RtlModule(flat.name)
        self._attach_memories(top, flat.arrays)
        blocks: List[BlockReport] = []
        cycles = self._compile_nodes(
            flat.body, scheduler, top, blocks, label=flat.name
        )
        return HlsResult(flat, self.clock_mhz, cycles, top, blocks)

    # ------------------------------------------------------------------
    # recursion over the loop nest
    # ------------------------------------------------------------------
    def _compile_nodes(
        self,
        nodes: List[Node],
        scheduler: Scheduler,
        module: RtlModule,
        blocks: List[BlockReport],
        label: str,
    ) -> int:
        cycles = 0
        run: List[Stmt] = []
        run_index = 0
        for node in nodes:
            if isinstance(node, Stmt):
                run.append(node)
                continue
            if run:
                cycles += self._compile_straightline(
                    run, scheduler, module, blocks, f"{label}/b{run_index}"
                )
                run_index += 1
                run = []
            cycles += self._compile_loop(node, scheduler, module, blocks, label)
        if run:
            cycles += self._compile_straightline(
                run, scheduler, module, blocks, f"{label}/b{run_index}"
            )
        return cycles

    def _compile_straightline(
        self,
        stmts: List[Stmt],
        scheduler: Scheduler,
        module: RtlModule,
        blocks: List[BlockReport],
        label: str,
    ) -> int:
        dfg = build_dfg(stmts)
        schedule = scheduler.schedule_block(dfg)
        alloc = allocate(dfg, schedule)
        self._fold_allocation(module, alloc)
        report = BlockReport(label, schedule, alloc, pipelined=False)
        blocks.append(report)
        return report.cycles

    def _compile_loop(
        self,
        loop: Loop,
        scheduler: Scheduler,
        module: RtlModule,
        blocks: List[BlockReport],
        label: str,
    ) -> int:
        loop_label = f"{label}/{loop.var}"
        child = RtlModule(loop_label, gated=bool(loop.gate_block))
        module.add_submodule(child, 1)

        stmts_only = all(isinstance(n, Stmt) for n in loop.body)
        if stmts_only and loop.pipelined:
            dfg = build_dfg(list(loop.body), loop_var=loop.var)
            schedule = scheduler.schedule_pipelined(dfg, loop.requested_ii)
            alloc = allocate(dfg, schedule)
            self._fold_allocation(child, alloc)
            report = BlockReport(
                loop_label, schedule, alloc, pipelined=True, trip=loop.trip
            )
            blocks.append(report)
            return report.cycles
        if stmts_only:
            dfg = build_dfg(list(loop.body))
            schedule = scheduler.schedule_block(dfg)
            alloc = allocate(dfg, schedule)
            self._fold_allocation(child, alloc)
            report = BlockReport(
                loop_label, schedule, alloc, pipelined=False, trip=loop.trip
            )
            blocks.append(report)
            return report.cycles

        body_cycles = self._compile_nodes(
            list(loop.body), scheduler, child, blocks, loop_label
        )
        return loop.trip * body_cycles

    # ------------------------------------------------------------------
    # netlist assembly
    # ------------------------------------------------------------------
    @staticmethod
    def _fold_allocation(module: RtlModule, alloc: Allocation) -> None:
        for (kind, width), count in alloc.fu_counts.items():
            module.add_fu(kind, width, count)
        module.register_bits += alloc.register_bits
        module.mux_inputs += alloc.mux_inputs

    @staticmethod
    def _attach_memories(module: RtlModule, arrays: List[ArrayDecl]) -> None:
        for decl in arrays:
            module.memories.append(
                MemoryMacro(decl.name, decl.words, decl.width_bits, decl.kind)
            )
