"""PICO-style synthesis reports: what the tool prints after a compile.

A real HLS run ends with a report the designer reads before touching
RTL: per-block schedules with II and depth, the functional-unit
inventory, the memory map, and the timing story at the target clock.
This module renders that report from an :class:`HlsResult` — both as a
human artifact and as the quickest way to understand what the compiler
did to a program.
"""

from __future__ import annotations

from typing import List

from repro.hls.compiler import HlsResult
from repro.synth.tech65 import TSMC65GP, TechnologyModel
from repro.utils.tables import render_table


def synthesis_report(result: HlsResult, tech: TechnologyModel = TSMC65GP) -> str:
    """Render the full post-compile report."""
    sections = [
        _header(result, tech),
        _schedule_section(result),
        _fu_section(result),
        _memory_section(result),
        _area_section(result, tech),
    ]
    return "\n\n".join(sections)


def _header(result: HlsResult, tech: TechnologyModel) -> str:
    budget = tech.fo4_budget(result.clock_mhz)
    return (
        f"=== repro.hls synthesis report: {result.program.name} ===\n"
        f"target clock   : {result.clock_mhz:.0f} MHz "
        f"({tech.period_ps(result.clock_mhz):.0f} ps period, "
        f"{budget:.1f} FO4 usable per cycle)\n"
        f"technology     : {tech.name}\n"
        f"total latency  : {result.cycles} cycles per top-level pass "
        f"({result.cycles / result.clock_mhz:.2f} us)"
    )


def _schedule_section(result: HlsResult) -> str:
    rows: List[List[object]] = []
    for block in result.blocks:
        rows.append(
            [
                block.label,
                "pipelined" if block.pipelined else "sequential",
                block.trip,
                block.schedule.ii if block.pipelined else "-",
                block.schedule.length,
                block.cycles,
            ]
        )
    return render_table(
        ["block", "mode", "trip", "II", "depth", "cycles"],
        rows,
        title="Scheduled blocks",
    )


def _fu_section(result: HlsResult) -> str:
    totals = {}
    for module, mult in result.rtl.walk():
        for (kind, width), count in module.fu_counts.items():
            key = (kind, width)
            totals[key] = totals.get(key, 0) + count * mult
    rows = [
        [kind, width, count]
        for (kind, width), count in sorted(totals.items())
    ]
    return render_table(
        ["operator", "width", "lane-units"],
        rows,
        title="Functional-unit inventory",
    )


def _memory_section(result: HlsResult) -> str:
    rows = []
    for module, mult in result.rtl.walk():
        for macro in module.memories:
            rows.append(
                [
                    macro.name,
                    macro.kind,
                    macro.words,
                    macro.width_bits,
                    macro.bits * mult,
                ]
            )
    return render_table(
        ["memory", "kind", "words", "width", "total bits"],
        rows,
        title="Memory map",
    )


def _area_section(result: HlsResult, tech: TechnologyModel) -> str:
    area = result.area(tech)
    rows = [
        [component, f"{ge:.0f}", f"{tech.ge_to_mm2(ge) * 1e3:.1f}"]
        for component, ge in area.breakdown_ge.items()
    ]
    rows.append(
        ["standard cells total", f"{area.std_cell_ge:.0f}",
         f"{area.std_cell_mm2 * 1e3:.1f}"]
    )
    rows.append(["SRAM macros", "-", f"{area.sram_mm2 * 1e3:.1f}"])
    rows.append(
        ["core (after 75% utilization)", "-", f"{area.core_area_mm2 * 1e3:.1f}"]
    )
    return render_table(
        ["area component", "GE", "x1e-3 mm^2"],
        rows,
        title="Area estimate",
    )
