"""Compiler directives, modelled on PICO's C pragmas.

The paper's Fig 3 shows the key directive: ``#pragma unroll`` before a
loop makes the compiler replicate the loop body as parallel hardware.
Partial unrolling (an inner unrolled loop inside a sequential outer
loop) is how the paper scales parallelism from 96 cores down to 48 or
fewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Pragma(object):
    """A directive attached to a loop.

    Attributes
    ----------
    kind:
        ``"unroll"`` or ``"pipeline"``.
    factor:
        Unroll factor; ``None`` means *fully* unroll (the paper's plain
        ``#pragma unroll``).
    ii:
        Requested initiation interval for ``pipeline`` (1 = accept a new
        loop iteration every cycle, the block-serial decoder's mode).
    """

    kind: str
    factor: Optional[int] = None
    ii: int = 1


def UNROLL(factor: Optional[int] = None) -> Pragma:
    """``#pragma unroll [factor]`` — replicate the loop body in space."""
    if factor is not None and factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    return Pragma("unroll", factor=factor)


def PIPELINE(ii: int = 1) -> Pragma:
    """``#pragma pipeline [II]`` — overlap loop iterations in time."""
    if ii < 1:
        raise ValueError(f"initiation interval must be >= 1, got {ii}")
    return Pragma("pipeline", ii=ii)
