"""A PICO-like high-level algorithmic synthesis engine.

The paper's methodology is: describe the decoder as sequential un-timed
C with ``#pragma unroll`` directives, and let PICO find the parallelism
and emit RTL (Figs 1, 3, 5, 7).  This package reproduces that flow on a
small loop-nest IR:

1. :mod:`ir` / :mod:`pragmas` — loop nests, array declarations, and the
   unroll / pipeline pragmas of Fig 3;
2. :mod:`unroll` — pragma-driven loop unrolling (datapath replication);
3. :mod:`dfg` + :mod:`dependence` — dataflow construction and RAW /
   WAR / WAW analysis over scalar values and array accesses;
4. :mod:`schedule` — resource-constrained list scheduling and modulo
   (initiation-interval) pipelining;
5. :mod:`allocation` — functional-unit binding and register counting;
6. :mod:`rtl` — the netlist-level summary (FUs, registers, memories)
   that the area / power models consume;
7. :mod:`clockgating` — block-level gating analysis (Section IV-C);
8. :mod:`compiler` — the top-level ``PicoCompiler`` tying it together.

:mod:`repro.hls.programs` expresses the paper's two decoder
architectures in this IR.
"""

from repro.hls.ir import (
    Affine,
    ArrayDecl,
    Loop,
    MemAccess,
    Op,
    Program,
    Stmt,
)
from repro.hls.pragmas import Pragma, PIPELINE, UNROLL
from repro.hls.unroll import unroll_program
from repro.hls.dfg import DataflowGraph, build_dfg
from repro.hls.schedule import Schedule, Scheduler
from repro.hls.allocation import Allocation, allocate
from repro.hls.rtl import MemoryMacro, RtlModule
from repro.hls.compiler import HlsResult, PicoCompiler
from repro.hls.verilog import emit_verilog
from repro.hls.report import synthesis_report
from repro.hls.testbench import TestbenchBundle, generate_testbench

__all__ = [
    "Affine",
    "ArrayDecl",
    "Loop",
    "MemAccess",
    "Op",
    "Program",
    "Stmt",
    "Pragma",
    "PIPELINE",
    "UNROLL",
    "unroll_program",
    "DataflowGraph",
    "build_dfg",
    "Schedule",
    "Scheduler",
    "Allocation",
    "allocate",
    "MemoryMacro",
    "RtlModule",
    "HlsResult",
    "PicoCompiler",
    "emit_verilog",
    "synthesis_report",
    "TestbenchBundle",
    "generate_testbench",
]
