"""Dependence analysis over scalar values and array accesses.

Scalars are single-assignment, so scalar dependences are exact def-use
(RAW) edges.  Memory dependences between two accesses to the same array
are classified by their affine indices:

* both indices constant and unequal — independent;
* both constant and equal — dependent (RAW / WAR / WAW by kind);
* an index still contains a loop variable — *conservatively* dependent
  within an iteration, and for loop-carried analysis: accesses whose
  indices move with the loop variable (non-zero coefficient) touch a
  different word each iteration, so they carry no distance-1
  dependence; accesses at a loop-invariant address (an accumulator)
  carry a distance-1 dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hls.ir import MemAccess, Stmt

DEP_KINDS = ("raw", "war", "waw")


@dataclass(frozen=True)
class Dependence(object):
    """A scheduling edge: ``src`` must issue before ``dst``.

    ``distance`` is the loop-iteration distance: 0 for intra-iteration
    edges, 1 for loop-carried edges (used by modulo scheduling to bound
    the initiation interval).
    """

    src: int
    dst: int
    kind: str
    distance: int = 0


def may_alias(a: MemAccess, b: MemAccess) -> bool:
    """Whether two accesses may touch the same word (same iteration)."""
    if a.array != b.array:
        return False
    if a.index.is_const and b.index.is_const:
        return a.index.value() == b.index.value()
    # A symbolic index may equal anything in the same array.
    return True


def _carried_alias(a: MemAccess, b: MemAccess, loop_var: Optional[str]) -> bool:
    """Whether accesses in *different* iterations may touch one word."""
    if a.array != b.array:
        return False
    if loop_var is None:
        return True
    coeff_a = dict(a.index.terms).get(loop_var, 0)
    coeff_b = dict(b.index.terms).get(loop_var, 0)
    if coeff_a == 0 and coeff_b == 0:
        # Loop-invariant addresses: same word every iteration iff the
        # rest matches; be conservative unless both are constants.
        if a.index.is_const and b.index.is_const:
            return a.index.value() == b.index.value()
        return True
    if coeff_a == coeff_b and a.index.terms == b.index.terms:
        # Same stride: the edge goes from iteration t (access a) to
        # iteration t+1 (access b); the addresses coincide iff
        # const_a + c*t == const_b + c*(t+1), i.e. const_a - const_b == c.
        return a.index.const - b.index.const == coeff_a
    # Different strides: give up and stay conservative.
    return True


def analyze(stmts: List[Stmt], loop_var: Optional[str] = None) -> List[Dependence]:
    """All dependences over a straight-line statement list.

    Returns intra-iteration edges (distance 0) and, when ``loop_var``
    is given, loop-carried edges (distance 1) for the enclosing loop.
    """
    deps: List[Dependence] = []
    defs = {}
    for i, stmt in enumerate(stmts):
        if stmt.dest:
            defs[stmt.dest] = i

    # Scalar RAW (exact).
    for i, stmt in enumerate(stmts):
        for src in stmt.srcs:
            j = defs.get(src)
            if j is not None and j < i:
                deps.append(Dependence(j, i, "raw"))

    # Memory dependences, pairwise in program order.
    for i in range(len(stmts)):
        a = stmts[i]
        for j in range(i + 1, len(stmts)):
            b = stmts[j]
            if a.store and b.load and may_alias(a.store, b.load):
                deps.append(Dependence(i, j, "raw"))
            if a.load and b.store and may_alias(a.load, b.store):
                deps.append(Dependence(i, j, "war"))
            if a.store and b.store and may_alias(a.store, b.store):
                deps.append(Dependence(i, j, "waw"))

    if loop_var is not None:
        deps.extend(_carried(stmts, loop_var))
    return deps


def _carried(stmts: List[Stmt], loop_var: str) -> List[Dependence]:
    deps: List[Dependence] = []
    for i, a in enumerate(stmts):
        for j, b in enumerate(stmts):
            # Edge from iteration t's stmt i to iteration t+1's stmt j.
            if a.store and b.load and _carried_alias(a.store, b.load, loop_var):
                deps.append(Dependence(i, j, "raw", distance=1))
            if a.load and b.store and _carried_alias(a.load, b.store, loop_var):
                deps.append(Dependence(i, j, "war", distance=1))
            if a.store and b.store and _carried_alias(a.store, b.store, loop_var):
                deps.append(Dependence(i, j, "waw", distance=1))
    return deps
