"""Functional-unit binding and register allocation over a schedule.

After scheduling, the hardware cost of a block is:

* one functional lane-unit per operator kind per *peak concurrent use*
  in any cycle (or II slot of a pipelined loop) — operations issued in
  different slots time-share units;
* input multiplexers wherever a unit serves more than one operation;
* registers for every value that crosses a cycle boundary between its
  production and its last use.  Values chained into consumers within
  the same cycle live in wires and cost nothing — this is why a
  low-clock design has fewer registers (Fig 8b's area growth with
  frequency comes partly from here).  For pipelined loops, a value
  alive ``c`` cycles needs ``ceil(c / II)`` copies in flight;
* internal pipeline registers inside multi-stage operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hls.dfg import DataflowGraph
from repro.hls.schedule import Schedule

_EPS = 1e-9


@dataclass
class Allocation(object):
    """Hardware inventory implied by one scheduled block.

    Attributes
    ----------
    fu_counts:
        (op kind, width) -> number of functional lane-units.
    fu_ops:
        (op kind, width) -> number of lane-operations time-sharing them.
    register_bits:
        Pipeline/value registers in bits.
    mux_inputs:
        Total extra mux inputs in front of shared units.
    """

    fu_counts: Dict[Tuple[str, int], int] = field(default_factory=dict)
    fu_ops: Dict[Tuple[str, int], int] = field(default_factory=dict)
    register_bits: int = 0
    mux_inputs: int = 0


def allocate(dfg: DataflowGraph, schedule: Schedule) -> Allocation:
    """Bind the scheduled block to functional units and registers."""
    alloc = Allocation()
    ii = max(schedule.ii, 1)

    # Peak per-slot concurrency per (kind, width) = lane-unit count.
    slot_use: Dict[Tuple[str, int, int], int] = {}
    for i, stmt in enumerate(dfg.stmts):
        key = (stmt.op.kind, stmt.op.width)
        alloc.fu_ops[key] = alloc.fu_ops.get(key, 0) + stmt.op.simd
        slot = schedule.starts[i] % ii
        skey = (stmt.op.kind, stmt.op.width, slot)
        slot_use[skey] = slot_use.get(skey, 0) + stmt.op.simd
    for (kind, width, _slot), used in slot_use.items():
        key = (kind, width)
        alloc.fu_counts[key] = max(alloc.fu_counts.get(key, 0), used)
    for key, ops in alloc.fu_ops.items():
        units = alloc.fu_counts[key]
        if ops > units:
            alloc.mux_inputs += ops - units

    # Value lifetimes -> register bits.
    last_use = [-1] * len(dfg.stmts)
    for i in range(len(dfg.stmts)):
        for dep in dfg.preds(i):
            if dep.kind == "raw" and dep.distance == 0:
                last_use[dep.src] = max(last_use[dep.src], schedule.starts[i])
    bits = 0
    for i, stmt in enumerate(dfg.stmts):
        width_bits = stmt.op.total_bits
        finish = schedule.finishes[i]
        registered = abs(finish - round(finish)) < _EPS
        # Internal pipeline registers of multi-stage operators.
        stages = int(math.ceil(finish - _EPS)) - schedule.starts[i]
        if stages > 1:
            bits += width_bits * (stages - 1)
        if not stmt.dest:
            continue
        if last_use[i] < 0:
            # Result unused by scalar dataflow: a store drains it to
            # memory; anything else needs one staging register.
            if stmt.store is None and not registered:
                bits += width_bits
            continue
        available = int(math.floor(finish + _EPS))
        span = last_use[i] - available + (1 if registered else 0)
        if span > 0:
            copies = -(-span // ii)  # ceil: values in flight when pipelined
            bits += width_bits * copies
    alloc.register_bits = bits
    return alloc
