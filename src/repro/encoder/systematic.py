"""Generic systematic encoder via GF(2) Gaussian elimination.

Works for any parity-check matrix whose rank equals its row count.  Used
as the reference implementation against which the fast dual-diagonal
encoder is verified; the generic path is O(n^3) setup / O(n*k) encode,
which is fine for test-sized codes but is exactly why real transmitters
(and the fast path here) exploit the dual-diagonal structure instead.
"""

from __future__ import annotations

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.encoder.gf2 import gf2_matmul, gf2_rref
from repro.errors import EncodingError


class SystematicEncoder(object):
    """Encode by solving H x = 0 with message bits in pivot-free columns.

    The constructor computes the RREF of H once.  Pivot columns become
    parity positions; the remaining ``k`` columns carry the message
    systematically (in general these are not the first ``k`` positions —
    use :attr:`message_columns` to recover the payload).
    """

    def __init__(self, code: QCLDPCCode) -> None:
        self.code = code
        h = code.parity_check_matrix
        rref, pivots = gf2_rref(h)
        if len(pivots) != code.m:
            raise EncodingError(
                f"H is rank deficient: rank {len(pivots)} < m={code.m}; "
                "use a full-rank code or puncture redundant rows"
            )
        self._pivots = np.array(pivots, dtype=np.int64)
        mask = np.ones(code.n, dtype=bool)
        mask[self._pivots] = False
        self._free = np.flatnonzero(mask)
        # Parity bits are a linear map of the message: for RREF rows,
        # x[pivot_r] = sum_{free j} rref[r, j] * x[j].
        self._parity_map = rref[:, self._free].astype(np.uint8)

    @property
    def k(self) -> int:
        """Number of message bits per codeword."""
        return int(self._free.shape[0])

    @property
    def message_columns(self) -> np.ndarray:
        """Codeword positions that carry the message bits, in order."""
        return self._free.copy()

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Map ``k`` message bits to an ``n``-bit codeword."""
        message = np.asarray(message, dtype=np.uint8)
        if message.shape != (self.k,):
            raise EncodingError(
                f"message length {message.shape} != ({self.k},)"
            )
        codeword = np.zeros(self.code.n, dtype=np.uint8)
        codeword[self._free] = message
        codeword[self._pivots] = gf2_matmul(self._parity_map, message)
        return codeword

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the message bits from a codeword."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[self._free].copy()
