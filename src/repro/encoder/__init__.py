"""Encoders for block-structured LDPC codes.

Two encoders are provided and cross-checked against each other in the
test suite:

* :class:`RuEncoder` — the linear-time Richardson-Urbanke style encoder
  that exploits the WiMax/WiFi dual-diagonal parity structure (this is
  what a transmitter SoC pairs with the paper's decoder);
* :class:`SystematicEncoder` — a generic Gaussian-elimination encoder
  that works for any full-rank H and serves as the reference.
"""

from repro.encoder.gf2 import (
    gf2_matmul,
    gf2_rank,
    gf2_rref,
    gf2_solve,
)
from repro.encoder.ru import RuEncoder
from repro.encoder.systematic import SystematicEncoder

__all__ = [
    "gf2_matmul",
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "RuEncoder",
    "SystematicEncoder",
]
