"""Dense GF(2) linear algebra on uint8 numpy arrays.

Small, dependency-free routines used by the generic encoder and by the
validation tests (rank checks, solving for parity bits).  Matrices are
0/1 ``uint8`` arrays; all arithmetic is mod 2.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def gf2_rref(matrix: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Reduced row-echelon form over GF(2).

    Returns the RREF matrix and the list of pivot column indices.
    """
    m = np.array(matrix, dtype=np.uint8, copy=True)
    rows, cols = m.shape
    pivots: List[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_rows = np.flatnonzero(m[r:, c]) + r
        if len(pivot_rows) == 0:
            continue
        p = int(pivot_rows[0])
        if p != r:
            m[[r, p]] = m[[p, r]]
        # Eliminate this column from every other row.
        others = np.flatnonzero(m[:, c])
        for o in others:
            if o != r:
                m[o] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = gf2_rref(matrix)
    return len(pivots)


def gf2_solve(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Solve ``a @ x = b`` over GF(2); returns one solution or ``None``.

    Free variables (non-pivot columns) are set to zero.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if b.ndim != 1 or a.shape[0] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    augmented = np.concatenate([a, b[:, None]], axis=1)
    rref, pivots = gf2_rref(augmented)
    n = a.shape[1]
    # Inconsistent iff a pivot lands in the augmented column.
    if n in pivots:
        return None
    x = np.zeros(n, dtype=np.uint8)
    for row, col in enumerate(pivots):
        x[col] = rref[row, n]
    return x
