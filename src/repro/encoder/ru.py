"""Linear-time encoder for dual-diagonal QC-LDPC codes.

The WiMax/WiFi parity structure (special column + dual diagonal, see
:mod:`repro.codes.construction`) admits Richardson-Urbanke style
encoding in O(n) time:

1. accumulate ``t_i = sum_j P^{s_ij} u_j`` over the data blocks of each
   block row ``i``;
2. summing all block rows cancels the dual diagonal and the two equal
   special-column shifts, leaving ``P^{s_mid} p_0 = sum_i t_i`` where
   ``s_mid`` is the interior special-column shift (zero in most WiMax
   rate classes), so ``p_0 = P^{-s_mid} sum_i t_i``;
3. forward substitution down the dual diagonal yields
   ``p_{i+1} = t_i + p_i (+ P^{s} p_0 terms where the special column
   intersects row i)``.

``P^s v`` for a weight-1 circulant with shift ``s`` is ``np.roll(v, -s)``
(row ``r`` reads lane ``(r + s) mod z``).
"""

from __future__ import annotations

import numpy as np

from repro.codes.base_matrix import ZERO_BLOCK
from repro.codes.qc import QCLDPCCode
from repro.codes.validation import is_dual_diagonal
from repro.errors import EncodingError


def rotate(vector: np.ndarray, shift: int) -> np.ndarray:
    """Apply the shift-``s`` circulant to a z-lane vector."""
    return np.roll(vector, -shift)


class RuEncoder(object):
    """Richardson-Urbanke encoder for the dual-diagonal QC family.

    Message bits occupy the first ``k = (nb - mb) * z`` codeword
    positions (fully systematic), followed by the ``mb`` parity blocks.
    """

    def __init__(self, code: QCLDPCCode) -> None:
        if not is_dual_diagonal(code.base):
            raise EncodingError(
                f"code {code.name!r} lacks the dual-diagonal parity "
                "structure; use SystematicEncoder instead"
            )
        self.code = code
        self._kb = code.nb - code.mb
        special = code.base.shifts[:, self._kb]
        nz = np.flatnonzero(special != ZERO_BLOCK)
        self._special_top_shift = int(special[0])
        self._special_mid_row = int(nz[1])
        self._special_mid_shift = int(special[self._special_mid_row])

    @property
    def k(self) -> int:
        """Number of message bits per codeword."""
        return self._kb * self.code.z

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Map ``k`` message bits to an ``n``-bit systematic codeword."""
        code = self.code
        z = code.z
        message = np.asarray(message, dtype=np.uint8)
        if message.shape != (self.k,):
            raise EncodingError(f"message length {message.shape} != ({self.k},)")

        u = message.reshape(self._kb, z)
        t = np.zeros((code.mb, z), dtype=np.uint8)
        for i in range(code.mb):
            for j, s in code.base.row_blocks(i):
                if j < self._kb:
                    t[i] ^= rotate(u[j], s)

        p = np.zeros((code.mb, z), dtype=np.uint8)
        sum_t = np.bitwise_xor.reduce(t, axis=0)
        # P^{s_mid} p0 = sum_t  =>  p0 = P^{-s_mid} sum_t.
        p0 = rotate(sum_t, -self._special_mid_shift % z)
        # Block row 0: t_0 + P^{s_top} p0 + p_1 = 0.
        p[1] = t[0] ^ rotate(p0, self._special_top_shift)
        # Rows 1 .. mb-2: t_i + [P^{s_mid} p0 if special row] + p_i + p_{i+1} = 0.
        for i in range(1, code.mb - 1):
            nxt = t[i] ^ p[i]
            if i == self._special_mid_row:
                nxt = nxt ^ rotate(p0, self._special_mid_shift)
            p[i + 1] = nxt

        codeword = np.concatenate([message, p0, p[1:].reshape(-1)])
        if not code.is_codeword(codeword):
            raise EncodingError(
                f"encoding failed parity verification for code {code.name!r}"
            )
        return codeword

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the systematic message bits (the first k positions)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[: self.k].copy()
