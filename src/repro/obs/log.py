"""Structured event log: levelled, trace-correlated JSON-lines records.

Where :class:`~repro.obs.trace.TraceRecorder` answers *how long did it
take* and :class:`~repro.obs.metrics.MetricsRegistry` answers *how much
of it happened*, :class:`EventLog` answers *what happened, when, and
why* — every notable runtime incident (a shard crash, a restart, an
expired deadline, a shed frame, an injected fault, a worker-process
spawn) becomes one machine-parseable record instead of an ad-hoc
trace-event breadcrumb:

* **levels** — ``debug`` / ``info`` / ``warning`` / ``error`` with a
  configurable floor, so a production service can keep only warnings
  while a debug run keeps the enqueue/dispatch chatter;
* **double timestamps** — a wall-clock time (for humans and cross-run
  correlation) and a monotonic time (for intervals, immune to clock
  steps);
* **trace correlation** — when a :class:`TraceRecorder` is attached,
  each record carries the id of the enclosing span, so a grep hit in
  the log pins the exact span in the Chrome timeline;
* **JSON-lines sink** — one JSON object per line, appended and flushed
  per record, so ``tail -f`` / ``grep`` / ``repro logs`` all work on a
  live file; an in-memory ring of recent records backs tests and
  embedded use without any file at all.

The pool (:mod:`repro.serve.pool`), the fault injectors
(:mod:`repro.faults.injectors`), and the process shard backend
(:mod:`repro.accel.procpool`) accept an ``EventLog`` and publish their
lifecycle into it; ``python -m repro logs FILE`` tails/filters/pretty-
prints the result.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

__all__ = [
    "LEVELS",
    "EventLog",
    "LogRecord",
    "follow_log",
    "format_record",
    "format_records",
    "read_log",
]

#: Level name -> severity rank (log4j-style ordering).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_rank(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def _fields_match(
    record: LogRecord, fields: Optional[Mapping[str, Any]]
) -> bool:
    """Subset match on a record's structured fields.

    Values compare as strings so CLI-supplied filters (always strings)
    match numeric field values; a record missing any requested key is
    filtered out.
    """
    if not fields:
        return True
    for key, want in fields.items():
        if key not in record.fields:
            return False
        if str(record.fields[key]) != str(want):
            return False
    return True


@dataclass(frozen=True)
class LogRecord(object):
    """One structured log record.

    Attributes
    ----------
    level:
        ``"debug"`` / ``"info"`` / ``"warning"`` / ``"error"``.
    event:
        Dotted event name, e.g. ``"pool.crash"`` or ``"fault.inject"``.
    wall_time:
        ``time.time()`` at record time (seconds since the epoch).
    monotonic_s:
        ``time.monotonic()`` at record time (interval arithmetic).
    span_id:
        Id of the enclosing trace span when a recorder was attached and
        a span was open, else None.
    fields:
        Free-form structured payload (shard keys, job ids, error text).
    """

    level: str
    event: str
    wall_time: float
    monotonic_s: float
    span_id: Optional[int] = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The record as one flat JSON-ready dict (``ts``/``mono`` keys)."""
        out: Dict[str, Any] = {
            "ts": self.wall_time,
            "mono": self.monotonic_s,
            "level": self.level,
            "event": self.event,
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "LogRecord":
        """Inverse of :meth:`to_dict` (tolerant of missing keys)."""
        return cls(
            level=str(obj.get("level", "info")),
            event=str(obj.get("event", "")),
            wall_time=float(obj.get("ts", 0.0)),
            monotonic_s=float(obj.get("mono", 0.0)),
            span_id=obj.get("span_id"),
            fields=dict(obj.get("fields", {})),
        )


class EventLog(object):
    """Thread-safe structured logger with a JSONL sink and a ring buffer.

    Parameters
    ----------
    path:
        Optional JSON-lines file to append to (opened lazily on the
        first record, flushed per record so the file is tailable).
    capacity:
        In-memory ring size; the most recent ``capacity`` records stay
        queryable via :meth:`records` regardless of any file sink.
    min_level:
        Severity floor; records below it are dropped entirely.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when given,
        each record is stamped with the enclosing span id.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = 4096,
        min_level: str = "debug",
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = path
        self.capacity = capacity
        self.min_rank = _level_rank(min_level)
        self.recorder = recorder
        self.dropped = 0
        self.emitted = 0
        self._lock = threading.Lock()
        self._buffer: "deque[LogRecord]" = deque(maxlen=capacity)
        self._handle = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> Optional[LogRecord]:
        """Record one event at ``level``; returns the record (or None if
        filtered by the severity floor)."""
        if _level_rank(level) < self.min_rank:
            return None
        span_id = (
            self.recorder.current_span_id() if self.recorder is not None else None
        )
        record = LogRecord(
            level=level,
            event=event,
            wall_time=time.time(),
            monotonic_s=time.monotonic(),
            span_id=span_id,
            fields=fields,
        )
        self.append(record)
        return record

    def debug(self, event: str, **fields: Any) -> Optional[LogRecord]:
        """Record a ``debug`` event."""
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> Optional[LogRecord]:
        """Record an ``info`` event."""
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> Optional[LogRecord]:
        """Record a ``warning`` event."""
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> Optional[LogRecord]:
        """Record an ``error`` event."""
        return self.log("error", event, **fields)

    def append(self, record: LogRecord) -> None:
        """Append a pre-built record (e.g. one shipped from a worker
        process) to the ring and the file sink, bypassing the floor."""
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(record)
            self.emitted += 1
            if self.path is not None:
                if self._handle is None:
                    self._handle = open(self.path, "a")
                json.dump(record.to_dict(), self._handle, sort_keys=True)
                self._handle.write("\n")
                self._handle.flush()

    # ------------------------------------------------------------------
    # access / lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def records(
        self,
        level: Optional[str] = None,
        event: Optional[str] = None,
        fields: Optional[Mapping[str, Any]] = None,
    ) -> List[LogRecord]:
        """Retained records, oldest first, optionally filtered.

        ``level`` keeps records at or above that severity; ``event``
        keeps records whose event name contains the substring;
        ``fields`` keeps records whose structured fields contain every
        given key with a (string-)equal value — e.g.
        ``fields={"tenant": "gold"}`` isolates one tenant's incidents.
        """
        with self._lock:
            out = list(self._buffer)
        if level is not None:
            rank = _level_rank(level)
            out = [r for r in out if _level_rank(r.level) >= rank]
        if event is not None:
            out = [r for r in out if event in r.event]
        if fields:
            out = [r for r in out if _fields_match(r, fields)]
        return out

    def close(self) -> None:
        """Flush and close the file sink (idempotent; ring retained)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# reading / rendering (the `repro logs` surface)
# ----------------------------------------------------------------------
def read_log(
    path: str,
    level: Optional[str] = None,
    event: Optional[str] = None,
    fields: Optional[Mapping[str, Any]] = None,
) -> List[LogRecord]:
    """Parse a JSON-lines event-log file, oldest first.

    ``level`` keeps records at or above that severity; ``event`` keeps
    records whose event name contains the substring; ``fields`` keeps
    records whose structured fields match every given key/value (string
    comparison — ``repro logs --tenant gold`` rides this).  Blank and
    non-JSON lines are skipped (a live file may have a torn last line).
    """
    rank = _level_rank(level) if level is not None else None
    out: List[LogRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            record = LogRecord.from_dict(obj)
            if rank is not None and _level_rank(record.level) < rank:
                continue
            if event is not None and event not in record.event:
                continue
            if not _fields_match(record, fields):
                continue
            out.append(record)
    return out


def follow_log(
    path: str,
    level: Optional[str] = None,
    event: Optional[str] = None,
    poll_s: float = 0.2,
    stop: Optional[threading.Event] = None,
    from_start: bool = False,
    fields: Optional[Mapping[str, Any]] = None,
) -> "Iterator[LogRecord]":
    """Yield records appended to a live JSONL log, ``tail -f``-style.

    Blocks between records, polling every ``poll_s`` seconds; a missing
    file is waited for rather than an error (the writer may not have
    opened its sink yet), and a truncated/rotated file is reopened from
    the start.  ``level``/``event`` filter like :func:`read_log`.
    ``fields`` subset-matches structured fields like :func:`read_log`.
    ``from_start`` replays existing content before streaming; the
    default starts at the current end of file.  Pass a
    ``threading.Event`` as ``stop`` to end the stream from another
    thread; Ctrl-C works as usual (``repro logs --follow`` relies on
    both).  Torn last lines are held back until their newline arrives.
    """
    rank = _level_rank(level) if level is not None else None
    should_stop = stop.is_set if stop is not None else (lambda: False)
    handle = None
    pending = ""
    try:
        while True:
            if handle is None:
                try:
                    handle = open(path)
                except OSError:
                    if should_stop():
                        return
                    time.sleep(poll_s)
                    continue
                if not from_start:
                    handle.seek(0, os.SEEK_END)
                from_start = True  # a rotation reopen replays the new file
                pending = ""
            chunk = handle.read()
            if chunk:
                pending += chunk
                while "\n" in pending:
                    line, pending = pending.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        obj = json.loads(line)
                    except ValueError:
                        continue
                    record = LogRecord.from_dict(obj)
                    if rank is not None and _level_rank(record.level) < rank:
                        continue
                    if event is not None and event not in record.event:
                        continue
                    if not _fields_match(record, fields):
                        continue
                    yield record
                continue
            if should_stop():
                return
            try:
                size = os.stat(path).st_size
            except OSError:
                size = -1
            if size < handle.tell():
                handle.close()
                handle = None
                continue
            time.sleep(poll_s)
    finally:
        if handle is not None:
            handle.close()


def format_record(record: LogRecord) -> str:
    """One record as a grep-friendly single line.

    ``<iso-time> <LEVEL> <event> [span=<id>] k=v k=v``
    """
    stamp = time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.localtime(record.wall_time)
    )
    frac = f"{record.wall_time % 1:.3f}"[1:]
    parts = [f"{stamp}{frac}", record.level.upper().ljust(7), record.event]
    if record.span_id is not None:
        parts.append(f"span={record.span_id}")
    for key, value in record.fields.items():
        parts.append(f"{key}={value}")
    return " ".join(parts)


def format_records(records: Iterable[LogRecord]) -> str:
    """Many records, one :func:`format_record` line each."""
    return "\n".join(format_record(r) for r in records)
