"""Labelled counters, gauges, and histograms with pluggable renderers.

One :class:`MetricsRegistry` is the numeric spine of the runtime: the
serving metrics (:class:`~repro.serve.metrics.ServeMetrics`), the
fault-campaign accounting, and the decoder statistics all publish into
the same instrument model, and everything renders three ways:

* :meth:`MetricsRegistry.render_text` — aligned table in the house
  style of the evaluation harness;
* :meth:`MetricsRegistry.to_dict` / :meth:`render_json` —
  machine-readable JSON for benchmark harnesses;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format (scrapeable ``# HELP`` / ``# TYPE`` blocks).

Instruments are get-or-create by name (re-registering with the same
type and labels returns the existing instrument; a conflicting
re-registration raises), label values key child series, and every
mutator takes the registry lock, so one registry can be shared by all
workers of a service.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.utils.stats import RollingReservoir
from repro.utils.tables import render_table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds-flavoured, Prometheus defaults).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

_LabelKey = Tuple[Any, ...]


class MetricsError(ReproError):
    """Metrics misuse: name/type conflicts, unknown labels, bad values."""


class _Instrument(object):
    """Shared plumbing: name, help text, label schema, series store."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = lock
        self._series: Dict[_LabelKey, Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> _LabelKey:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(labels[k] for k in self.label_names)

    def series(self) -> List[Tuple[_LabelKey, Any]]:
        """All (label-values, state) pairs, in creation order."""
        with self._lock:
            return list(self._series.items())

    def label_dicts(self) -> List[Dict[str, Any]]:
        """Each series' labels as a ``{name: value}`` dict, in order."""
        return [
            dict(zip(self.label_names, key)) for key, _ in self.series()
        ]


class Counter(_Instrument):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def inc(self, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (>= 0) to the labelled series."""
        if value < 0:
            raise MetricsError(f"{self.name}: counters only go up, got {value}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels: Any) -> float:
        """Current count of the labelled series (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    def total(self) -> float:
        """Sum over every label series."""
        with self._lock:
            return sum(self._series.values())

    def reset(self) -> None:
        """Drop every series (counts restart at zero)."""
        with self._lock:
            self._series.clear()


class Gauge(_Instrument):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def dec(self, value: float = 1, **labels: Any) -> None:
        """Subtract ``value`` from the labelled series."""
        self.inc(-value, **labels)

    def value(self, **labels: Any) -> float:
        """Current value of the labelled series (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    def reset(self) -> None:
        """Drop every series (values restart at zero)."""
        with self._lock:
            self._series.clear()


class _HistogramState(object):
    """One label series of a histogram: buckets + window reservoir."""

    __slots__ = ("bucket_counts", "count", "total", "reservoir")

    def __init__(self, num_buckets: int, window: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.reservoir = RollingReservoir(window)


class Histogram(_Instrument):
    """Bucketed distribution with whole-stream count/sum and a sliding
    window for percentile queries.

    The cumulative bucket counts serve the Prometheus exposition; the
    window reservoir serves :meth:`percentile` (which Prometheus
    histograms cannot answer exactly), matching the behaviour the
    serving metrics had before the registry refactor.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window: int = 8192,
    ) -> None:
        super().__init__(name, help, label_names, lock)
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise MetricsError(f"{self.name}: need at least one bucket edge")
        self.buckets = tuple(edges)
        self.window = window

    def _state(self, key: _LabelKey) -> _HistogramState:
        state = self._series.get(key)
        if state is None:
            state = _HistogramState(len(self.buckets), self.window)
            self._series[key] = state
        return state

    def observe(self, value: float, **labels: Any) -> None:
        """Record one sample into the labelled series' buckets/reservoir."""
        value = float(value)
        key = self._key(labels)
        with self._lock:
            state = self._state(key)
            i = bisect_left(self.buckets, value)
            if i < len(state.bucket_counts):
                state.bucket_counts[i] += 1
            state.count += 1
            state.total += value
            state.reservoir.observe(value)

    # -- queries -------------------------------------------------------
    def count(self, **labels: Any) -> int:
        """Number of samples observed by the labelled series."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            return state.count if state is not None else 0

    def sum(self, **labels: Any) -> float:
        """Sum of all samples observed by the labelled series."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            return state.total if state is not None else 0.0

    def mean(self, **labels: Any) -> float:
        """Mean sample value (0.0 when the series is empty)."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None or state.count == 0:
                return 0.0
            return state.total / state.count

    def percentile(self, q: float, **labels: Any) -> float:
        """``q``-th percentile (0..100) of the retained window."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
        if state is None:
            return 0.0
        return state.reservoir.percentile(q)

    def cumulative_buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus-style."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            counts = list(state.bucket_counts) if state is not None else None
        if counts is None:
            return [(edge, 0) for edge in self.buckets]
        out = []
        running = 0
        for edge, c in zip(self.buckets, counts):
            running += c
            out.append((edge, running))
        return out

    def reset(self) -> None:
        """Drop every series (buckets and reservoirs restart empty)."""
        with self._lock:
            self._series.clear()


class MetricsRegistry(object):
    """Named collection of counters, gauges, and histograms."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # registration (get-or-create)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        """Get or create the :class:`Counter` named ``name``."""
        return self._register(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        """Get or create the :class:`Gauge` named ``name``."""
        return self._register(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        window: int = 8192,
    ) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_existing(existing, Histogram, name, label_names)
                return existing  # type: ignore[return-value]
            inst = Histogram(
                name, help, label_names, threading.Lock(),
                buckets=buckets, window=window,
            )
            self._instruments[name] = inst
            return inst

    def _register(self, cls, name, help, label_names):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_existing(existing, cls, name, label_names)
                return existing
            inst = cls(name, help, label_names, threading.Lock())
            self._instruments[name] = inst
            return inst

    @staticmethod
    def _check_existing(existing, cls, name, label_names) -> None:
        if not isinstance(existing, cls) or type(existing) is not cls:
            raise MetricsError(
                f"{name!r} already registered as {existing.kind}, "
                f"cannot re-register as {cls.kind}"
            )
        if existing.label_names != tuple(label_names):
            raise MetricsError(
                f"{name!r} already registered with labels "
                f"{existing.label_names}, got {tuple(label_names)}"
            )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument named ``name``, or None if unregistered."""
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered)."""
        for inst in self.instruments():
            inst.reset()

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable snapshot of every instrument and series."""
        out: Dict[str, Any] = {}
        for inst in self.instruments():
            series_out = []
            if isinstance(inst, Histogram):
                for key, state in inst.series():
                    series_out.append(
                        {
                            "labels": dict(zip(inst.label_names, key)),
                            "count": state.count,
                            "sum": state.total,
                            "buckets": [
                                {"le": le, "count": c}
                                for le, c in inst.cumulative_buckets(
                                    **dict(zip(inst.label_names, key))
                                )
                            ],
                        }
                    )
            else:
                for key, value in inst.series():
                    series_out.append(
                        {
                            "labels": dict(zip(inst.label_names, key)),
                            "value": value,
                        }
                    )
            out[inst.name] = {
                "type": inst.kind,
                "help": inst.help,
                "series": series_out,
            }
        return out

    def render_json(self, indent: Optional[int] = None) -> str:
        """:meth:`to_dict` serialized as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self, title: str = "metrics") -> str:
        """Every series as one aligned table row."""
        rows: List[List[object]] = []
        for inst in self.instruments():
            for key, state in inst.series():
                labels = ",".join(
                    f"{k}={v}" for k, v in zip(inst.label_names, key)
                )
                if isinstance(inst, Histogram):
                    mean = state.total / state.count if state.count else 0.0
                    value = f"count={state.count} mean={mean:.6g}"
                else:
                    value = f"{state:g}" if isinstance(state, float) else str(state)
                rows.append([inst.name, inst.kind, labels or "-", value])
        if not rows:
            return f"{title}: (no series)"
        return render_table(["metric", "type", "labels", "value"], rows,
                            title=title)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for inst in self.instruments():
            name = self._prom_name(inst.name)
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            if isinstance(inst, Histogram):
                for key, state in inst.series():
                    labels = dict(zip(inst.label_names, key))
                    running = 0
                    for le, c in zip(self._edges(inst), state.bucket_counts):
                        running += c
                        lines.append(
                            f"{name}_bucket"
                            f"{self._prom_labels(labels, le=self._fmt(le))} "
                            f"{running}"
                        )
                    lines.append(
                        f"{name}_bucket{self._prom_labels(labels, le='+Inf')} "
                        f"{state.count}"
                    )
                    lines.append(
                        f"{name}_sum{self._prom_labels(labels)} "
                        f"{self._fmt(state.total)}"
                    )
                    lines.append(
                        f"{name}_count{self._prom_labels(labels)} {state.count}"
                    )
            else:
                base = name
                if inst.kind == "counter" and not name.endswith("_total"):
                    base = f"{name}_total"
                for key, value in inst.series():
                    labels = dict(zip(inst.label_names, key))
                    lines.append(
                        f"{base}{self._prom_labels(labels)} {self._fmt(value)}"
                    )
        return "\n".join(lines) + "\n"

    # -- prometheus helpers --------------------------------------------
    def _prom_name(self, name: str) -> str:
        full = f"{self.namespace}_{name}" if self.namespace else name
        full = full.replace(".", "_")
        full = _NAME_RE.sub("_", full)
        if full and full[0].isdigit():
            full = f"_{full}"
        return full

    @staticmethod
    def _edges(hist: Histogram) -> Tuple[float, ...]:
        return hist.buckets

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return repr(value)
        return str(value)

    @staticmethod
    def _prom_labels(labels: Mapping[str, Any], **extra: str) -> str:
        merged = dict(labels)
        merged.update(extra)
        if not merged:
            return ""
        body = ",".join(
            f'{k}="{MetricsRegistry._escape(v)}"' for k, v in merged.items()
        )
        return "{" + body + "}"

    @staticmethod
    def _escape(value: Any) -> str:
        return (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
