"""Unified observability: tracing, metrics, and profiling.

The software analogue of the paper's activity-based evaluation — where
the hardware flow counts per-block toggles to attribute power (Table I)
and reads per-stage schedules to attribute cycles (Fig 4/6), this
package gives every runtime subsystem one instrumentation spine:

* :class:`TraceRecorder` — ring-buffered nested spans and events
  (decode iterations/layers, engine slot fill/retire, pool
  enqueue/dispatch/crash/restart, fault-injection hits) with a
  Chrome-trace JSON exporter; near-zero overhead when disabled;
* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  text, JSON, and Prometheus-exposition renderers; the backing store of
  :class:`~repro.serve.metrics.ServeMetrics` and the fault-campaign
  accounting;
* :mod:`repro.obs.profile` — per-layer wall-time attribution for the
  numpy decoders and the core1/core2/stall decomposition (plus
  Chrome-trace export) for the cycle-accurate architecture models.

Quickstart::

    from repro.obs import TraceRecorder, MetricsRegistry
    from repro.decoder import LayeredMinSumDecoder

    rec = TraceRecorder()
    decoder = LayeredMinSumDecoder(code, recorder=rec)
    decoder.decode(llrs)
    print(rec.report())                  # span aggregate
    rec.write_chrome_trace("decode.json")  # open in about:tracing
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.profile import (
    arch_chrome_trace,
    layer_profile,
    layer_profile_report,
    stage_profile,
    write_chrome_trace,
)
from repro.obs.trace import NULL_SPAN, SpanRecord, TraceRecorder

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanRecord",
    "TraceRecorder",
    "arch_chrome_trace",
    "layer_profile",
    "layer_profile_report",
    "stage_profile",
    "write_chrome_trace",
]
