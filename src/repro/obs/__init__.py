"""Unified observability: tracing, metrics, and profiling.

The software analogue of the paper's activity-based evaluation — where
the hardware flow counts per-block toggles to attribute power (Table I)
and reads per-stage schedules to attribute cycles (Fig 4/6), this
package gives every runtime subsystem one instrumentation spine:

* :class:`TraceRecorder` — ring-buffered nested spans and events
  (decode iterations/layers, engine slot fill/retire, pool
  enqueue/dispatch/crash/restart, fault-injection hits) with a
  Chrome-trace JSON exporter; near-zero overhead when disabled;
* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  text, JSON, and Prometheus-exposition renderers; the backing store of
  :class:`~repro.serve.metrics.ServeMetrics` and the fault-campaign
  accounting;
* :mod:`repro.obs.profile` — per-layer wall-time attribution for the
  numpy decoders and the core1/core2/stall decomposition (plus
  Chrome-trace export) for the cycle-accurate architecture models;
* :class:`EventLog` — levelled, trace-correlated JSON-lines structured
  logging for runtime incidents (crashes, restarts, sheds, injected
  faults, worker-process lifecycle), tailed by ``repro logs``;
* :class:`SloMonitor` — declarative service-level objectives evaluated
  against a registry snapshot, surfaced in ``DecodeService.health()``
  and ``repro obs-report``;
* :mod:`repro.obs.perfgate` — the benchmark regression gate behind
  ``repro perf-gate``: re-runs committed ``BENCH_*.json`` baselines
  median-of-k and fails on relative throughput regressions;
* :class:`TraceContext` — the (trace id, span id) pair that rides the
  v2 wire protocol (``FLAG_TRACE``) so client, gateway, and worker
  spans of one request merge into a single distributed trace;
* :mod:`repro.obs.request_trace` — slices one request's trace out of a
  merged Chrome trace and renders its latency waterfall
  (``repro trace-request``).

Quickstart::

    from repro.obs import TraceRecorder, MetricsRegistry
    from repro.decoder import LayeredMinSumDecoder

    rec = TraceRecorder()
    decoder = LayeredMinSumDecoder(code, recorder=rec)
    decoder.decode(llrs)
    print(rec.report())                  # span aggregate
    rec.write_chrome_trace("decode.json")  # open in about:tracing
"""

from repro.obs.log import (
    LEVELS,
    EventLog,
    follow_log,
    LogRecord,
    format_record,
    format_records,
    read_log,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.profile import (
    arch_chrome_trace,
    layer_profile,
    layer_profile_report,
    stage_profile,
    write_chrome_trace,
)
from repro.obs.request_trace import (
    extract_request,
    format_waterfall,
    load_chrome_trace,
    request_waterfall,
    trace_ids,
)
from repro.obs.slo import (
    SloConfigError,
    SloMonitor,
    SloReport,
    SloRule,
    SloVerdict,
    default_gateway_slos,
    default_serve_slos,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    SpanRecord,
    TraceContext,
    TraceRecorder,
    new_trace_id,
    records_from_wire,
    records_to_wire,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "LEVELS",
    "LogRecord",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "SloConfigError",
    "SloMonitor",
    "SloReport",
    "SloRule",
    "SloVerdict",
    "SpanRecord",
    "TraceContext",
    "TraceRecorder",
    "arch_chrome_trace",
    "default_gateway_slos",
    "default_serve_slos",
    "extract_request",
    "format_record",
    "format_waterfall",
    "follow_log",
    "format_records",
    "layer_profile",
    "layer_profile_report",
    "load_chrome_trace",
    "new_trace_id",
    "read_log",
    "records_from_wire",
    "records_to_wire",
    "request_waterfall",
    "stage_profile",
    "trace_ids",
    "write_chrome_trace",
]
