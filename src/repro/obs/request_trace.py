"""Per-request trace extraction: one request's story out of a big trace.

A soak or chaos run leaves one merged Chrome trace holding thousands of
spans across client, gateway, shard, and worker-process rows.  This
module answers the on-call question — *what happened to request X?* —
by slicing that document down to a single distributed trace id:

* :func:`extract_request` filters a Chrome-trace document to the spans
  of one trace id (looked up directly, or via a ``client.request`` /
  ``gateway.request`` span's ``job`` label), keeping the process/thread
  metadata rows so the slice still renders with named rows in
  Perfetto;
* :func:`request_waterfall` reduces the slice to the canonical latency
  waterfall — wire / admission / queue-wait / decode / respond — using
  the segment durations the gateway stamped onto its root span plus
  the client/gateway span-duration difference for time on the wire;
* :func:`format_waterfall` renders it as an aligned text bar chart for
  ``repro trace-request``.

Trace ids ride span *labels* (``args.trace``) rather than span ids
because :meth:`TraceRecorder.merge` remaps span ids when folding
worker-process records in — labels are the only join key that survives
the merge.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ReproError

__all__ = [
    "extract_request",
    "format_waterfall",
    "load_chrome_trace",
    "request_waterfall",
    "trace_ids",
]

#: Waterfall segments in render order.
_SEGMENTS = ("wire", "admission", "queue_wait", "decode", "respond")

_META_PHASES = ("M",)


class TraceLookupError(ReproError):
    """The requested trace id / job id is not in the document."""


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Read a Chrome-trace JSON document from disk."""
    with open(path) as handle:
        return json.load(handle)


def _span_events(doc: Mapping[str, Any]) -> List[Dict[str, Any]]:
    return [
        e for e in doc.get("traceEvents", ())
        if e.get("ph") not in _META_PHASES
    ]


def trace_ids(doc: Mapping[str, Any]) -> List[int]:
    """Every distinct distributed trace id present in the document."""
    out = set()
    for event in _span_events(doc):
        trace = (event.get("args") or {}).get("trace")
        if trace:
            out.add(int(trace))
    return sorted(out)


def _resolve_trace_id(
    doc: Mapping[str, Any], job_id: Optional[int]
) -> int:
    """Map a client-side job id to its trace id.

    Searches ``client.request`` spans first (their ``job`` label is the
    client's wire job id — what ``RemoteResult.job_id`` reported), then
    ``gateway.request`` spans as a fallback for traces whose client
    half is missing from the document.
    """
    for wanted in ("client.request", "gateway.request"):
        for event in _span_events(doc):
            if event.get("name") != wanted:
                continue
            args = event.get("args") or {}
            if args.get("job") == job_id and args.get("trace"):
                return int(args["trace"])
    raise TraceLookupError(
        f"no client.request/gateway.request span with job={job_id!r}"
    )


def extract_request(
    doc: Mapping[str, Any],
    trace_id: Optional[int] = None,
    job_id: Optional[int] = None,
) -> Dict[str, Any]:
    """One request's spans as a standalone Chrome-trace document.

    Exactly one of ``trace_id`` / ``job_id`` must be given.  The result
    keeps the source document's process/thread metadata rows for the
    pids that still own events, so the slice opens in Perfetto with the
    same named rows as the full trace.
    """
    if (trace_id is None) == (job_id is None):
        raise TraceLookupError("pass exactly one of trace_id / job_id")
    if trace_id is None:
        trace_id = _resolve_trace_id(doc, job_id)
    picked = [
        e for e in _span_events(doc)
        if (e.get("args") or {}).get("trace") == trace_id
    ]
    if not picked:
        raise TraceLookupError(
            f"trace id {trace_id} not found "
            f"({len(trace_ids(doc))} trace ids in document)"
        )
    pids = {e.get("pid") for e in picked}
    meta = [
        e for e in doc.get("traceEvents", ())
        if e.get("ph") in _META_PHASES and e.get("pid") in pids
    ]
    return {
        "traceEvents": picked + meta,
        "displayTimeUnit": doc.get("displayTimeUnit", "ms"),
        "trace_id": trace_id,
    }


def _first(events: List[Dict[str, Any]], name: str) -> Optional[Dict[str, Any]]:
    for event in events:
        if event.get("name") == name:
            return event
    return None


def request_waterfall(request_doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The latency waterfall of one extracted request.

    Returns ``{"total_s", "segments": {name: seconds}, "spans": N,
    "trace_id"}``.  Wire time is the client span's duration minus the
    gateway span's (both ends of one round trip measured locally — no
    cross-host clock arithmetic); the gateway-side segments come from
    the ``*_s`` labels the gateway stamped onto its root span.  Any
    segment whose source span/label is missing is simply absent, so a
    gateway-only trace (no client recorder) still yields its splits.
    """
    events = _span_events(request_doc)
    client = _first(events, "client.request")
    gateway = _first(events, "gateway.request")
    segments: Dict[str, float] = {}
    total_s: Optional[float] = None
    if client is not None:
        total_s = float(client.get("dur", 0.0)) / 1e6
    if gateway is not None:
        args = gateway.get("args") or {}
        gw_s = float(gateway.get("dur", 0.0)) / 1e6
        if total_s is None:
            total_s = gw_s
        if client is not None:
            segments["wire"] = max(0.0, total_s - gw_s)
        for name in ("admission", "queue_wait", "decode", "respond"):
            value = args.get(f"{name}_s")
            if value is not None:
                segments[name] = float(value)
    ordered = {
        name: segments[name] for name in _SEGMENTS if name in segments
    }
    return {
        "trace_id": request_doc.get("trace_id"),
        "total_s": total_s if total_s is not None else 0.0,
        "segments": ordered,
        "spans": len(events),
    }


def format_waterfall(waterfall: Mapping[str, Any], width: int = 40) -> str:
    """The waterfall as an aligned text bar chart."""
    total = float(waterfall.get("total_s") or 0.0)
    lines = [
        f"trace {waterfall.get('trace_id')} — "
        f"{waterfall.get('spans', 0)} spans, total "
        f"{total * 1e3:.3f}ms"
    ]
    segments: Mapping[str, float] = waterfall.get("segments") or {}
    if not segments:
        lines.append("  (no waterfall segments recorded)")
        return "\n".join(lines)
    scale = max(segments.values()) or 1.0
    for name, seconds in segments.items():
        bar = "#" * max(1, int(round(width * seconds / scale)))
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(
            f"  {name:<10s} {seconds * 1e3:9.3f}ms {share:5.1f}%  {bar}"
        )
    return "\n".join(lines)
