"""Profiling views: per-layer wall time and per-stage cycle activity.

Two attribution surfaces feed this module:

* the **numpy decoders** emit ``decode.iteration`` / ``decode.layer``
  spans into a :class:`~repro.obs.trace.TraceRecorder` when one is
  attached, and :func:`layer_profile` folds them into per-layer wall
  time — the software mirror of the paper's cycles-per-layer accounting;
* the **architecture simulators** already produce cycle-exact
  :class:`~repro.arch.scheduler_trace.ArchTrace` objects, and
  :func:`stage_profile` / :func:`arch_chrome_trace` turn them into the
  core1/core2/stall decomposition (Fig 4) and a Chrome-trace timeline
  that loads in ``about:tracing``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.arch.scheduler_trace import ArchTrace
from repro.obs.trace import TraceRecorder
from repro.utils.tables import render_table

__all__ = [
    "layer_profile",
    "layer_profile_report",
    "stage_profile",
    "arch_chrome_trace",
    "write_chrome_trace",
]


def layer_profile(
    recorder: TraceRecorder, span_name: str = "decode.layer"
) -> Dict[Any, Dict[str, float]]:
    """Fold ``decode.layer`` spans into per-layer wall-time totals.

    Returns ``{layer_label: {"count", "total_s", "mean_s"}}`` keyed by
    the span's ``layer`` label; spans without one aggregate under -1.
    """
    agg: Dict[Any, Dict[str, float]] = {}
    for rec in recorder.by_name(span_name):
        layer = rec.label_dict.get("layer", -1)
        entry = agg.setdefault(
            layer, {"count": 0, "total_s": 0.0, "mean_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += rec.duration_s
    for entry in agg.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return agg


def layer_profile_report(
    recorder: TraceRecorder,
    span_name: str = "decode.layer",
    title: str = "per-layer wall time",
) -> str:
    """The :func:`layer_profile` aggregate as an aligned text table."""
    prof = layer_profile(recorder, span_name)
    if not prof:
        return f"{title}: (no decode.layer spans recorded)"
    total = sum(e["total_s"] for e in prof.values()) or 1.0
    rows = [
        [layer, int(e["count"]), f"{e['total_s'] * 1e3:.3f}",
         f"{e['mean_s'] * 1e6:.1f}", f"{e['total_s'] / total:.1%}"]
        for layer, e in sorted(prof.items(), key=lambda kv: str(kv[0]))
    ]
    return render_table(
        ["layer", "count", "total ms", "mean us", "share"], rows, title=title
    )


def stage_profile(trace: ArchTrace) -> Dict[str, Dict[str, float]]:
    """Busy/stall cycle decomposition per pipeline stage of an ArchTrace.

    For each unit (core1, core2, shifter, ...) reports busy cycles,
    stall cycles (makespan minus busy — the idle gaps the pipelined
    architecture exists to close), and the busy fraction.  This is the
    Fig 4 "cores are busy at most ~50 %" computation as data.
    """
    makespan = trace.total_cycles
    out: Dict[str, Dict[str, float]] = {}
    for unit in trace.units():
        busy = trace.busy_cycles(unit)
        out[unit] = {
            "busy_cycles": float(busy),
            "stall_cycles": float(max(0, makespan - busy)),
            "utilization": trace.utilization(unit),
        }
    return out


def arch_chrome_trace(
    trace: ArchTrace, clock_mhz: float = 400.0
) -> Dict[str, Any]:
    """An :class:`ArchTrace` as a Chrome-trace JSON object.

    Cycle timestamps convert to microseconds at ``clock_mhz`` (cycles /
    MHz = us), one timeline row per hardware unit, so the Fig 4 / Fig 6
    schedules open directly in ``about:tracing`` / Perfetto.
    """
    if clock_mhz <= 0:
        raise ValueError(f"clock_mhz must be > 0, got {clock_mhz}")
    events: List[Dict[str, Any]] = []
    tids = {unit: i + 1 for i, unit in enumerate(trace.units())}
    scale = 1.0 / clock_mhz  # cycles -> microseconds
    for seg in trace.segments:
        events.append(
            {
                "name": seg.label or seg.unit,
                "cat": seg.unit,
                "ph": "X",
                "ts": seg.start * scale,
                "dur": seg.cycles * scale,
                "pid": 1,
                "tid": tids[seg.unit],
                "args": {"start_cycle": seg.start, "end_cycle": seg.end},
            }
        )
    for unit, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": unit},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(obj: Dict[str, Any], path: str) -> None:
    """Serialize a Chrome-trace object (from any exporter) to a file."""
    with open(path, "w") as handle:
        json.dump(obj, handle)
