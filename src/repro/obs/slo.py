"""Declarative SLO rules evaluated against a metrics registry.

A service is only trustworthy if its objectives are *checked*, not just
graphed.  :class:`SloMonitor` holds a set of :class:`SloRule` objects —
"p99 serve latency below 50 ms", "crash rate below 1%", "FER at most
1e-3" — and evaluates them against a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot, producing typed
:class:`SloVerdict` results that
:meth:`repro.serve.pool.DecodeService.health` embeds and ``repro
obs-report`` renders.

Rule shapes
-----------
A rule reads one statistic from one instrument:

* counters/gauges — ``stat="total"`` (sum over label series) or
  ``stat="value"`` (one labelled series);
* histograms — ``stat`` in ``{"count", "sum", "mean", "p50", "p90",
  "p95", "p99", "p999"}``;
* ratios — ``per="other_counter"`` divides the rule metric's total by
  the other counter's total (e.g. ``serve_worker_crashes`` per
  ``serve_frames_out`` = crash rate); a zero denominator yields an
  ``unknown`` verdict rather than a fake pass.

Rules can also be written as strings and :meth:`SloRule.parse`\\ d::

    serve_latency_seconds:p99 < 0.05
    serve_worker_crashes / serve_frames_out < 0.01
    serve_frames_rejected:total <= 0

An unknown metric evaluates to ``unknown``, never ``pass`` — an SLO
that cannot be measured must not look healthy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.utils.tables import render_table

__all__ = [
    "SloConfigError",
    "SloMonitor",
    "SloReport",
    "SloRule",
    "SloVerdict",
    "default_gateway_slos",
    "default_serve_slos",
]


class SloConfigError(ReproError):
    """Malformed SLO rule: bad operator, stat, or spec string."""


_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_HIST_STATS = ("count", "sum", "mean", "p50", "p90", "p95", "p99", "p999")

_PERCENTILES = {"p50": 50.0, "p90": 90.0, "p95": 95.0, "p99": 99.0,
                "p999": 99.9}

_SPEC_RE = re.compile(
    r"^\s*(?P<metric>[\w.]+)"
    r"(?::(?P<stat>\w+))?"
    r"(?:\s*/\s*(?P<per>[\w.]+))?"
    r"\s*(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+0-9.eE]+)\s*$"
)


@dataclass(frozen=True)
class SloRule(object):
    """One objective: ``metric[:stat][/per] op threshold``.

    Attributes
    ----------
    name:
        Human label for reports (defaults to the spec-ish string).
    metric:
        Instrument name in the registry.
    op / threshold:
        Comparison (``<``, ``<=``, ``>``, ``>=``) against the observed
        statistic; the rule passes when the comparison holds.
    stat:
        Statistic to read (``"total"``, ``"value"``, or a histogram
        stat); defaults to ``"total"`` for counters/gauges and is
        required meaningfully for histograms.
    labels:
        Label values selecting one series when ``stat="value"`` or for
        histogram stats on a labelled instrument.
    per:
        Optional denominator instrument (totals ratio).
    """

    metric: str
    op: str
    threshold: float
    stat: str = "total"
    labels: Tuple[Tuple[str, Any], ...] = ()
    per: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SloConfigError(
                f"unknown operator {self.op!r}; choose from {sorted(_OPS)}"
            )
        if self.stat not in ("total", "value") + _HIST_STATS:
            raise SloConfigError(
                f"unknown stat {self.stat!r}; choose from "
                f"{('total', 'value') + _HIST_STATS}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.describe())

    def describe(self) -> str:
        """The rule as a compact ``metric:stat op threshold`` string."""
        lhs = self.metric
        if self.stat not in ("total",):
            lhs += f":{self.stat}"
        if self.per:
            lhs += f"/{self.per}"
        return f"{lhs} {self.op} {self.threshold:g}"

    @classmethod
    def parse(cls, spec: str, name: str = "") -> "SloRule":
        """Build a rule from a spec string.

        Examples: ``"serve_latency_seconds:p99 < 0.05"``,
        ``"serve_worker_crashes / serve_frames_out < 0.01"``,
        ``"serve_frames_rejected <= 0"``.
        """
        match = _SPEC_RE.match(spec)
        if match is None:
            raise SloConfigError(f"cannot parse SLO spec {spec!r}")
        stat = match.group("stat") or "total"
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise SloConfigError(
                f"bad threshold in SLO spec {spec!r}"
            ) from None
        return cls(
            metric=match.group("metric"),
            stat=stat,
            per=match.group("per"),
            op=match.group("op"),
            threshold=threshold,
            name=name,
        )


@dataclass(frozen=True)
class SloVerdict(object):
    """Outcome of one rule evaluation.

    ``status`` is ``"pass"``, ``"fail"``, or ``"unknown"`` (metric
    missing or ratio denominator zero); ``observed`` is None exactly
    when the status is unknown.
    """

    rule: SloRule
    status: str
    observed: Optional[float] = None
    reason: str = ""

    @property
    def ok(self) -> bool:
        """True only for a passing verdict (unknown is not ok)."""
        return self.status == "pass"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the verdict."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "stat": self.rule.stat,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "observed": self.observed,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class SloReport(object):
    """All verdicts of one monitor evaluation."""

    verdicts: Tuple[SloVerdict, ...] = ()

    @property
    def status(self) -> str:
        """``"fail"`` if any rule failed, else ``"unknown"`` if any rule
        could not be measured, else ``"pass"``."""
        statuses = {v.status for v in self.verdicts}
        if "fail" in statuses:
            return "fail"
        if "unknown" in statuses:
            return "unknown"
        return "pass"

    @property
    def ok(self) -> bool:
        """True when every rule passed."""
        return self.status == "pass"

    def failed(self) -> List[SloVerdict]:
        """The failing verdicts only."""
        return [v for v in self.verdicts if v.status == "fail"]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready report (status + per-rule verdicts)."""
        return {
            "status": self.status,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def report(self, title: str = "SLO report") -> str:
        """Aligned text table of every verdict."""
        if not self.verdicts:
            return f"{title}: (no rules)"
        rows = [
            [
                v.rule.name,
                "-" if v.observed is None else f"{v.observed:.6g}",
                f"{v.rule.op} {v.rule.threshold:g}",
                v.status.upper(),
            ]
            for v in self.verdicts
        ]
        return render_table(
            ["rule", "observed", "objective", "status"], rows,
            title=f"{title} [{self.status.upper()}]",
        )


class SloMonitor(object):
    """A set of rules plus the machinery to evaluate them.

    Accepts :class:`SloRule` objects or spec strings (parsed on the
    spot); :meth:`evaluate` is read-only with respect to the registry.
    """

    def __init__(self, rules: Sequence[Any] = ()) -> None:
        self.rules: List[SloRule] = []
        for rule in rules:
            self.add(rule)

    def add(self, rule: Any) -> SloRule:
        """Add a rule (an :class:`SloRule` or a spec string)."""
        if isinstance(rule, str):
            rule = SloRule.parse(rule)
        if not isinstance(rule, SloRule):
            raise SloConfigError(
                f"expected SloRule or spec string, got {type(rule).__name__}"
            )
        self.rules.append(rule)
        return rule

    def evaluate(self, registry: MetricsRegistry) -> SloReport:
        """Evaluate every rule against the registry's current state."""
        return SloReport(
            verdicts=tuple(self._evaluate_rule(r, registry) for r in self.rules)
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evaluate_rule(
        self, rule: SloRule, registry: MetricsRegistry
    ) -> SloVerdict:
        observed, reason = self._observe(rule, registry)
        if observed is None:
            return SloVerdict(rule=rule, status="unknown", reason=reason)
        ok = _OPS[rule.op](observed, rule.threshold)
        return SloVerdict(
            rule=rule,
            status="pass" if ok else "fail",
            observed=observed,
            reason="" if ok else (
                f"observed {observed:.6g} violates "
                f"{rule.op} {rule.threshold:g}"
            ),
        )

    def _observe(
        self, rule: SloRule, registry: MetricsRegistry
    ) -> Tuple[Optional[float], str]:
        inst = registry.get(rule.metric)
        if inst is None:
            return None, f"metric {rule.metric!r} not registered"
        labels = dict(rule.labels)
        if rule.per is not None:
            den_inst = registry.get(rule.per)
            if den_inst is None:
                return None, f"denominator {rule.per!r} not registered"
            num = self._scalar(inst, "total", labels)
            den = self._scalar(den_inst, "total", labels)
            if num is None or den is None:
                return None, "ratio endpoints must be counters/gauges"
            if den == 0:
                return None, f"denominator {rule.per!r} is zero"
            return num / den, ""
        if (
            isinstance(inst, Histogram)
            and (rule.stat in _PERCENTILES or rule.stat == "mean")
            and inst.count(**labels) == 0
        ):
            # an empty histogram's percentile is 0.0, which would let an
            # unmeasured latency objective masquerade as healthy
            return None, f"histogram {rule.metric!r} has no observations"
        value = self._scalar(inst, rule.stat, labels)
        if value is None:
            return None, (
                f"stat {rule.stat!r} not supported by "
                f"{inst.kind} {rule.metric!r}"
            )
        return value, ""

    @staticmethod
    def _scalar(
        inst: Any, stat: str, labels: Mapping[str, Any]
    ) -> Optional[float]:
        if isinstance(inst, Histogram):
            if stat in _PERCENTILES:
                return float(inst.percentile(_PERCENTILES[stat], **labels))
            if stat == "count":
                return float(inst.count(**labels))
            if stat == "sum":
                return float(inst.sum(**labels))
            if stat == "mean":
                return float(inst.mean(**labels))
            return None
        if isinstance(inst, (Counter, Gauge)):
            if stat == "value":
                return float(inst.value(**labels))
            if stat == "total":
                if isinstance(inst, Counter):
                    return float(inst.total())
                return float(sum(v for _k, v in inst.series()))
            return None
        return None


def default_serve_slos(
    p99_latency_s: float = 0.5,
    crash_rate: float = 0.01,
    error_rate: float = 0.05,
) -> SloMonitor:
    """The stock serving objectives: latency, crashes, errors.

    Crash/error rates are per retired frame; thresholds are deliberately
    loose defaults — production deployments should supply their own.
    """
    return SloMonitor(
        [
            SloRule(
                metric="serve_latency_seconds", stat="p99", op="<",
                threshold=p99_latency_s, name="serve_latency_p99",
            ),
            SloRule(
                metric="serve_worker_crashes", per="serve_frames_out",
                op="<", threshold=crash_rate, name="serve_crash_rate",
            ),
            SloRule(
                metric="serve_frames_errored", per="serve_frames_in",
                op="<", threshold=error_rate, name="serve_error_rate",
            ),
        ]
    )


def default_gateway_slos(
    p99_latency_s: float = 1.0,
    error_rate: float = 0.05,
    rejection_rate: float = 0.25,
    tenants: Sequence[str] = (),
) -> SloMonitor:
    """The stock gateway (RED) objectives over the ``net_*`` namespace.

    Global rules bound the error-frame rate and the pre-decode
    rejection rate per received request (counter ratios aggregate over
    every tenant).  For each name in ``tenants`` a per-tenant p99 rule
    is added on ``net_request_latency_seconds`` — the histogram is
    tenant-labelled, so latency objectives are inherently per-tenant
    (a noisy neighbour fails *its* rule, not a blurred global one).
    ``repro top`` discovers the tenant list from the live registry and
    rebuilds this monitor per refresh.
    """
    rules: List[Any] = [
        SloRule(
            metric="net_errors_total", per="net_requests_total",
            op="<", threshold=error_rate, name="net_error_rate",
        ),
        SloRule(
            metric="net_rejected_total", per="net_requests_total",
            op="<", threshold=rejection_rate, name="net_rejection_rate",
        ),
    ]
    for tenant in tenants:
        rules.append(
            SloRule(
                metric="net_request_latency_seconds", stat="p99",
                op="<", threshold=p99_latency_s,
                labels=(("tenant", tenant),),
                name=f"net_latency_p99[{tenant}]",
            )
        )
    return SloMonitor(rules)
