"""Ring-buffered tracing: nested spans and instant events.

The hardware evaluation of the paper is *activity-driven* — Table I's
power numbers come from counting which blocks toggle on which cycles.
:class:`TraceRecorder` is the software analogue: every runtime subsystem
(the numpy decoders, the continuous-batching engine, the worker pool,
the fault campaigns) reports what it is doing as *spans* (timed, nested
intervals) and *events* (instants), and one recorder aggregates them
into a bounded ring buffer.

Design constraints, in order:

* **near-zero overhead when disabled** — a disabled recorder's
  :meth:`span` returns one shared no-op context manager and
  :meth:`event` is a single attribute test, so instrumented hot loops
  pay only a branch;
* **bounded memory** — the buffer is a ring of ``capacity`` records;
  old records are evicted (and counted in :attr:`dropped`) rather than
  growing without bound under serving traffic;
* **thread-safe** — spans nest per thread (a ``threading.local`` stack)
  and the buffer append takes a lock, so one recorder can observe a
  whole multi-worker service.

Records export as a Chrome-trace JSON timeline (``about:tracing`` /
Perfetto schema) via :meth:`to_chrome_trace`, and aggregate into a text
report via :meth:`report`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.utils.tables import render_table

__all__ = [
    "SpanRecord",
    "TraceContext",
    "TraceRecorder",
    "NULL_SPAN",
    "NULL_TRACE",
    "new_trace_id",
    "records_to_wire",
    "records_from_wire",
]


@dataclass(frozen=True)
class TraceContext(object):
    """Wire-portable trace coordinates for one hop of a request.

    ``trace_id`` names the whole distributed request (one id from the
    first client span to the last worker span); ``span_id`` is the
    sender's span at this hop, i.e. the *parent* the receiver should
    hang its own spans under.  Both travel as u64s on protocol-v2
    frames when ``FLAG_TRACE`` is negotiated; ``(0, 0)`` means "no
    context" and is falsy.
    """

    trace_id: int
    span_id: int

    def __bool__(self) -> bool:
        return bool(self.trace_id)


#: The absent trace context (what an untraced hop puts on the wire).
NULL_TRACE = TraceContext(0, 0)


def new_trace_id() -> int:
    """A fresh nonzero u64 trace id.

    uuid4-derived, so ids stay collision-free across clients, processes
    and (eventually) hosts without any coordination.
    """
    return (uuid.uuid4().int >> 64) or 1


@dataclass(frozen=True)
class SpanRecord(object):
    """One finished span or instant event.

    Attributes
    ----------
    name:
        Dotted span name, e.g. ``"decode.layer"`` or ``"pool.crash"``.
    start_s / end_s:
        ``time.perf_counter`` instants relative to the recorder's epoch.
        Instant events have ``end_s == start_s``.
    kind:
        ``"span"`` or ``"event"``.
    span_id / parent_id:
        Recorder-unique id and the id of the enclosing span (or None).
    depth:
        Nesting depth at record time (0 = top level).
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    labels:
        Sorted ``(key, value)`` pairs attached at record time.
    process_id:
        0 for records made by this recorder's own process; the worker's
        OS pid for records absorbed from another process via
        :meth:`TraceRecorder.merge` (Chrome traces render each pid as
        its own process row).
    """

    name: str
    start_s: float
    end_s: float
    kind: str = "span"
    span_id: int = 0
    parent_id: Optional[int] = None
    depth: int = 0
    thread_id: int = 0
    labels: Tuple[Tuple[str, Any], ...] = ()
    process_id: int = 0

    @property
    def duration_s(self) -> float:
        """Wall-clock span length in seconds (0 for instant events)."""
        return self.end_s - self.start_s

    @property
    def label_dict(self) -> Dict[str, Any]:
        """The span's labels as a plain ``{name: value}`` dict."""
        return dict(self.labels)


class _NullSpan(object):
    """Shared no-op context manager returned by a disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span (also usable as an explicit placeholder).
NULL_SPAN = _NullSpan()

#: Sentinel distinguishing "parent not given" from "parent is None
#: (top-level)" in :meth:`TraceRecorder.complete`.
_UNSET = object()


class _Span(object):
    """A live span handle; commits a :class:`SpanRecord` on exit."""

    __slots__ = ("_recorder", "name", "labels", "start_s", "span_id",
                 "parent_id", "depth")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 labels: Tuple[Tuple[str, Any], ...]) -> None:
        self._recorder = recorder
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_Span":
        rec = self._recorder
        stack = rec._stack()
        parent = stack[-1] if stack else None
        self.span_id = next(rec._ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(stack)
        stack.append(self)
        self.start_s = time.perf_counter() - rec.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_s = time.perf_counter() - self._recorder.epoch
        stack = self._recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder._append(
            SpanRecord(
                name=self.name,
                start_s=self.start_s,
                end_s=end_s,
                kind="span",
                span_id=self.span_id,
                parent_id=self.parent_id,
                depth=self.depth,
                thread_id=threading.get_ident(),
                labels=self.labels,
            )
        )


class TraceRecorder(object):
    """Bounded, thread-safe recorder of nested spans and events.

    Parameters
    ----------
    capacity:
        Ring-buffer size in records; the oldest records are evicted
        (counted in :attr:`dropped`) once the buffer is full.
    enabled:
        Initial recording state.  A disabled recorder accepts the same
        calls at near-zero cost, so instrumented code never branches on
        "is tracing configured" — only the recorder does.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.dropped = 0
        self._lock = threading.Lock()
        self._buffer: "deque[SpanRecord]" = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: Any) -> Any:
        """Context manager timing one nested span.

        Disabled recorders return the shared no-op singleton, so the
        call costs one branch and no allocation.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, tuple(sorted(labels.items())))

    def event(self, name: str, **labels: Any) -> None:
        """Record one instant event under the current span (if any)."""
        if not self.enabled:
            return
        now = time.perf_counter() - self.epoch
        stack = self._stack()
        parent = stack[-1] if stack else None
        self._append(
            SpanRecord(
                name=name,
                start_s=now,
                end_s=now,
                kind="event",
                span_id=next(self._ids),
                parent_id=parent.span_id if parent is not None else None,
                depth=len(stack),
                thread_id=threading.get_ident(),
                labels=tuple(sorted(labels.items())),
            )
        )

    def complete(
        self,
        name: str,
        start_s: float,
        span_id: Optional[int] = None,
        parent_id: Any = _UNSET,
        **labels: Any,
    ) -> None:
        """Record a span measured externally (explicit start instant).

        ``start_s`` is an *absolute* ``time.perf_counter()`` reading
        taken by the caller before the work; the end instant is "now".
        Hot loops use this to avoid per-span context-manager overhead
        while still attributing wall time.

        ``span_id`` lets a caller pre-allocate the id (via
        :meth:`allocate_span_id`) so children can reference a parent
        *before* the parent span is committed — the shape of every
        async request span, where children finish first.  ``parent_id``
        overrides the thread-local stack (pass ``None`` for an explicit
        top-level span); distributed request spans use it to hang under
        a remote peer's span instead of whatever this thread happens to
        have open.
        """
        if not self.enabled:
            return
        end = time.perf_counter() - self.epoch
        stack = self._stack()
        if parent_id is _UNSET:
            parent = stack[-1] if stack else None
            parent_id = parent.span_id if parent is not None else None
        self._append(
            SpanRecord(
                name=name,
                start_s=start_s - self.epoch,
                end_s=end,
                kind="span",
                span_id=span_id if span_id is not None else next(self._ids),
                parent_id=parent_id,
                depth=len(stack),
                thread_id=threading.get_ident(),
                labels=tuple(sorted(labels.items())),
            )
        )

    def allocate_span_id(self) -> int:
        """Reserve a span id ahead of the span's :meth:`complete` call.

        Async request handling records children before the enclosing
        request span exists; pre-allocating the parent id (and passing
        it to both sides) keeps the tree intact regardless of commit
        order.
        """
        return next(self._ids)

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on this thread, or None.

        The structured event log uses this to stamp each record with the
        enclosing span, correlating log lines with trace timelines.
        """
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    # cross-process merge
    # ------------------------------------------------------------------
    def wall_epoch(self) -> float:
        """``time.time()`` instant corresponding to the recorder epoch.

        Two recorders in different processes share the machine wall
        clock even when their ``perf_counter`` epochs differ, so the
        difference of their wall epochs is the clock offset that maps
        one recorder's span times onto the other's timeline.
        """
        return time.time() - (time.perf_counter() - self.epoch)

    def drain(self) -> List[SpanRecord]:
        """Remove and return every retained record (oldest first).

        Unlike :meth:`clear` the epoch is preserved, so records drained
        in batches (a worker process flushing telemetry) stay on one
        consistent time base.
        """
        with self._lock:
            records = list(self._buffer)
            self._buffer.clear()
            return records

    def merge(
        self,
        records: List[SpanRecord],
        time_offset_s: float = 0.0,
        extra_labels: Optional[Mapping[str, Any]] = None,
        process_id: int = 0,
    ) -> int:
        """Absorb spans recorded by another recorder (usually another
        process) into this buffer; returns the number absorbed.

        ``time_offset_s`` shifts the records onto this recorder's time
        base (use ``other_wall_epoch - self.wall_epoch()``); span ids
        are remapped into this recorder's id space with parent links
        preserved within the batch (a parent outside the batch becomes
        a top-level span); ``extra_labels`` (e.g. ``shard=...``) are
        appended to every record; ``process_id`` tags the records for
        per-process Chrome-trace rows.  A disabled recorder absorbs
        nothing.
        """
        if not self.enabled or not records:
            return 0
        extra = tuple(sorted((extra_labels or {}).items()))
        # ids first: records arrive in completion order (children before
        # parents), so parent links resolve only against a full map
        id_map: Dict[int, int] = {
            rec.span_id: next(self._ids) for rec in records
        }
        for rec in records:
            self._append(
                SpanRecord(
                    name=rec.name,
                    start_s=rec.start_s + time_offset_s,
                    end_s=rec.end_s + time_offset_s,
                    kind=rec.kind,
                    span_id=id_map[rec.span_id],
                    parent_id=id_map.get(rec.parent_id),
                    depth=rec.depth,
                    thread_id=rec.thread_id,
                    labels=rec.labels + extra,
                    process_id=process_id or rec.process_id,
                )
            )
        return len(records)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Resume recording (spans/events append to the ring buffer)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; span() returns the shared no-op span."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every record and reset the epoch and drop counter."""
        with self._lock:
            self._buffer.clear()
            self.dropped = 0
            self.epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # access / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def records(self) -> List[SpanRecord]:
        """Snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._buffer)

    def by_name(self, name: str) -> List[SpanRecord]:
        """Retained records with the given name."""
        return [r for r in self.records() if r.name == name]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total and mean duration (seconds)."""
        agg: Dict[str, Dict[str, float]] = {}
        for rec in self.records():
            entry = agg.setdefault(
                rec.name, {"count": 0, "total_s": 0.0, "mean_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += rec.duration_s
        for entry in agg.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return agg

    def report(self, title: str = "trace summary") -> str:
        """Aggregated spans as an aligned text table."""
        agg = self.summary()
        if not agg:
            return f"{title}: (no records)"
        rows = [
            [name, int(entry["count"]), f"{entry['total_s'] * 1e3:.3f}",
             f"{entry['mean_s'] * 1e6:.1f}"]
            for name, entry in sorted(
                agg.items(), key=lambda kv: -kv[1]["total_s"]
            )
        ]
        table = render_table(
            ["span", "count", "total ms", "mean us"], rows, title=title
        )
        if self.dropped:
            table += f"\n({self.dropped} records dropped by the ring buffer)"
        return table

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The retained records in Chrome-trace JSON object format.

        Loads in ``about:tracing`` / Perfetto: spans become complete
        (``"ph": "X"``) events with microsecond timestamps, instant
        events become ``"ph": "i"`` marks, one row per recording thread,
        grouped into one process row per ``process_id`` (pid 1 is the
        recording process; merged worker-process records keep their own
        pid).
        """
        events: List[Dict[str, Any]] = []
        tids: Dict[Tuple[int, int], int] = {}
        pids: Dict[int, Optional[str]] = {}
        for rec in self.records():
            pid = rec.process_id or 1
            tid = tids.setdefault((pid, rec.thread_id), len(tids) + 1)
            if pid not in pids:
                pids[pid] = rec.label_dict.get("shard")
            entry: Dict[str, Any] = {
                "name": rec.name,
                "cat": rec.name.split(".", 1)[0],
                "ts": rec.start_s * 1e6,
                "pid": pid,
                "tid": tid,
                "args": rec.label_dict,
            }
            if rec.kind == "event":
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = rec.duration_s * 1e6
            events.append(entry)
        for (pid, thread_id), tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"thread-{thread_id}"},
                }
            )
        for pid, shard in pids.items():
            if pid == 1:
                name = "main"
            elif shard:
                name = f"worker-{shard} (pid {pid})"
            else:
                name = f"worker (pid {pid})"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialize :meth:`to_chrome_trace` to a JSON file."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(record)


# ----------------------------------------------------------------------
# wire format (for shipping spans across a process boundary)
# ----------------------------------------------------------------------
def records_to_wire(records: List[SpanRecord]) -> List[tuple]:
    """Span records as plain picklable tuples (labels as item lists)."""
    return [
        (
            rec.name,
            rec.start_s,
            rec.end_s,
            rec.kind,
            rec.span_id,
            rec.parent_id,
            rec.depth,
            rec.thread_id,
            list(rec.labels),
        )
        for rec in records
    ]


def records_from_wire(payload: List[tuple]) -> List[SpanRecord]:
    """Inverse of :func:`records_to_wire`."""
    return [
        SpanRecord(
            name=name,
            start_s=start_s,
            end_s=end_s,
            kind=kind,
            span_id=span_id,
            parent_id=parent_id,
            depth=depth,
            thread_id=thread_id,
            labels=tuple((k, v) for k, v in labels),
        )
        for (name, start_s, end_s, kind, span_id, parent_id, depth,
             thread_id, labels) in payload
    ]
