"""Ring-buffered tracing: nested spans and instant events.

The hardware evaluation of the paper is *activity-driven* — Table I's
power numbers come from counting which blocks toggle on which cycles.
:class:`TraceRecorder` is the software analogue: every runtime subsystem
(the numpy decoders, the continuous-batching engine, the worker pool,
the fault campaigns) reports what it is doing as *spans* (timed, nested
intervals) and *events* (instants), and one recorder aggregates them
into a bounded ring buffer.

Design constraints, in order:

* **near-zero overhead when disabled** — a disabled recorder's
  :meth:`span` returns one shared no-op context manager and
  :meth:`event` is a single attribute test, so instrumented hot loops
  pay only a branch;
* **bounded memory** — the buffer is a ring of ``capacity`` records;
  old records are evicted (and counted in :attr:`dropped`) rather than
  growing without bound under serving traffic;
* **thread-safe** — spans nest per thread (a ``threading.local`` stack)
  and the buffer append takes a lock, so one recorder can observe a
  whole multi-worker service.

Records export as a Chrome-trace JSON timeline (``about:tracing`` /
Perfetto schema) via :meth:`to_chrome_trace`, and aggregate into a text
report via :meth:`report`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.utils.tables import render_table

__all__ = ["SpanRecord", "TraceRecorder", "NULL_SPAN"]


@dataclass(frozen=True)
class SpanRecord(object):
    """One finished span or instant event.

    Attributes
    ----------
    name:
        Dotted span name, e.g. ``"decode.layer"`` or ``"pool.crash"``.
    start_s / end_s:
        ``time.perf_counter`` instants relative to the recorder's epoch.
        Instant events have ``end_s == start_s``.
    kind:
        ``"span"`` or ``"event"``.
    span_id / parent_id:
        Recorder-unique id and the id of the enclosing span (or None).
    depth:
        Nesting depth at record time (0 = top level).
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    labels:
        Sorted ``(key, value)`` pairs attached at record time.
    """

    name: str
    start_s: float
    end_s: float
    kind: str = "span"
    span_id: int = 0
    parent_id: Optional[int] = None
    depth: int = 0
    thread_id: int = 0
    labels: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration_s(self) -> float:
        """Wall-clock span length in seconds (0 for instant events)."""
        return self.end_s - self.start_s

    @property
    def label_dict(self) -> Dict[str, Any]:
        """The span's labels as a plain ``{name: value}`` dict."""
        return dict(self.labels)


class _NullSpan(object):
    """Shared no-op context manager returned by a disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span (also usable as an explicit placeholder).
NULL_SPAN = _NullSpan()


class _Span(object):
    """A live span handle; commits a :class:`SpanRecord` on exit."""

    __slots__ = ("_recorder", "name", "labels", "start_s", "span_id",
                 "parent_id", "depth")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 labels: Tuple[Tuple[str, Any], ...]) -> None:
        self._recorder = recorder
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_Span":
        rec = self._recorder
        stack = rec._stack()
        parent = stack[-1] if stack else None
        self.span_id = next(rec._ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(stack)
        stack.append(self)
        self.start_s = time.perf_counter() - rec.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_s = time.perf_counter() - self._recorder.epoch
        stack = self._recorder._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder._append(
            SpanRecord(
                name=self.name,
                start_s=self.start_s,
                end_s=end_s,
                kind="span",
                span_id=self.span_id,
                parent_id=self.parent_id,
                depth=self.depth,
                thread_id=threading.get_ident(),
                labels=self.labels,
            )
        )


class TraceRecorder(object):
    """Bounded, thread-safe recorder of nested spans and events.

    Parameters
    ----------
    capacity:
        Ring-buffer size in records; the oldest records are evicted
        (counted in :attr:`dropped`) once the buffer is full.
    enabled:
        Initial recording state.  A disabled recorder accepts the same
        calls at near-zero cost, so instrumented code never branches on
        "is tracing configured" — only the recorder does.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.dropped = 0
        self._lock = threading.Lock()
        self._buffer: "deque[SpanRecord]" = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: Any) -> Any:
        """Context manager timing one nested span.

        Disabled recorders return the shared no-op singleton, so the
        call costs one branch and no allocation.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, tuple(sorted(labels.items())))

    def event(self, name: str, **labels: Any) -> None:
        """Record one instant event under the current span (if any)."""
        if not self.enabled:
            return
        now = time.perf_counter() - self.epoch
        stack = self._stack()
        parent = stack[-1] if stack else None
        self._append(
            SpanRecord(
                name=name,
                start_s=now,
                end_s=now,
                kind="event",
                span_id=next(self._ids),
                parent_id=parent.span_id if parent is not None else None,
                depth=len(stack),
                thread_id=threading.get_ident(),
                labels=tuple(sorted(labels.items())),
            )
        )

    def complete(self, name: str, start_s: float, **labels: Any) -> None:
        """Record a span measured externally (explicit start instant).

        ``start_s`` is an *absolute* ``time.perf_counter()`` reading
        taken by the caller before the work; the end instant is "now".
        Hot loops use this to avoid per-span context-manager overhead
        while still attributing wall time.
        """
        if not self.enabled:
            return
        end = time.perf_counter() - self.epoch
        stack = self._stack()
        parent = stack[-1] if stack else None
        self._append(
            SpanRecord(
                name=name,
                start_s=start_s - self.epoch,
                end_s=end,
                kind="span",
                span_id=next(self._ids),
                parent_id=parent.span_id if parent is not None else None,
                depth=len(stack),
                thread_id=threading.get_ident(),
                labels=tuple(sorted(labels.items())),
            )
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Resume recording (spans/events append to the ring buffer)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; span() returns the shared no-op span."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every record and reset the epoch and drop counter."""
        with self._lock:
            self._buffer.clear()
            self.dropped = 0
            self.epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # access / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def records(self) -> List[SpanRecord]:
        """Snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._buffer)

    def by_name(self, name: str) -> List[SpanRecord]:
        """Retained records with the given name."""
        return [r for r in self.records() if r.name == name]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total and mean duration (seconds)."""
        agg: Dict[str, Dict[str, float]] = {}
        for rec in self.records():
            entry = agg.setdefault(
                rec.name, {"count": 0, "total_s": 0.0, "mean_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += rec.duration_s
        for entry in agg.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return agg

    def report(self, title: str = "trace summary") -> str:
        """Aggregated spans as an aligned text table."""
        agg = self.summary()
        if not agg:
            return f"{title}: (no records)"
        rows = [
            [name, int(entry["count"]), f"{entry['total_s'] * 1e3:.3f}",
             f"{entry['mean_s'] * 1e6:.1f}"]
            for name, entry in sorted(
                agg.items(), key=lambda kv: -kv[1]["total_s"]
            )
        ]
        table = render_table(
            ["span", "count", "total ms", "mean us"], rows, title=title
        )
        if self.dropped:
            table += f"\n({self.dropped} records dropped by the ring buffer)"
        return table

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The retained records in Chrome-trace JSON object format.

        Loads in ``about:tracing`` / Perfetto: spans become complete
        (``"ph": "X"``) events with microsecond timestamps, instant
        events become ``"ph": "i"`` marks, one row per recording thread.
        """
        events: List[Dict[str, Any]] = []
        tids: Dict[int, int] = {}
        for rec in self.records():
            tid = tids.setdefault(rec.thread_id, len(tids) + 1)
            entry: Dict[str, Any] = {
                "name": rec.name,
                "cat": rec.name.split(".", 1)[0],
                "ts": rec.start_s * 1e6,
                "pid": 1,
                "tid": tid,
                "args": rec.label_dict,
            }
            if rec.kind == "event":
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = rec.duration_s * 1e6
            events.append(entry)
        for thread_id, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"thread-{thread_id}"},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialize :meth:`to_chrome_trace` to a JSON file."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(record)
