"""Performance regression gate over committed benchmark baselines.

The bench documents under version control (``BENCH_accel.json``,
``BENCH_serve.json``, ``BENCH_net.json``, ``BENCH_zoo.json``) freeze
the throughput story of the repo — the fused-kernel speedup, the
process-pool scaling, the serving overhead, the network-gateway
overhead, and the per-code cost of the registry zoo.
:func:`run_perf_gate` re-runs each baseline's bench with the baseline's
own embedded configuration, compares per-mode throughput medians
against the committed numbers, and fails when any mode regressed by
more than a relative tolerance.  ``repro perf-gate`` (and
``benchmarks/perf_gate.py``) turn the report into an exit code for CI.

Noise policy
------------
Wall-clock benchmarks are noisy, and CI machines are not the machine
that produced the committed baseline, so the gate is deliberately
tolerant rather than falsely red:

* each bench is re-run ``k`` times (default 3) and the per-mode
  **median** frames/s is compared, discarding one-off scheduler blips;
* the comparison is **relative** with a generous default tolerance
  (30 %): only ``median < baseline * (1 - tolerance)`` fails — a real
  kernel regression (losing the ~8.7x fused win) blows far past that,
  while machine-to-machine variation rarely does;
* faster-than-baseline is always a pass, and a mode present in the
  baseline but missing from the re-run is an explicit failure, never a
  silent skip.

Every evaluation appends one JSON line to ``BENCH_history.jsonl``
(timestamp, commit, per-mode numbers, verdicts), growing the
measurement trajectory the committed baselines snapshot.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.codes.qc import QCLDPCCode
from repro.errors import ReproError
from repro.utils.provenance import git_commit
from repro.utils.tables import render_table

__all__ = [
    "DEFAULT_K",
    "DEFAULT_TOLERANCE",
    "TRACING_OVERHEAD_BUDGET",
    "GateReport",
    "GateVerdict",
    "PerfGateError",
    "append_history",
    "compare_to_baseline",
    "load_baseline",
    "rerun_baseline",
    "run_perf_gate",
]

#: Median-of-k re-runs per baseline.
DEFAULT_K = 3

#: Relative slowdown allowed before a mode fails (0.30 = 30 %).
DEFAULT_TOLERANCE = 0.30

#: Advisory budget for wire-tracing overhead: the traced gateway soak
#: should stay within this fraction of the untraced one's throughput.
TRACING_OVERHEAD_BUDGET = 0.10


class PerfGateError(ReproError):
    """Unusable baseline document or gate configuration."""


@dataclass(frozen=True)
class GateVerdict(object):
    """One mode's comparison against its committed baseline."""

    baseline: str
    bench: str
    mode: str
    baseline_fps: float
    observed_fps: Optional[float]
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        """``observed / baseline`` throughput (None when not observed)."""
        if self.observed_fps is None or self.baseline_fps <= 0:
            return None
        return self.observed_fps / self.baseline_fps

    @property
    def ok(self) -> bool:
        """True when the mode ran and did not regress past tolerance."""
        ratio = self.ratio
        return ratio is not None and ratio >= 1.0 - self.tolerance

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the verdict."""
        return {
            "baseline": self.baseline,
            "bench": self.bench,
            "mode": self.mode,
            "baseline_fps": self.baseline_fps,
            "observed_fps": self.observed_fps,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class GateReport(object):
    """All verdicts of one gate evaluation."""

    verdicts: Tuple[GateVerdict, ...]
    k: int
    tolerance: float

    @property
    def ok(self) -> bool:
        """True when every mode of every baseline passed."""
        return all(v.ok for v in self.verdicts)

    def failed(self) -> List[GateVerdict]:
        """The failing verdicts only."""
        return [v for v in self.verdicts if not v.ok]

    def tracing_overhead(self) -> Optional[Dict[str, Any]]:
        """Advisory traced-vs-untraced gateway throughput comparison.

        Compares the ``net-gateway-traced`` mode's frames/s against the
        plain ``net-gateway`` mode's (re-run medians when available,
        committed numbers otherwise).  Returns None unless both modes
        were gated.  Advisory only — it never flips :attr:`ok` — but CI
        surfaces it so a tracing hot path that creeps past
        :data:`TRACING_OVERHEAD_BUDGET` is visible before it matters.
        """
        def _fps(mode: str) -> Optional[float]:
            for v in self.verdicts:
                if v.mode == mode:
                    return (
                        v.observed_fps
                        if v.observed_fps is not None
                        else v.baseline_fps
                    )
            return None

        plain = _fps("net-gateway")
        traced = _fps("net-gateway-traced")
        if not plain or not traced:
            return None
        overhead = max(0.0, 1.0 - traced / plain)
        return {
            "plain_fps": plain,
            "traced_fps": traced,
            "overhead": overhead,
            "budget": TRACING_OVERHEAD_BUDGET,
            "ok": overhead < TRACING_OVERHEAD_BUDGET,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready report."""
        return {
            "ok": self.ok,
            "k": self.k,
            "tolerance": self.tolerance,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "tracing_overhead": self.tracing_overhead(),
        }

    def report(self, title: str = "perf gate") -> str:
        """Aligned text table of every verdict."""
        if not self.verdicts:
            return f"{title}: (no baselines)"
        rows = []
        for v in self.verdicts:
            rows.append(
                [
                    v.bench,
                    v.mode,
                    f"{v.baseline_fps:.1f}",
                    "-" if v.observed_fps is None else f"{v.observed_fps:.1f}",
                    "-" if v.ratio is None else f"{v.ratio:.2f}x",
                    "PASS" if v.ok else "FAIL",
                ]
            )
        status = "PASS" if self.ok else "FAIL"
        text = render_table(
            ["bench", "mode", "baseline fps", "observed fps", "ratio",
             "status"],
            rows,
            title=(
                f"{title} [{status}] (median of {self.k}, "
                f"tolerance {self.tolerance:.0%})"
            ),
        )
        overhead = self.tracing_overhead()
        if overhead is not None:
            text += (
                f"\n\ntracing overhead (advisory): "
                f"{overhead['overhead']:.1%} "
                f"({overhead['traced_fps']:.1f} traced vs "
                f"{overhead['plain_fps']:.1f} plain fps; budget "
                f"{overhead['budget']:.0%}) — "
                f"{'within budget' if overhead['ok'] else 'OVER BUDGET'}"
            )
        return text


# ----------------------------------------------------------------------
# baseline loading / re-running
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Dict[str, Any]:
    """Parse one committed bench document and validate its shape."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise PerfGateError(f"cannot read baseline {path!r}: {exc}") from None
    if not isinstance(doc, dict) or _bench_kind(doc) is None:
        raise PerfGateError(
            f"baseline {path!r} is not a recognised bench document "
            "(need a 'rows' (accel) or 'modes' (serve) list)"
        )
    return doc


def _bench_kind(doc: Dict[str, Any]) -> Optional[str]:
    # provenance header first (bench_meta stamps it), shape as fallback
    if doc.get("bench") in ("accel", "serve", "net", "zoo"):
        if isinstance(doc.get("rows"), list) or isinstance(
            doc.get("modes"), list
        ):
            return str(doc["bench"])
    if isinstance(doc.get("rows"), list):
        return "accel"
    if isinstance(doc.get("modes"), list):
        return "serve"
    return None


def baseline_fps(doc: Dict[str, Any]) -> Dict[str, float]:
    """Per-mode frames/s recorded in a baseline document."""
    entries = doc.get("rows") or doc.get("modes") or []
    out: Dict[str, float] = {}
    for entry in entries:
        try:
            out[str(entry["mode"])] = float(entry["frames_per_s"])
        except (KeyError, TypeError, ValueError):
            raise PerfGateError(
                f"baseline entry {entry!r} lacks mode/frames_per_s"
            ) from None
    return out


def _code_from_baseline(doc: Dict[str, Any]) -> QCLDPCCode:
    """Rebuild the code a baseline was measured on from its metadata."""
    from repro.codes import wifi_code, wimax_code

    name = str(doc.get("code", ""))
    length = doc.get("n")
    rate = next(
        (tok[1:] for tok in name.split() if tok.startswith("r") and "/" in tok),
        None,
    )
    if length is None or rate is None:
        raise PerfGateError(
            f"baseline code {name!r} (n={length}) is not reconstructible; "
            "need an 'n' field and a 'r<rate>' token in the name"
        )
    if name.startswith("802.11n"):
        return wifi_code(rate, int(length))
    return wimax_code(rate, int(length))


def rerun_baseline(
    doc: Dict[str, Any],
    k: int = DEFAULT_K,
    modes: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Re-run a baseline's bench ``k`` times; per-mode median frames/s.

    The run configuration (code, traffic size, batch, seed, arithmetic)
    is taken from the baseline document itself, so the gate measures
    exactly what the baseline froze.  ``modes`` restricts the comparison
    (and, for the accel bench, the work) to a subset of mode names.
    """
    if k < 1:
        raise PerfGateError(f"k must be >= 1, got {k}")
    kind = _bench_kind(doc)
    wanted = list(modes) if modes else list(baseline_fps(doc))
    # zoo baselines span many codes; their config embeds the registry
    # ids, so no single code is reconstructed from the header
    code = None if kind == "zoo" else _code_from_baseline(doc)
    samples: Dict[str, List[float]] = {m: [] for m in wanted}
    for _ in range(k):
        if kind == "zoo":
            from repro.serve.zoo_bench import run_zoo_bench

            cfg = dict(doc.get("config", {}))
            run = run_zoo_bench(
                code_ids=list(cfg.get("code_ids") or wanted),
                frames=int(cfg.get("frames", 32)),
                ebno_db=float(cfg.get("ebno_db", 4.0)),
                iterations=int(cfg.get("iterations", 10)),
                fixed=bool(cfg.get("fixed", False)),
                seed=int(cfg.get("seed", 11)),
                schedule=str(cfg.get("schedule", "row")),
            )
            observed = {
                r["mode"]: float(r["frames_per_s"]) for r in run["rows"]
            }
        elif kind == "accel":
            from repro.accel.bench import run_accel_bench

            run = run_accel_bench(
                code=code,
                frames=int(doc.get("frames", 128)),
                batch=int(doc.get("batch", 64)),
                ebno_db=float(doc.get("ebno_db", 2.5)),
                iterations=int(doc.get("max_iterations", 10)),
                fixed=doc.get("arithmetic", "fixed") == "fixed",
                seed=int(doc.get("seed", 5)),
                modes=tuple(wanted),
            )
            observed = {r["mode"]: float(r["frames_per_s"]) for r in run["rows"]}
        elif kind == "net":
            from repro.net.soak import SoakConfig, run_net_soak

            run = run_net_soak(SoakConfig.from_dict(doc.get("config", {})))
            observed = {
                m["mode"]: float(m["frames_per_s"]) for m in run["modes"]
            }
        else:
            from repro.serve.bench import run_serve_bench

            run = run_serve_bench(
                code=code,
                frames=int(doc.get("frames", 64)),
                batch=int(doc.get("batch", 16)),
                ebno_db=float(doc.get("ebno_db", 2.5)),
                iterations=int(doc.get("max_iterations", 10)),
                fixed=doc.get("arithmetic", "float") == "fixed",
                seed=int(doc.get("seed", 0)),
                backend=str(doc.get("backend") or "") or None,
            )
            observed = {
                m["mode"]: float(m["frames_per_s"]) for m in run["modes"]
            }
        for mode in wanted:
            if mode in observed:
                samples[mode].append(observed[mode])
    return {
        mode: statistics.median(vals)
        for mode, vals in samples.items()
        if vals
    }


def compare_to_baseline(
    doc: Dict[str, Any],
    observed: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_name: str = "",
    modes: Optional[Sequence[str]] = None,
) -> List[GateVerdict]:
    """Verdicts for one baseline given observed per-mode medians."""
    kind = _bench_kind(doc) or "unknown"
    committed = baseline_fps(doc)
    wanted = list(modes) if modes else list(committed)
    verdicts = []
    for mode in wanted:
        if mode not in committed:
            raise PerfGateError(
                f"mode {mode!r} not in baseline {baseline_name!r} "
                f"(has {list(committed)})"
            )
        verdicts.append(
            GateVerdict(
                baseline=baseline_name,
                bench=kind,
                mode=mode,
                baseline_fps=committed[mode],
                observed_fps=observed.get(mode),
                tolerance=tolerance,
            )
        )
    return verdicts


def append_history(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON line to the bench history file."""
    with open(path, "a") as handle:
        json.dump(record, handle, sort_keys=True)
        handle.write("\n")


def run_perf_gate(
    baselines: Sequence[str],
    k: int = DEFAULT_K,
    tolerance: float = DEFAULT_TOLERANCE,
    modes: Optional[Sequence[str]] = None,
    history_path: Optional[str] = None,
) -> GateReport:
    """Gate the current tree against committed bench baselines.

    Parameters
    ----------
    baselines:
        Paths of bench JSON documents (``BENCH_accel.json``,
        ``BENCH_serve.json``, ...).
    k / tolerance:
        Median-of-k re-runs and the allowed relative slowdown.
    modes:
        Optional subset of mode names to gate (applies to every
        baseline that contains them; an unknown mode is an error).
    history_path:
        When given, one JSON line per baseline is appended there with
        the timestamp, commit, per-mode numbers, and verdicts.

    Returns
    -------
    GateReport
        ``report.ok`` is the gate outcome; callers map it to an exit
        code.
    """
    if not (0.0 <= tolerance < 1.0):
        raise PerfGateError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    all_verdicts: List[GateVerdict] = []
    commit = git_commit()
    for path in baselines:
        doc = load_baseline(path)
        subset = None
        if modes:
            committed = baseline_fps(doc)
            subset = [m for m in modes if m in committed]
            if not subset:
                continue
        observed = rerun_baseline(doc, k=k, modes=subset)
        verdicts = compare_to_baseline(
            doc, observed, tolerance=tolerance,
            baseline_name=os.path.basename(path), modes=subset,
        )
        all_verdicts.extend(verdicts)
        if history_path:
            append_history(
                history_path,
                {
                    "ts": time.time(),
                    "commit": commit,
                    "bench": _bench_kind(doc),
                    "baseline": os.path.basename(path),
                    "baseline_commit": doc.get("commit", "unknown"),
                    "k": k,
                    "tolerance": tolerance,
                    "ok": all(v.ok for v in verdicts),
                    "modes": {
                        v.mode: {
                            "baseline_fps": v.baseline_fps,
                            "observed_fps": v.observed_fps,
                            "ratio": v.ratio,
                            "ok": v.ok,
                        }
                        for v in verdicts
                    },
                },
            )
    return GateReport(
        verdicts=tuple(all_verdicts), k=k, tolerance=tolerance
    )
