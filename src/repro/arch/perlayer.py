"""The per-layer two-stage decoder architecture (paper Figs 4/5).

Timing semantics per layer: core1 reads and pre-processes all of the
layer's block columns (one column per cycle per pass at full
parallelism), its pipeline drains so the min1/min2/pos/sign registers
hold final values, then core2 runs the same columns through the update
datapath and writes back.  The next layer starts only after core2's
last write commits.  Cores are therefore busy at most ~50% of the time
(Fig 4) — the observation motivating the pipelined architecture.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.core import LayerEngine
from repro.arch.memory import RomModel, SramModel
from repro.arch.result import ArchDecodeResult
from repro.arch.scheduler_trace import ArchTrace
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.decoder.result import DecodeResult
from repro.errors import ArchitectureError
from repro.utils.bitops import hard_decision


class PerLayerArch(object):
    """Cycle-accurate per-layer decoder (architecture 1 of the paper).

    ``faults`` optionally maps injection-site names to fault injectors
    (see :data:`FAULT_SITES` and :mod:`repro.faults`), wiring soft-error
    models into the datapath the paper's low-power argument puts at
    risk: the P/R SRAMs, the barrel shifter, and the min-search
    compare-tree registers.
    """

    name = "per-layer"

    #: Injection sites this architecture exposes to :mod:`repro.faults`.
    FAULT_SITES = ("p_mem", "r_mem", "shifter", "minsearch")

    def __init__(
        self,
        config: ArchConfig,
        fmt: FixedPointFormat = MESSAGE_8BIT,
        faults: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.config = config
        self.fmt = fmt
        code = config.code
        self.p_mem = SramModel("p_sram", code.nb, code.z)
        self.r_mem = SramModel("r_sram", code.nnz_blocks, code.z)
        self.h_rom = RomModel(
            "h_rom",
            [
                (int(j), int(s))
                for layer in code.layers
                for j, s in zip(layer.block_cols, layer.shifts)
            ],
        )
        self.engine = LayerEngine(code, self.p_mem, self.r_mem, fmt)
        if faults:
            self.attach_faults(faults)

    def attach_faults(self, faults: Mapping[str, object]) -> None:
        """Attach fault injectors by site name (see :data:`FAULT_SITES`)."""
        for site, injector in faults.items():
            if site == "p_mem":
                self.p_mem.attach_fault(injector)
            elif site == "r_mem":
                self.r_mem.attach_fault(injector)
            elif site == "shifter":
                self.engine.shifter.attach_fault(injector)
            elif site == "minsearch":
                # the compare tree's outputs are latched into the
                # min1/min2 register arrays; corrupting those writes is
                # an upset anywhere in the tree
                self.engine.min1.attach_fault(injector)
                self.engine.min2.attach_fault(injector)
            else:
                raise ArchitectureError(
                    f"unknown fault site {site!r}; have {self.FAULT_SITES}"
                )

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, channel_llrs: np.ndarray) -> ArchDecodeResult:
        """Decode one frame of float channel LLRs."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        code = self.config.code
        if llrs.shape != (code.n,):
            raise ArchitectureError(f"LLR length {llrs.shape} != ({code.n},)")
        return self.decode_codes(self.fmt.quantize(llrs))

    def decode_codes(self, llr_codes: np.ndarray) -> ArchDecodeResult:
        """Decode pre-quantized integer LLR codes."""
        code = self.config.code
        cfg = self.config
        self.p_mem.load_all(
            np.asarray(llr_codes, dtype=np.int32).reshape(code.nb, code.z)
        )
        self.r_mem.load_all(np.zeros((self.r_mem.words, code.z), dtype=np.int32))

        trace = ArchTrace()
        t = 0
        iterations = 0
        iteration_syndromes: List[int] = []
        for _ in range(cfg.max_iterations):
            for l in range(code.num_layers):
                order = self.engine.column_order(l, cfg.column_order)
                cols = code.layer(l).degree * cfg.passes

                start1 = t
                end1_issue = start1 + cols  # one column (pass) per cycle
                arrays_final = end1_issue - 1 + cfg.handoff_depth
                trace.add("core1", start1, end1_issue, f"L{l}")
                trace.add("shifter", start1, end1_issue, f"L{l}")

                start2 = arrays_final
                end2_issue = start2 + cols
                commit = end2_issue - 1 + cfg.core2_depth
                trace.add("core2", start2, end2_issue, f"L{l}")

                state = self.engine.run_core1(l, order)
                self.engine.run_core2(l, order, state)
                t = commit

            t += cfg.termination_check_cycles
            iterations += 1
            weight = int(code.syndrome(hard_decision(self.engine.p_vector())).sum())
            iteration_syndromes.append(weight)
            if cfg.early_termination and weight == 0:
                break

        trace.total_cycles = max(trace.total_cycles, t)
        p = self.engine.p_vector()
        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        decode = DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=self.fmt.dequantize(p),
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )
        return ArchDecodeResult(decode, trace, cfg.clock_mhz)

    # ------------------------------------------------------------------
    # static timing (no data needed)
    # ------------------------------------------------------------------
    def cycles_per_iteration(self) -> int:
        """Closed-form cycles for one full iteration of this schedule."""
        cfg = self.config
        total = 0
        for layer in self.config.code.layers:
            cols = layer.degree * cfg.passes
            total += 2 * cols + cfg.handoff_depth + cfg.core2_depth - 2
        return total + cfg.termination_check_cycles
