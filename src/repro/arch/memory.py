"""Storage models with access statistics and fault-injection hooks.

Each model wraps a numpy backing store and counts reads/writes; the
power model converts access counts into SRAM energy and the tests use
them to verify the architecture touches memory exactly as the paper's
block diagrams say (one P word and one R word per column per core).

Every model also accepts a fault injector (``attach_fault``): an object
with ``on_read(word)`` / ``on_write(word)`` hooks that every access is
routed through.  :mod:`repro.faults` uses this to model soft errors in
the low-voltage SRAM regime the paper's power argument targets — the
storage model stays oblivious to fault semantics, it just offers the
access stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ArchitectureError


@dataclass
class MemoryStats(object):
    """Access counters for one memory instance."""

    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        """Total reads + writes."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero the counters (e.g. between frames)."""
        self.reads = 0
        self.writes = 0


class SramModel(object):
    """A word-addressed SRAM macro: ``words`` x ``width_lanes`` lanes.

    The decoder's P and R SRAMs store one z-lane message word per
    address; lanes are 8-bit codes (int32 here, saturated by the
    datapath before writes).
    """

    def __init__(self, name: str, words: int, lanes: int) -> None:
        if words < 1 or lanes < 1:
            raise ArchitectureError(f"bad SRAM shape for {name!r}")
        self.name = name
        self.words = words
        self.lanes = lanes
        self.data = np.zeros((words, lanes), dtype=np.int32)
        self.stats = MemoryStats()
        self.fault_injector = None

    def attach_fault(self, injector) -> None:
        """Route every subsequent read/write through ``injector``."""
        self.fault_injector = injector

    @property
    def bits(self, lane_bits: int = 8) -> int:
        """Capacity in bits at the decoder's 8-bit lane width."""
        return self.words * self.lanes * 8

    def read(self, address: int) -> np.ndarray:
        """Read one word (returns a copy)."""
        self._check(address)
        self.stats.reads += 1
        word = self.data[address].copy()
        if self.fault_injector is not None:
            word = self.fault_injector.on_read(word)
        return word

    def write(self, address: int, word: np.ndarray) -> None:
        """Write one word."""
        self._check(address)
        word = np.asarray(word, dtype=np.int32)
        if word.shape != (self.lanes,):
            raise ArchitectureError(
                f"{self.name}: word shape {word.shape} != ({self.lanes},)"
            )
        if self.fault_injector is not None:
            word = np.asarray(
                self.fault_injector.on_write(word), dtype=np.int32
            )
        self.stats.writes += 1
        self.data[address] = word

    def load_all(self, contents: np.ndarray) -> None:
        """Bulk initialization (frame load); counts one write per word."""
        contents = np.asarray(contents, dtype=np.int32)
        if contents.shape != (self.words, self.lanes):
            raise ArchitectureError(
                f"{self.name}: contents shape {contents.shape} != "
                f"({self.words}, {self.lanes})"
            )
        self.data = contents.copy()
        self.stats.writes += self.words

    def _check(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise ArchitectureError(
                f"{self.name}: address {address} out of range [0, {self.words})"
            )


class RomModel(object):
    """A read-only table — the parity-check matrix ROM.

    Entries are (block_column, shift) pairs per non-zero block, in
    layer-major order, plus per-layer degree markers; exactly the
    sequencing information the paper's ROM provides.
    """

    def __init__(self, name: str, entries: List[tuple]) -> None:
        self.name = name
        self.entries = list(entries)
        self.stats = MemoryStats()

    def __len__(self) -> int:
        return len(self.entries)

    def read(self, address: int) -> tuple:
        """Read one entry."""
        if not 0 <= address < len(self.entries):
            raise ArchitectureError(
                f"{self.name}: address {address} out of range"
            )
        self.stats.reads += 1
        return self.entries[address]


class FifoModel(object):
    """A FIFO of z-lane words (the pipelined design's Q FIFO)."""

    def __init__(self, name: str, capacity: int, lanes: int) -> None:
        if capacity < 1:
            raise ArchitectureError(f"{name}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.lanes = lanes
        self._queue: List[np.ndarray] = []
        self.stats = MemoryStats()
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when another push would overflow."""
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when there is nothing to pop."""
        return not self._queue

    def push(self, word: np.ndarray) -> None:
        """Enqueue one word; raises on overflow (a real design stalls)."""
        if self.full:
            raise ArchitectureError(f"{self.name}: FIFO overflow")
        word = np.asarray(word, dtype=np.int32)
        if word.shape != (self.lanes,):
            raise ArchitectureError(
                f"{self.name}: word shape {word.shape} != ({self.lanes},)"
            )
        self._queue.append(word.copy())
        self.stats.writes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))

    def pop(self) -> np.ndarray:
        """Dequeue one word; raises on underflow."""
        if self.empty:
            raise ArchitectureError(f"{self.name}: FIFO underflow")
        self.stats.reads += 1
        return self._queue.pop(0)


class RegArrayModel(object):
    """A z-lane register vector (min1/min2/pos1/sign arrays)."""

    def __init__(self, name: str, lanes: int, init: Optional[int] = None) -> None:
        self.name = name
        self.lanes = lanes
        self._init = init
        self.data = np.zeros(lanes, dtype=np.int32)
        if init is not None:
            self.data[:] = init
        self.stats = MemoryStats()
        self.fault_injector = None

    def attach_fault(self, injector) -> None:
        """Route every subsequent write through ``injector``."""
        self.fault_injector = injector

    def reset(self) -> None:
        """Restore the initialization value (start of a layer)."""
        self.data[:] = self._init if self._init is not None else 0

    def read(self) -> np.ndarray:
        """Read the whole vector (a register read, but counted)."""
        self.stats.reads += 1
        return self.data.copy()

    def write(self, values: np.ndarray) -> None:
        """Write the whole vector."""
        values = np.asarray(values, dtype=np.int32)
        if values.shape != (self.lanes,):
            raise ArchitectureError(
                f"{self.name}: shape {values.shape} != ({self.lanes},)"
            )
        if self.fault_injector is not None:
            values = np.asarray(
                self.fault_injector.on_write(values), dtype=np.int32
            )
        self.stats.writes += 1
        self.data = values.copy()
