"""Frame-streaming operation: sustained throughput with I/O overlap.

Table II's throughput divides one frame's payload by one frame's decode
latency — valid when frame load/unload overlaps decoding.  A real
handset modem double-buffers the P memory (ping-pong): while the
decoder works on frame ``i``, the channel interface writes frame
``i + 1`` into the shadow bank and reads frame ``i - 1`` out.  The
decoder then never idles unless a frame's *decode* time exceeds its
*transfer* time.

:class:`FrameStreamModel` makes that pipeline explicit: given per-frame
decode cycles (from the cycle-accurate simulators) and an I/O interface
width, it reports sustained throughput, buffer occupancy, and whether
the system is decode-bound or I/O-bound — with the doubled P-memory
cost accounted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ArchitectureError


@dataclass
class StreamReport(object):
    """Steady-state behaviour of the frame pipeline.

    Attributes
    ----------
    frames:
        Number of frames pushed through.
    total_cycles:
        Makespan from first input cycle to last output cycle.
    sustained_mbps:
        Payload throughput over the makespan at the model's clock.
    decode_bound:
        True when decode time dominates (I/O hides behind decoding).
    io_cycles_per_frame / avg_decode_cycles:
        The two sides of the balance.
    extra_p_memory_bits:
        Cost of the ping-pong bank (one extra P memory).
    """

    frames: int
    total_cycles: int
    sustained_mbps: float
    decode_bound: bool
    io_cycles_per_frame: int
    avg_decode_cycles: float
    extra_p_memory_bits: int


class FrameStreamModel(object):
    """Ping-pong double-buffered frame pipeline.

    Parameters
    ----------
    n / k:
        Codeword and payload lengths in bits.
    clock_mhz:
        Decoder clock.
    io_bits_per_cycle:
        Channel-interface width into the shadow P bank (e.g. one
        z-lane word of quantized LLRs per cycle = 96 * 8 bits).
    msg_bits:
        LLR quantization (transfer volume = n * msg_bits).
    """

    def __init__(
        self,
        n: int,
        k: int,
        clock_mhz: float,
        io_bits_per_cycle: int = 768,
        msg_bits: int = 8,
    ) -> None:
        if n < 1 or not 0 < k <= n:
            raise ArchitectureError(f"bad frame shape n={n} k={k}")
        if io_bits_per_cycle < 1:
            raise ArchitectureError("interface must move at least one bit")
        self.n = n
        self.k = k
        self.clock_mhz = clock_mhz
        self.io_bits_per_cycle = io_bits_per_cycle
        self.msg_bits = msg_bits

    @property
    def io_cycles_per_frame(self) -> int:
        """Cycles to load one frame of quantized LLRs."""
        bits = self.n * self.msg_bits
        return -(-bits // self.io_bits_per_cycle)  # ceil

    def simulate(self, decode_cycles: Sequence[int]) -> StreamReport:
        """Run the ping-pong pipeline over per-frame decode times.

        Frame ``i`` may start decoding once (a) its transfer finished
        and (b) the decoder finished frame ``i - 1``.  Transfers are
        back-to-back (the channel never waits) unless the shadow bank
        is still held by a decode that has fallen behind.
        """
        if not decode_cycles:
            raise ArchitectureError("need at least one frame")
        io = self.io_cycles_per_frame
        load_done: List[int] = []
        decode_done: List[int] = []
        next_load_start = 0
        for i, cycles in enumerate(decode_cycles):
            if cycles < 1:
                raise ArchitectureError(f"frame {i}: bad decode cycles")
            # The shadow bank frees when frame i-1 *starts* decoding
            # from its own bank; with two banks, loading frame i must
            # wait until decode of frame i-1 has begun, i.e. until
            # frame i-1's load completed and the decoder was free.
            load_start = next_load_start
            done = load_start + io
            load_done.append(done)
            decoder_free = decode_done[-1] if decode_done else 0
            start = max(done, decoder_free)
            decode_done.append(start + cycles)
            # Bank for frame i+1 frees once frame i starts decoding.
            next_load_start = max(done, start)
        total = decode_done[-1]
        payload = self.k * len(decode_cycles)
        sustained = payload * self.clock_mhz / total
        avg_decode = sum(decode_cycles) / len(decode_cycles)
        return StreamReport(
            frames=len(decode_cycles),
            total_cycles=total,
            sustained_mbps=sustained,
            decode_bound=avg_decode >= io,
            io_cycles_per_frame=io,
            avg_decode_cycles=avg_decode,
            extra_p_memory_bits=self.n * self.msg_bits,
        )
