"""Execution traces: busy segments, utilization, and Fig 4/6 timelines.

Both architecture simulators emit an :class:`ArchTrace`: a list of
``(unit, start, end, label)`` busy segments plus the total makespan.
From it come

* per-unit busy-cycle counts and utilization — the paper's "core
  utilization is low (about 50%)" claim for the per-layer design;
* the activity fractions the clock-gating power model consumes;
* an ASCII rendering of the Fig 4 / Fig 6 schedule diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class Segment(object):
    """A half-open busy interval [start, end) of one hardware unit."""

    unit: str
    start: int
    end: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ArchitectureError(
                f"empty segment for {self.unit}: [{self.start}, {self.end})"
            )

    @property
    def cycles(self) -> int:
        """Busy cycles covered by the segment."""
        return self.end - self.start


@dataclass
class ArchTrace(object):
    """Timing record of one decode (or a per-iteration slice)."""

    total_cycles: int = 0
    segments: List[Segment] = field(default_factory=list)
    stall_cycles: int = 0

    def add(self, unit: str, start: int, end: int, label: str = "") -> None:
        """Append a busy segment."""
        self.segments.append(Segment(unit, start, end, label))
        self.total_cycles = max(self.total_cycles, end)

    def units(self) -> List[str]:
        """Distinct unit names, in first-appearance order."""
        seen: List[str] = []
        for seg in self.segments:
            if seg.unit not in seen:
                seen.append(seg.unit)
        return seen

    def busy_cycles(self, unit: str) -> int:
        """Total busy cycles of one unit."""
        return sum(seg.cycles for seg in self.segments if seg.unit == unit)

    def utilization(self, unit: str) -> float:
        """Busy fraction of one unit over the makespan."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles(unit) / self.total_cycles

    def activity(self) -> Dict[str, float]:
        """Unit -> busy fraction (the clock-gating model's input)."""
        return {unit: self.utilization(unit) for unit in self.units()}

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, width: int = 72, max_cycles: int = 0) -> str:
        """ASCII timeline in the style of the paper's Figs 4 and 6."""
        span = min(self.total_cycles, max_cycles) if max_cycles else self.total_cycles
        if span == 0:
            return "(empty trace)"
        scale = width / span
        lines = []
        name_w = max(len(u) for u in self.units())
        for unit in self.units():
            row = [" "] * width
            for seg in self.segments:
                if seg.unit != unit or seg.start >= span:
                    continue
                a = int(seg.start * scale)
                b = max(a + 1, int(min(seg.end, span) * scale))
                mark = (seg.label[:1] or "#") if seg.label else "#"
                for x in range(a, min(b, width)):
                    row[x] = mark
            lines.append(f"{unit.rjust(name_w)} |{''.join(row)}|")
        lines.append(f"{' ' * name_w} 0{' ' * (width - len(str(span)) - 1)}{span}")
        return "\n".join(lines)
