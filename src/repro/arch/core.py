"""Bit-accurate functional model of the core1/core2 datapaths.

:class:`LayerEngine` executes one layer's arithmetic against the P/R
memory models, using exactly the fixed-point kernels of
:mod:`repro.decoder.minsum` (saturating 8-bit two's complement,
shift-add 0.75 scaler).  Both architecture simulators call it — the
scoreboard makes the pipelined hardware sequentially equivalent, so one
functional model serves both (see the package docstring) — and the
integration tests require its output to match
:class:`repro.decoder.LayeredMinSumDecoder` in fixed mode bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.arch.memory import RegArrayModel, SramModel
from repro.arch.shifter import BarrelShifter
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import LayerView, QCLDPCCode
from repro.decoder.minsum import scale_magnitude_fixed, sign_with_zero_positive
from repro.errors import ArchitectureError


@dataclass
class LayerResult(object):
    """Artifacts of one layer pass (for the pipelined Q FIFO and tests)."""

    q_words: List[np.ndarray]
    min1: np.ndarray
    min2: np.ndarray
    pos1: np.ndarray
    sign: np.ndarray


class LayerEngine(object):
    """Executes core1/core2 arithmetic for one layer at a time.

    Parameters
    ----------
    code:
        The code being decoded (provides layer views and shifts).
    p_mem / r_mem:
        SRAM models; P is addressed by block column, R by
        ``layer_base + block_position``.
    fmt:
        Fixed-point message format (the paper's 8-bit default).
    """

    def __init__(
        self,
        code: QCLDPCCode,
        p_mem: SramModel,
        r_mem: SramModel,
        fmt: FixedPointFormat = MESSAGE_8BIT,
    ) -> None:
        self.code = code
        self.p_mem = p_mem
        self.r_mem = r_mem
        self.fmt = fmt
        self.shifter = BarrelShifter(code.z)
        self.min1 = RegArrayModel("min1_array", code.z)
        self.min2 = RegArrayModel("min2_array", code.z)
        self.pos1 = RegArrayModel("pos1_array", code.z)
        self.sign = RegArrayModel("sign_array", code.z)
        # R addressing: one word per non-zero block, layer-major.
        degrees = [layer.degree for layer in code.layers]
        self.layer_base = np.concatenate([[0], np.cumsum(degrees)[:-1]])
        if r_mem.words < int(np.sum(degrees)):
            raise ArchitectureError(
                f"R memory too small: {r_mem.words} words < {int(np.sum(degrees))}"
            )

    # ------------------------------------------------------------------
    # core1: read & pre-process (stage 1 of Algorithm 1)
    # ------------------------------------------------------------------
    def run_core1(
        self, layer_index: int, order: Sequence[int]
    ) -> LayerResult:
        """Process a layer's columns through core1 in the given order.

        Returns the Q words (in processing order) plus the final
        min1/min2/pos1/sign register contents.
        """
        code = self.code
        layer = code.layer(layer_index)
        base = int(self.layer_base[layer_index])
        sat_max = self.fmt.max_code

        min1 = np.full(code.z, sat_max + 1, dtype=np.int64)
        min2 = np.full(code.z, sat_max + 1, dtype=np.int64)
        pos1 = np.zeros(code.z, dtype=np.int64)
        sign_acc = np.ones(code.z, dtype=np.int64)
        q_words: List[np.ndarray] = []

        for k in order:
            j = int(layer.block_cols[k])
            s = int(layer.shifts[k])
            p_word = self.p_mem.read(j)
            p_rot = self.shifter.rotate(p_word, s)
            r_word = self.r_mem.read(base + k)
            q = self.fmt.saturate(p_rot.astype(np.int64) - r_word)
            q_words.append(q)

            mag = np.abs(q.astype(np.int64))
            sgn = sign_with_zero_positive(q).astype(np.int64)
            sign_acc *= sgn
            better = mag < min1
            min2 = np.where(better, min1, np.minimum(min2, mag))
            pos1 = np.where(better, k, pos1)
            min1 = np.where(better, mag, min1)

        self.min1.write(np.minimum(min1, sat_max).astype(np.int32))
        self.min2.write(np.minimum(min2, sat_max).astype(np.int32))
        self.pos1.write(pos1.astype(np.int32))
        self.sign.write(sign_acc.astype(np.int32))
        return LayerResult(
            q_words,
            self.min1.data.copy(),
            self.min2.data.copy(),
            self.pos1.data.copy(),
            self.sign.data.copy(),
        )

    # ------------------------------------------------------------------
    # core2: decode & write back (stage 2 of Algorithm 1)
    # ------------------------------------------------------------------
    def run_core2(
        self, layer_index: int, order: Sequence[int], state: LayerResult
    ) -> None:
        """Write back R' and P' for a layer using core1's results."""
        code = self.code
        layer = code.layer(layer_index)
        base = int(self.layer_base[layer_index])

        min1 = state.min1.astype(np.int64)
        min2 = state.min2.astype(np.int64)
        pos1 = state.pos1
        sign_all = state.sign.astype(np.int64)

        for q, k in zip(state.q_words, order):
            j = int(layer.block_cols[k])
            s = int(layer.shifts[k])
            mag = np.where(pos1 == k, min2, min1)
            sgn_q = sign_with_zero_positive(q).astype(np.int64)
            r_new = (sign_all * sgn_q) * scale_magnitude_fixed(mag)
            r_new = self.fmt.saturate(r_new)
            p_new = self.fmt.saturate(q.astype(np.int64) + r_new)
            self.r_mem.write(base + k, r_new)
            self.p_mem.write(j, self.shifter.rotate_back(p_new, s))

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def process_layer(
        self, layer_index: int, order: Sequence[int]
    ) -> LayerResult:
        """core1 followed by core2 (the sequential layer semantics)."""
        state = self.run_core1(layer_index, order)
        self.run_core2(layer_index, order, state)
        return state

    def p_vector(self) -> np.ndarray:
        """The flat P (a-posteriori) vector in natural variable order."""
        return self.p_mem.data.reshape(-1).copy()

    def column_order(self, layer_index: int, policy: str) -> List[int]:
        """Column processing order for a layer under a policy.

        ``"natural"``: matrix order.  ``"hazard-aware"``: columns also
        present in the *previous* layer go last (read as late as
        possible, ordered by their write position there), so the
        pipelined core1 rarely has to wait for core2's write-back.
        """
        layer = self.code.layer(layer_index)
        natural = list(range(layer.degree))
        if policy == "natural":
            return natural
        prev = self.code.layer((layer_index - 1) % self.code.num_layers)
        prev_pos = {int(c): i for i, c in enumerate(prev.block_cols)}
        return sorted(
            natural,
            key=lambda k: (
                int(layer.block_cols[k]) in prev_pos,
                prev_pos.get(int(layer.block_cols[k]), -1),
                k,
            ),
        )
