"""Decode result + timing record returned by the architecture models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.scheduler_trace import ArchTrace
from repro.decoder.result import DecodeResult


@dataclass
class ArchDecodeResult(object):
    """What an architectural decode produces.

    Attributes
    ----------
    decode:
        The functional outcome (bit-identical to the fixed-point numpy
        decoder).
    trace:
        Cycle-accurate busy/stall record.
    clock_mhz:
        The clock the timing was simulated at.
    """

    decode: DecodeResult
    trace: ArchTrace
    clock_mhz: float

    @property
    def cycles(self) -> int:
        """Total decode latency in cycles."""
        return self.trace.total_cycles

    @property
    def cycles_per_iteration(self) -> float:
        """Average cycles per executed iteration."""
        return self.cycles / max(self.decode.iterations, 1)

    @property
    def latency_us(self) -> float:
        """Decode latency in microseconds at the simulated clock."""
        return self.cycles / self.clock_mhz

    def throughput_mbps(self, info_bits: int) -> float:
        """Information throughput in Mbit/s for this frame's latency.

        Table II's convention: payload bits over decode latency
        (1152 bits / 2.8 us = 415 Mbps for the paper's decoder).
        """
        return info_bits / self.latency_us
