"""The barrel shifter that aligns P words to a layer's check rows.

A weight-1 circulant with shift ``s`` connects check row ``r`` to
block-column lane ``(r + s) mod z``; reading P through the shifter
gives lane ``r`` the value ``P[(r + s) mod z]`` — i.e. a left-rotate
by ``s`` (``np.roll(word, -s)``).  Write-back applies the inverse
rotation so the P memory stays in natural column order.

The model counts rotations (for switching-activity estimation) and
knows its own structural cost: ``log2(z)`` mux stages per lane.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ArchitectureError


class BarrelShifter(object):
    """A z-lane logarithmic barrel rotator."""

    def __init__(self, z: int) -> None:
        if z < 1:
            raise ArchitectureError(f"z must be >= 1, got {z}")
        self.z = z
        self.rotations = 0
        self.fault_injector = None

    def attach_fault(self, injector) -> None:
        """Route every rotation output through ``injector`` (as a read).

        Models upsets in the shifter's mux tree: the rotated word is
        corrupted combinationally, the P memory itself stays clean.
        """
        self.fault_injector = injector

    @property
    def stages(self) -> int:
        """Number of 2:1 mux stages per lane."""
        return max(1, math.ceil(math.log2(self.z))) if self.z > 1 else 0

    def rotate(self, word: np.ndarray, shift: int) -> np.ndarray:
        """Align a natural-order P word to check-row order (left rotate)."""
        word = np.asarray(word)
        if word.shape != (self.z,):
            raise ArchitectureError(
                f"word shape {word.shape} != ({self.z},)"
            )
        self.rotations += 1
        out = np.roll(word, -(shift % self.z))
        if self.fault_injector is not None:
            out = self.fault_injector.on_read(out)
        return out

    def rotate_back(self, word: np.ndarray, shift: int) -> np.ndarray:
        """Inverse alignment: check-row order back to natural order."""
        word = np.asarray(word)
        if word.shape != (self.z,):
            raise ArchitectureError(
                f"word shape {word.shape} != ({self.z},)"
            )
        self.rotations += 1
        out = np.roll(word, shift % self.z)
        if self.fault_injector is not None:
            out = self.fault_injector.on_read(out)
        return out
