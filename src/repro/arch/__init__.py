"""Cycle-accurate architectural models of the paper's two decoders.

The decoupling at the heart of this package: the scoreboard guarantees
that the two-layer pipelined hardware computes *exactly* the values of
the sequential layered algorithm (core1 never reads a P entry with a
pending write), so

* *arithmetic* is simulated once, bit-accurately, by
  :class:`~repro.arch.core.LayerEngine` (shared by both architectures
  and identical to the fixed-point numpy decoder), while
* *timing* is simulated per architecture:
  :class:`~repro.arch.perlayer.PerLayerArch` (Fig 4: core2 waits for
  core1 each layer) and
  :class:`~repro.arch.pipelined.TwoLayerPipelinedArch` (Fig 6: core1
  of layer l+1 overlaps core2 of layer l, with scoreboard stalls and a
  Q FIFO).

Both produce a :class:`~repro.arch.scheduler_trace.ArchTrace` with
per-unit busy segments; the power model reads its activity fractions
and the evaluation harness its cycle counts.
"""

from repro.arch.config import ArchConfig
from repro.arch.memory import FifoModel, MemoryStats, RegArrayModel, RomModel, SramModel
from repro.arch.shifter import BarrelShifter
from repro.arch.scoreboard import Scoreboard
from repro.arch.core import LayerEngine, LayerResult
from repro.arch.scheduler_trace import ArchTrace, Segment
from repro.arch.perlayer import PerLayerArch
from repro.arch.pipelined import TwoLayerPipelinedArch
from repro.arch.result import ArchDecodeResult
from repro.arch.framestream import FrameStreamModel, StreamReport
from repro.arch.verify import EquivalenceReport, verify_equivalence
from repro.arch.vcd import to_vcd, write_vcd
from repro.arch.reconfig import DecoderCapacity, ReconfigurableDecoder

__all__ = [
    "ArchConfig",
    "SramModel",
    "RomModel",
    "FifoModel",
    "RegArrayModel",
    "MemoryStats",
    "BarrelShifter",
    "Scoreboard",
    "LayerEngine",
    "LayerResult",
    "ArchTrace",
    "Segment",
    "PerLayerArch",
    "TwoLayerPipelinedArch",
    "ArchDecodeResult",
    "FrameStreamModel",
    "StreamReport",
    "EquivalenceReport",
    "verify_equivalence",
    "to_vcd",
    "write_vcd",
    "DecoderCapacity",
    "ReconfigurableDecoder",
]
