"""Equivalence checking: architecture vs algorithm.

PICO's pitch includes "the RTL is guaranteed to be functionally
equivalent to the algorithmic C input description".  This module makes
the analogous guarantee checkable for the models here: run the same
random frames through the fixed-point numpy decoder (the "C") and the
cycle-accurate architecture simulators (the "RTL"), and require
bit-for-bit agreement on decisions, iteration counts, and final LLRs.

Used by the integration tests and exposed publicly so users modifying
an architecture can re-certify it in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.perlayer import PerLayerArch
from repro.arch.pipelined import TwoLayerPipelinedArch
from repro.channel import AwgnChannel
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import LayeredMinSumDecoder
from repro.encoder import RuEncoder
from repro.utils.rng import SeedLike, as_generator


@dataclass
class EquivalenceReport(object):
    """Outcome of an equivalence run.

    Attributes
    ----------
    frames:
        Frames checked.
    mismatches:
        Descriptions of any disagreement found (empty = equivalent).
    architectures:
        Architecture names that were checked.
    """

    frames: int
    mismatches: List[str] = field(default_factory=list)
    architectures: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True iff every frame agreed on every architecture."""
        return not self.mismatches


def verify_equivalence(
    code: QCLDPCCode,
    frames: int = 10,
    ebno_db: float = 2.5,
    max_iterations: int = 10,
    seed: SeedLike = 0,
) -> EquivalenceReport:
    """Check both architectures against the fixed-point algorithm.

    Parameters
    ----------
    code:
        The code to exercise.
    frames:
        Number of random noisy frames.
    ebno_db:
        Channel quality; near-threshold keeps all iterations busy.
    """
    rng = as_generator(seed)
    encoder = RuEncoder(code)
    reference = LayeredMinSumDecoder(
        code, max_iterations=max_iterations, fixed=True
    )
    configs: List[ArchConfig] = [
        ArchConfig(
            code, core1_depth=4, core2_depth=2,
            max_iterations=max_iterations,
        ),
        ArchConfig(
            code, core1_depth=4, core2_depth=2,
            max_iterations=max_iterations, column_order="hazard-aware",
        ),
    ]
    builders = [PerLayerArch, TwoLayerPipelinedArch]

    report = EquivalenceReport(frames=frames)
    report.architectures = [b.name for b in builders]

    for frame in range(frames):
        message = rng.integers(0, 2, encoder.k).astype(np.uint8)
        codeword = encoder.encode(message)
        llrs = AwgnChannel.from_ebno(ebno_db, code.rate, seed=rng).llrs(codeword)
        ref = reference.decode(llrs)
        for cfg, builder in zip(configs, builders):
            result = builder(cfg).decode(llrs).decode
            label = f"frame {frame}, {builder.name}"
            if not np.array_equal(result.bits, ref.bits):
                report.mismatches.append(f"{label}: decisions differ")
            if result.iterations != ref.iterations:
                report.mismatches.append(
                    f"{label}: iterations {result.iterations} != "
                    f"{ref.iterations}"
                )
            if not np.array_equal(result.llrs, ref.llrs):
                report.mismatches.append(f"{label}: final LLRs differ")
    return report
