"""The pipelined architecture's hazard scoreboard (Section IV-B).

One bit per block column: bit ``n`` is 1 iff a write to P word ``n`` is
pending in core2's pipeline.  Core1 *sets* the bit when it reads column
``n`` (a refined value will be written later); core2 *clears* it when
the write commits.  Core1 checking a set bit stalls — "does nothing
for that iteration" in the paper's words.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import ArchitectureError


class Scoreboard(object):
    """Pending-write tracker with stall accounting."""

    def __init__(self, num_columns: int) -> None:
        if num_columns < 1:
            raise ArchitectureError("scoreboard needs at least one column")
        self.num_columns = num_columns
        self._pending: Set[int] = set()
        self.stall_cycles = 0
        self.checks = 0
        self.hits = 0

    def _validate(self, column: int) -> None:
        if not 0 <= column < self.num_columns:
            raise ArchitectureError(
                f"column {column} out of range [0, {self.num_columns})"
            )

    def pending(self, column: int) -> bool:
        """check_scoreboard(): is a write to this column outstanding?"""
        self._validate(column)
        self.checks += 1
        hit = column in self._pending
        if hit:
            self.hits += 1
        return hit

    def set(self, column: int) -> None:
        """set_scoreboard(): mark a write as outstanding.

        Setting an already-pending column is an architectural error —
        it would mean two in-flight writes to one word, which the
        one-layer-deep pipeline of Fig 6 cannot produce.
        """
        self._validate(column)
        if column in self._pending:
            raise ArchitectureError(
                f"double-pend on column {column}: a second write was "
                "issued before the first committed"
            )
        self._pending.add(column)

    def clear(self, column: int) -> None:
        """clear_scoreboard(): the write has committed."""
        self._validate(column)
        if column not in self._pending:
            raise ArchitectureError(
                f"clear of non-pending column {column}"
            )
        self._pending.discard(column)

    def record_stall(self, cycles: int) -> None:
        """Account stall cycles attributed to scoreboard waits."""
        if cycles < 0:
            raise ArchitectureError("negative stall")
        self.stall_cycles += cycles

    @property
    def outstanding(self) -> int:
        """Number of currently pending columns."""
        return len(self._pending)
