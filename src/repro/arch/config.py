"""Architecture configuration: code, clock, and derived pipeline depths.

The coupling point between the HLS front end and the timing simulators:
:meth:`ArchConfig.from_hls` compiles the decoder program at the target
clock and reads the core1/core2 pipeline depths out of the schedule, so
a faster clock automatically yields deeper cores and longer per-layer
latency — the Fig 8(a) mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codes.qc import QCLDPCCode
from repro.errors import ArchitectureError

_COLUMN_ORDERS = ("natural", "hazard-aware")


@dataclass
class ArchConfig(object):
    """Parameters shared by both architecture simulators.

    Attributes
    ----------
    code:
        The QC-LDPC code instance to decode.
    clock_mhz:
        Target clock (used for throughput/latency conversions).
    core1_depth / core2_depth:
        Pipeline depth in cycles of each core (issue to commit).
    handoff_depth:
        Cycles from core1's *last column issue* until the min1/min2
        arrays are final and core2 may start.  Defaults to
        ``core1_depth`` (wait for full drain — the simple per-layer
        design).  The pipelined design forwards the arrays from the
        min-update stage mid-pipe (``ceil(core1_depth / 2)``), which
        :meth:`from_hls` configures automatically.
    parallelism:
        Datapath lanes; must divide z.  ``z`` lanes process a column
        per cycle; fewer lanes multiply the column pass count.
    max_iterations:
        Iteration budget (paper: 10).
    early_termination:
        Stop at an iteration boundary once the syndrome is zero.
    fifo_capacity:
        Q FIFO depth (pipelined architecture only).
    column_order:
        ``"natural"`` processes each layer's columns in matrix order;
        ``"hazard-aware"`` reorders them to push columns shared with
        the previous layer towards the end, trimming scoreboard stalls
        (an optimization ablated in the benchmarks).
    termination_check_cycles:
        Extra cycles charged per iteration for the early-termination
        syndrome check (0 = fully overlapped with the layer pipeline).
    """

    code: QCLDPCCode
    clock_mhz: float = 400.0
    core1_depth: int = 4
    core2_depth: int = 2
    handoff_depth: Optional[int] = None
    parallelism: Optional[int] = None
    max_iterations: int = 10
    early_termination: bool = True
    fifo_capacity: Optional[int] = None
    column_order: str = "natural"
    termination_check_cycles: int = 0

    def __post_init__(self) -> None:
        if self.core1_depth < 1 or self.core2_depth < 1:
            raise ArchitectureError("core depths must be >= 1")
        if self.handoff_depth is None:
            self.handoff_depth = self.core1_depth
        if not 1 <= self.handoff_depth <= self.core1_depth:
            raise ArchitectureError(
                f"handoff_depth {self.handoff_depth} must be in "
                f"[1, core1_depth={self.core1_depth}]"
            )
        if self.max_iterations < 1:
            raise ArchitectureError("max_iterations must be >= 1")
        if self.column_order not in _COLUMN_ORDERS:
            raise ArchitectureError(
                f"column_order must be one of {_COLUMN_ORDERS}"
            )
        p = self.parallelism if self.parallelism is not None else self.code.z
        if p < 1 or self.code.z % p != 0:
            raise ArchitectureError(
                f"parallelism {p} must divide z={self.code.z}"
            )
        self.parallelism = p
        if self.fifo_capacity is None:
            self.fifo_capacity = 2 * self.code.max_layer_degree * self.passes
        if self.fifo_capacity < self.code.max_layer_degree * self.passes:
            raise ArchitectureError(
                "Q FIFO must hold at least one full layer "
                f"({self.code.max_layer_degree * self.passes} words); "
                f"got {self.fifo_capacity}"
            )

    @property
    def passes(self) -> int:
        """Sequential passes per column when parallelism < z."""
        return self.code.z // int(self.parallelism)

    @classmethod
    def from_hls(
        cls,
        code: QCLDPCCode,
        clock_mhz: float = 400.0,
        architecture: str = "pipelined",
        parallelism: Optional[int] = None,
        **overrides,
    ) -> "ArchConfig":
        """Derive pipeline depths by compiling the decoder program.

        Runs the PICO-like compiler on the matching Fig 5 / Fig 7
        program at ``clock_mhz`` and takes core1/core2 depths from the
        scheduled block lengths.
        """
        # Imported here: repro.hls does not depend on repro.arch, and
        # this keeps the package import graph acyclic.
        from repro.hls.compiler import PicoCompiler
        from repro.hls.programs.decoder import (
            DecoderProfile,
            build_perlayer_program,
            build_pipelined_program,
        )

        profile = DecoderProfile.from_code(
            code, r_words=max(code.nnz_blocks, 84 if code.z == 96 else 0) or None
        )
        if architecture == "pipelined":
            program = build_pipelined_program(profile, parallelism)
        elif architecture == "perlayer":
            program = build_perlayer_program(profile, parallelism)
        else:
            raise ArchitectureError(
                f"unknown architecture {architecture!r}; "
                "choose 'perlayer' or 'pipelined'"
            )
        result = PicoCompiler(clock_mhz=clock_mhz).compile(program)
        core1 = result.block(f"{program.name}/it/l/j")
        core2 = result.block(f"{program.name}/it/l/k")
        d1 = core1.schedule.length
        if architecture == "pipelined" and "column_order" not in overrides:
            # The tool's scheduler orders a layer's columns to minimize
            # scoreboard waits (shared-with-previous-layer columns go
            # last); natural order remains available as an ablation.
            overrides["column_order"] = "hazard-aware"
        handoff = overrides.pop("handoff_depth", None)
        if handoff is None:
            # The pipelined design forwards the min arrays from the
            # mid-pipe min-update stage; the per-layer design waits for
            # the full drain.
            handoff = max(1, -(-d1 // 2)) if architecture == "pipelined" else d1
        return cls(
            code=code,
            clock_mhz=clock_mhz,
            core1_depth=d1,
            core2_depth=core2.schedule.length,
            handoff_depth=handoff,
            parallelism=parallelism,
            **overrides,
        )
