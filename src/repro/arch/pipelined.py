"""The two-layer pipelined decoder architecture (paper Figs 6/7).

core1 of layer ``l+1`` overlaps core2 of layer ``l``.  Correctness is
kept by the scoreboard: core1 stalls on a column whose refined P value
is still in core2's pipeline.  The Q values cross between cores through
a FIFO, and each core owns private copies of the min1/min2/pos1/sign
arrays (handed off when a layer's core1 pass completes).

The timing simulation is event-exact at column granularity:

* core1 issues one column per cycle except when the scoreboard holds it
  (stall until the blocking write's commit time) or the Q FIFO is full;
* core2 for layer ``l`` starts once core1's pipeline has drained layer
  ``l`` (min arrays final) and core2 has finished issuing layer ``l-1``;
* a column's pending window runs from its core1 read to its core2
  write commit (``issue + core2_depth``).

Because the scoreboard enforces read-after-write, the *values* computed
are exactly the sequential layered schedule's — the functional work is
delegated to the shared :class:`~repro.arch.core.LayerEngine`, and the
Q FIFO contents are checked against it cycle by cycle.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.core import LayerEngine
from repro.arch.memory import FifoModel, RomModel, SramModel
from repro.arch.result import ArchDecodeResult
from repro.arch.scheduler_trace import ArchTrace
from repro.arch.scoreboard import Scoreboard
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.decoder.result import DecodeResult
from repro.errors import ArchitectureError
from repro.utils.bitops import hard_decision


class TwoLayerPipelinedArch(object):
    """Cycle-accurate two-layer pipelined decoder (architecture 2)."""

    name = "two-layer-pipelined"

    def __init__(self, config: ArchConfig, fmt: FixedPointFormat = MESSAGE_8BIT) -> None:
        self.config = config
        self.fmt = fmt
        code = config.code
        self.p_mem = SramModel("p_sram", code.nb, code.z)
        self.r_mem = SramModel("r_sram", code.nnz_blocks, code.z)
        self.h_rom = RomModel(
            "h_rom",
            [
                (int(j), int(s))
                for layer in code.layers
                for j, s in zip(layer.block_cols, layer.shifts)
            ],
        )
        self.q_fifo = FifoModel("q_fifo", config.fifo_capacity, code.z)
        self.scoreboard = Scoreboard(code.nb)
        self.engine = LayerEngine(code, self.p_mem, self.r_mem, fmt)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, channel_llrs: np.ndarray) -> ArchDecodeResult:
        """Decode one frame of float channel LLRs."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        code = self.config.code
        if llrs.shape != (code.n,):
            raise ArchitectureError(f"LLR length {llrs.shape} != ({code.n},)")
        return self.decode_codes(self.fmt.quantize(llrs))

    def decode_codes(self, llr_codes: np.ndarray) -> ArchDecodeResult:
        """Decode pre-quantized integer LLR codes."""
        code = self.config.code
        cfg = self.config
        self.p_mem.load_all(
            np.asarray(llr_codes, dtype=np.int32).reshape(code.nb, code.z)
        )
        self.r_mem.load_all(np.zeros((self.r_mem.words, code.z), dtype=np.int32))

        trace = ArchTrace()
        # pending[block_col] = cycle at which the outstanding write commits.
        pending: Dict[int, int] = {}
        pop_times: List[int] = []  # global FIFO pop schedule (per column)
        push_count = 0
        next_issue1 = 0  # core1 is free from this cycle on
        core2_free = 0  # core2 has issued everything before this cycle
        last_commit = 0

        iterations = 0
        iteration_syndromes: List[int] = []
        for _ in range(cfg.max_iterations):
            for l in range(code.num_layers):
                order = self.engine.column_order(l, cfg.column_order)
                layer = code.layer(l)
                passes = cfg.passes

                # ---- core1 pass: issue columns with hazard/FIFO stalls.
                issues1: List[int] = []
                for k in order:
                    j = int(layer.block_cols[k])
                    for _pass in range(passes):
                        t = next_issue1
                        if self.scoreboard.pending(j):
                            clear_at = pending[j]
                            if clear_at > t:
                                self.scoreboard.record_stall(clear_at - t)
                                trace.stall_cycles += clear_at - t
                                t = clear_at
                            self.scoreboard.clear(j)
                            pending.pop(j, None)
                        # Q FIFO back-pressure: this push must wait for
                        # pop number (push_count - capacity) to happen.
                        back = push_count - self.q_fifo.capacity
                        if back >= 0:
                            if back >= len(pop_times):
                                raise ArchitectureError(
                                    "Q FIFO deadlock: capacity smaller "
                                    "than one in-flight layer"
                                )
                            t = max(t, pop_times[back] + 1)
                        issues1.append(t)
                        push_count += 1
                        next_issue1 = t + 1
                    # Mark the refined value as in flight (write pending).
                    self.scoreboard.set(j)
                    pending[j] = 1 << 60  # resolved after core2 scheduling

                end1_drain = issues1[-1] + cfg.handoff_depth
                trace.add("core1", issues1[0], issues1[-1] + 1, f"L{l}")
                trace.add("shifter", issues1[0], issues1[-1] + 1, f"L{l}")

                # ---- core2 pass: starts when core1 drained and core2 free.
                cols = layer.degree * passes
                start2 = max(end1_drain, core2_free)
                issues2 = [start2 + i for i in range(cols)]
                core2_free = issues2[-1] + 1
                trace.add("core2", start2, issues2[-1] + 1, f"L{l}")
                pop_times.extend(issues2)

                # Resolve this layer's commit times (clears the hazards).
                for idx, k in enumerate(order):
                    j = int(layer.block_cols[k])
                    commit = issues2[(idx + 1) * passes - 1] + cfg.core2_depth
                    pending[j] = commit
                    last_commit = max(last_commit, commit)

                # ---- functional work (sequentially equivalent).
                state = self.engine.run_core1(l, order)
                for q in state.q_words:
                    if self.q_fifo.full:
                        self.q_fifo.pop()  # timing already accounts pops
                    self.q_fifo.push(q)
                self.engine.run_core2(l, order, state)
                while not self.q_fifo.empty:
                    self.q_fifo.pop()

            iterations += 1
            weight = int(code.syndrome(hard_decision(self.engine.p_vector())).sum())
            iteration_syndromes.append(weight)
            if cfg.early_termination and weight == 0:
                break
            next_issue1 += cfg.termination_check_cycles

        trace.total_cycles = max(trace.total_cycles, last_commit)
        p = self.engine.p_vector()
        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        decode = DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=self.fmt.dequantize(p),
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )
        return ArchDecodeResult(decode, trace, cfg.clock_mhz)
