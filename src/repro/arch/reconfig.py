"""Runtime reconfiguration: one decoder, every supported code.

The paper's decoder "fully supports the IEEE 802.16e WiMax standard":
one piece of hardware decodes 19 code lengths x 6 rate classes, chosen
per frame by pointing the sequencer at a different parity-check ROM
region.  :class:`ReconfigurableDecoder` models that contract: it is
built once with a *capacity* (maximum z, block columns, R words — the
paper's 96 / 24 / 84), accepts any code that fits, and tracks
reconfigurations the way a driver would program the real device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.perlayer import PerLayerArch
from repro.arch.pipelined import TwoLayerPipelinedArch
from repro.arch.result import ArchDecodeResult
from repro.codes.qc import QCLDPCCode
from repro.errors import ArchitectureError


@dataclass(frozen=True)
class DecoderCapacity(object):
    """The hardware limits a code must fit within.

    Defaults are the paper's implementation: z up to 96, 24 block
    columns, 84 R-memory words, 8-bit messages.
    """

    max_z: int = 96
    max_block_columns: int = 24
    max_r_words: int = 84
    msg_bits: int = 8

    def admits(self, code: QCLDPCCode) -> Optional[str]:
        """None if the code fits, else the reason it does not."""
        if code.z > self.max_z:
            return f"z={code.z} exceeds the {self.max_z}-lane datapath"
        if code.nb > self.max_block_columns:
            return (
                f"nb={code.nb} exceeds the {self.max_block_columns}-word "
                "P memory"
            )
        if code.nnz_blocks > self.max_r_words:
            return (
                f"{code.nnz_blocks} blocks exceed the {self.max_r_words}-word "
                "R memory"
            )
        return None


class ReconfigurableDecoder(object):
    """One hardware instance, reconfigured per code.

    Parameters
    ----------
    capacity:
        Hardware limits (defaults: the paper's).
    architecture:
        ``"pipelined"`` (default) or ``"perlayer"``.
    clock_mhz / core depths:
        Timing configuration shared by every code.
    """

    def __init__(
        self,
        capacity: DecoderCapacity = DecoderCapacity(),
        architecture: str = "pipelined",
        clock_mhz: float = 400.0,
        core1_depth: int = 5,
        core2_depth: int = 2,
        handoff_depth: Optional[int] = 3,
        max_iterations: int = 10,
    ) -> None:
        if architecture not in ("pipelined", "perlayer"):
            raise ArchitectureError(
                f"unknown architecture {architecture!r}"
            )
        self.capacity = capacity
        self.architecture = architecture
        self.clock_mhz = clock_mhz
        self.core1_depth = core1_depth
        self.core2_depth = core2_depth
        self.handoff_depth = handoff_depth
        self.max_iterations = max_iterations
        self.reconfigurations = 0
        self.frames_decoded = 0
        self._code: Optional[QCLDPCCode] = None
        self._sim = None
        self._per_code_frames: Dict[str, int] = {}

    @property
    def current_code(self) -> Optional[QCLDPCCode]:
        """The code the sequencer is currently programmed for."""
        return self._code

    def switch_code(self, code: QCLDPCCode) -> None:
        """Program the decoder for a new code (ROM region select)."""
        reason = self.capacity.admits(code)
        if reason is not None:
            raise ArchitectureError(f"code {code.name!r} rejected: {reason}")
        self._code = code
        self.reconfigurations += 1
        self._sim = None  # rebuilt lazily per frame

    def decode(self, channel_llrs: np.ndarray) -> ArchDecodeResult:
        """Decode one frame with the currently selected code."""
        if self._code is None:
            raise ArchitectureError(
                "no code selected; call switch_code() first"
            )
        config = ArchConfig(
            self._code,
            clock_mhz=self.clock_mhz,
            core1_depth=self.core1_depth,
            core2_depth=self.core2_depth,
            handoff_depth=min(
                self.handoff_depth or self.core1_depth, self.core1_depth
            ),
            max_iterations=self.max_iterations,
            column_order=(
                "hazard-aware" if self.architecture == "pipelined" else "natural"
            ),
        )
        simulator = (
            TwoLayerPipelinedArch(config)
            if self.architecture == "pipelined"
            else PerLayerArch(config)
        )
        result = simulator.decode(channel_llrs)
        self.frames_decoded += 1
        name = self._code.name
        self._per_code_frames[name] = self._per_code_frames.get(name, 0) + 1
        return result

    def usage_summary(self) -> Dict[str, int]:
        """Frames decoded per code since construction."""
        return dict(self._per_code_frames)
