"""Batched decode runtime: batch kernel, continuous batching, workers.

The software analogue of the paper's throughput story.  Where the
hardware keeps its z-way datapath saturated across layers (two-layer
pipelining + scoreboard), this package keeps a vectorized numpy datapath
saturated across *frames*:

* :class:`BatchLayeredMinSumDecoder` — decode a ``(B, n)`` LLR matrix
  with one numpy pass per layer, bit-exact with the per-frame decoder,
  retiring converged frames early;
* :class:`ContinuousBatchingEngine` — slot reuse: retired frames free
  slots that new frames fill mid-flight, so the batch never drains;
* :class:`DecodeService` — worker pool with per-rate sharding, bounded
  queues (typed backpressure errors), futures-based submission, and
  self-healing: supervised workers restart after crashes with capped
  backoff, every pending future fails fast with a typed error (nothing
  hangs), transient faults trigger bounded retries, per-job deadlines
  expire stale work, and a load-shedding policy trades iteration budget
  for availability under overload — see :meth:`DecodeService.health`.
  ``kernel="fused"`` swaps in the faster fused batch kernel
  (:mod:`repro.accel.fused`) and ``backend="process"`` isolates each
  shard's engine in a supervised child process
  (:mod:`repro.accel.procpool`), both bit-exact;
* :class:`ServeMetrics` / :class:`MetricsSnapshot` — counters and
  latency/occupancy statistics with a text report;
* :class:`LoadShedPolicy` and friends — the overload-degradation knob.

Quickstart::

    from repro.serve import DecodeService

    with DecodeService(code, batch_size=16) as service:
        futures = [service.submit(llrs) for llrs in traffic]
        results = [f.result().result for f in futures]
"""

from repro.serve.batch import BatchLayeredMinSumDecoder
from repro.serve.column import ColumnBatchLayeredMinSumDecoder
from repro.serve.engine import ContinuousBatchingEngine
from repro.serve.jobs import CompletedJob, DecodeJob
from repro.serve.metrics import MetricsSnapshot, ServeMetrics
from repro.serve.pool import DecodeService, ServiceHealth, ShardHealth
from repro.serve.shedding import LoadShedPolicy, NoShedPolicy, StepShedPolicy

__all__ = [
    "BatchLayeredMinSumDecoder",
    "ColumnBatchLayeredMinSumDecoder",
    "ContinuousBatchingEngine",
    "CompletedJob",
    "DecodeJob",
    "DecodeService",
    "LoadShedPolicy",
    "MetricsSnapshot",
    "NoShedPolicy",
    "ServeMetrics",
    "ServiceHealth",
    "ShardHealth",
    "StepShedPolicy",
]
