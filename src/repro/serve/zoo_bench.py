"""Zoo benchmark: per-code throughput and FER across the registry.

Shared by ``python -m repro zoo-bench`` and the perf gate so the CLI,
the advisory CI artifact, and the committed ``BENCH_zoo.json`` baseline
all measure the same thing: for each selected registry code, encoded
random payloads through an AWGN channel, decoded with
:func:`~repro.decoder.api.decode_many` on the chosen batch kernel and
schedule.  One row per registry id — the zoo analogue of the paper's
table 3, where the same architecture is re-timed per (z, rate) point.

Unlike the accel bench (five datapaths, one code), the zoo bench is one
datapath, many codes: its job is to keep the whole registry's serving
cost visible, so a regression localized to one family (say, the NR
extension rows) cannot hide behind the WiMAX case study.  ``mode`` in
each row is the registry id, which is exactly the routing key the
gateway uses — the throughput you see here is the throughput that id
gets behind :meth:`~repro.serve.pool.DecodeService.from_registry`.

FER is advisory (reported, never gated): a single Eb/N0 is applied to
every code, so high-rate codes legitimately show higher FER than the
rate-1/2 floor at the default operating point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel import AwgnChannel
from repro.decoder.api import decode_many
from repro.errors import ServeError
from repro.utils.provenance import bench_meta

__all__ = ["DEFAULT_ZOO_IDS", "run_zoo_bench"]

#: One representative per (family, operating point) — small enough for
#: CI, broad enough that every construction path (WiMAX floor/modulo
#: scaling, 802.11n tables, NR extension rows) gets timed.
DEFAULT_ZOO_IDS = (
    "wimax-r12-576",
    "wimax-r12-2304",
    "wimax-r56-2304",
    "wifi-r12-648",
    "wifi-r34-1944",
    "nr-bg1-z16",
    "nr-bg2-z32",
)


def _traffic(code, encoder, frames: int, ebno_db: float, seed: int):
    """Encoded random payloads through AWGN: ``(frames, n)`` LLRs."""
    rng = np.random.default_rng(seed)
    out = np.empty((frames, code.n), dtype=np.float64)
    for i in range(frames):
        message = rng.integers(0, 2, encoder.k).astype(np.uint8)
        codeword = encoder.encode(message)
        out[i] = AwgnChannel.from_ebno(ebno_db, code.rate, seed=rng).llrs(
            codeword
        )
    return out


def run_zoo_bench(
    code_ids: Optional[Sequence[str]] = None,
    frames: int = 32,
    ebno_db: float = 4.0,
    iterations: int = 10,
    fixed: bool = False,
    seed: int = 11,
    schedule: str = "row",
    registry: Optional[object] = None,
) -> Dict[str, object]:
    """Throughput/FER for each registry code; JSON-ready document.

    Each row carries ``mode`` (the registry id — so the perf gate's
    per-mode comparison machinery applies unchanged), ``frames_per_s``,
    ``time_s``, ``fer``, ``mean_iterations``, ``converged``, and the
    code's shape.  The run configuration is embedded under ``config``
    so the gate can re-run the identical measurement from the committed
    document alone.
    """
    if frames < 1:
        raise ServeError(f"frames must be >= 1, got {frames}")
    if registry is None:
        from repro.codes.registry import default_registry

        registry = default_registry()
    ids = list(code_ids) if code_ids else list(DEFAULT_ZOO_IDS)

    rows: List[Dict[str, object]] = []
    for code_id in ids:
        entry = registry.entry(code_id)  # UnknownCodeError on a bad id
        code = registry.get(code_id)
        encoder = registry.encoder(code_id)
        llrs = _traffic(code, encoder, frames, ebno_db, seed)

        # warm the plan cache outside the timed region, like a serving
        # process that built its plans at startup
        decode_many(code, llrs[:1], max_iterations=1, fixed=fixed,
                    schedule=schedule)
        t0 = time.perf_counter()
        batch = decode_many(
            code, llrs, max_iterations=iterations, fixed=fixed,
            schedule=schedule,
        )
        elapsed = time.perf_counter() - t0

        converged = int(np.count_nonzero(batch.converged))
        rows.append({
            "mode": code_id,
            "family": entry.family,
            "n": int(code.n),
            "k": int(code.k),
            "rate": round(float(code.rate), 6),
            "z": int(code.z),
            "frames": frames,
            "time_s": round(elapsed, 6),
            "frames_per_s": round(frames / elapsed, 3),
            "info_bits_per_s": round(frames * code.k / elapsed, 1),
            "converged": converged,
            "fer": round(1.0 - converged / frames, 6),
            "mean_iterations": round(
                float(np.mean(batch.iterations)), 3
            ),
        })

    doc = dict(bench_meta("zoo"))
    doc.update({
        "config": {
            "code_ids": ids,
            "frames": frames,
            "ebno_db": ebno_db,
            "iterations": iterations,
            "fixed": fixed,
            "seed": seed,
            "schedule": schedule,
        },
        "arithmetic": "fixed" if fixed else "float",
        "rows": rows,
    })
    return doc
