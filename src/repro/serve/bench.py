"""EXP-SERVE harness: serving throughput across decode surfaces.

:func:`run_serve_bench` is the library form of ``repro serve-bench``:
generate reproducible traffic, decode it frame-at-a-time, in static
batches, through the continuous-batching engine, and (optionally)
through a full :class:`~repro.serve.pool.DecodeService` with a chosen
backend, and return one JSON-ready report.  The CLI renders it; the
perf gate (:mod:`repro.obs.perfgate`) re-runs it against committed
``BENCH_serve.json`` baselines.

All modes decode the same frames with the same budgets, so converged
counts must agree — the report carries an ``agree`` flag the callers
turn into an exit code.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.channel import AwgnChannel
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import LayeredMinSumDecoder
from repro.encoder import RuEncoder
from repro.errors import ServeError
from repro.serve.batch import BatchLayeredMinSumDecoder
from repro.serve.engine import ContinuousBatchingEngine
from repro.serve.jobs import DecodeJob
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import DecodeService
from repro.utils.provenance import bench_meta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.obs.slo import SloMonitor
    from repro.obs.trace import TraceRecorder

__all__ = ["generate_serve_traffic", "run_serve_bench"]


def generate_serve_traffic(
    code: QCLDPCCode, frames: int, ebno_db: float, seed: int
) -> List[np.ndarray]:
    """Encoded random-payload AWGN LLR frames, reproducible per seed."""
    rng = np.random.default_rng(seed)
    encoder = RuEncoder(code)
    out: List[np.ndarray] = []
    for _ in range(frames):
        message = rng.integers(0, 2, encoder.k).astype(np.uint8)
        codeword = encoder.encode(message)
        channel = AwgnChannel.from_ebno(ebno_db, code.rate, seed=rng)
        out.append(channel.llrs(codeword))
    return out


def run_serve_bench(
    code: QCLDPCCode,
    frames: int = 64,
    batch: int = 16,
    ebno_db: float = 2.5,
    iterations: int = 10,
    fixed: bool = False,
    seed: int = 0,
    backend: Optional[str] = None,
    recorder: "Optional[TraceRecorder]" = None,
    log: "Optional[EventLog]" = None,
    slo: "Optional[SloMonitor]" = None,
) -> Dict[str, Any]:
    """Run the serving benchmark and return the report document.

    Parameters
    ----------
    code / frames / batch / ebno_db / iterations / fixed / seed:
        Traffic and decoder configuration (one traffic set is decoded
        by every mode).
    backend:
        ``None`` runs the three classic modes (per-frame loop, static
        batches, continuous batching).  ``"thread"`` or ``"process"``
        adds a fourth mode decoding the same traffic through a
        :class:`DecodeService` with that backend — the only mode that
        exercises queues, workers, and (for processes) the shared-memory
        IPC path.
    recorder / log / slo:
        Optional observability hooks, attached to the continuous
        engine and the service mode (this is how ``repro obs-report
        --backend process`` obtains a cross-process timeline).

    Returns
    -------
    dict
        Provenance header (``schema_version`` / ``bench`` / ``commit``),
        the run configuration, a ``modes`` list (name, time, frames/s,
        converged count, speedup vs the per-frame loop), the metrics
        registry snapshot, and the cross-mode ``agree`` flag.
    """
    if frames < 1:
        raise ServeError(f"frames must be >= 1, got {frames}")
    if batch < 1:
        raise ServeError(f"batch must be >= 1, got {batch}")
    if iterations < 1:
        raise ServeError(f"iterations must be >= 1, got {iterations}")
    if backend not in (None, "thread", "process"):
        raise ServeError(
            f"backend must be None, 'thread' or 'process', got {backend!r}"
        )

    traffic = generate_serve_traffic(code, frames, ebno_db, seed)
    llrs_2d = np.stack(traffic)
    modes: List[Dict[str, Any]] = []

    # mode 1: the pre-serve baseline, one decode() call per frame
    loop_decoder = LayeredMinSumDecoder(
        code, max_iterations=iterations, fixed=fixed
    )
    t0 = time.perf_counter()
    loop_results = [loop_decoder.decode(f) for f in traffic]
    t_loop = time.perf_counter() - t0
    loop_converged = int(sum(r.converged for r in loop_results))
    modes.append(_mode("frame-at-a-time", frames, t_loop, loop_converged, t_loop))

    # mode 2: static batches of `batch` frames through the batch kernel
    batch_decoder = BatchLayeredMinSumDecoder(
        code, max_iterations=iterations, fixed=fixed
    )
    t0 = time.perf_counter()
    batch_converged = 0
    for start in range(0, frames, batch):
        batch_converged += batch_decoder.decode(
            llrs_2d[start : start + batch]
        ).num_converged
    t_batch = time.perf_counter() - t0
    modes.append(
        _mode(f"static batch-{batch}", frames, t_batch, batch_converged, t_loop)
    )

    # mode 3: continuous batching (retired slots refilled mid-flight)
    metrics = ServeMetrics()
    engine = ContinuousBatchingEngine(
        code,
        batch_size=batch,
        max_iterations=iterations,
        fixed=fixed,
        metrics=metrics,
        recorder=recorder,
    )
    jobs = [DecodeJob(llrs=f) for f in traffic]
    t0 = time.perf_counter()
    engine_results = engine.run(jobs)
    t_engine = time.perf_counter() - t0
    engine_converged = int(sum(d.result.converged for d in engine_results))
    modes.append(
        _mode(
            f"continuous batch-{batch}", frames, t_engine, engine_converged,
            t_loop,
        )
    )

    converged_counts = {loop_converged, batch_converged, engine_converged}

    # mode 4 (optional): the full service with the requested backend
    if backend is not None:
        service = DecodeService(
            code,
            batch_size=batch,
            max_iterations=iterations,
            fixed=fixed,
            backend=backend,
            metrics=metrics,
            recorder=recorder,
            log=log,
            slo=slo,
        )
        t0 = time.perf_counter()
        try:
            futures = [service.submit(f, timeout=None) for f in traffic]
            service_converged = int(
                sum(f.result().result.converged for f in futures)
            )
        finally:
            service.close()
        t_service = time.perf_counter() - t0
        modes.append(
            _mode(
                f"service-{backend}", frames, t_service, service_converged,
                t_loop,
            )
        )
        converged_counts.add(service_converged)

    report = bench_meta("serve")
    report.update(
        {
            "code": code.name,
            "n": code.n,
            "z": code.z,
            "ebno_db": ebno_db,
            "frames": frames,
            "batch": batch,
            "max_iterations": iterations,
            "arithmetic": "fixed" if fixed else "float",
            "seed": seed,
            "backend": backend or "",
            "numpy": np.__version__,
            "modes": modes,
            "metrics": metrics.registry.to_dict(),
            "agree": len(converged_counts) == 1,
        }
    )
    return report


def _mode(
    name: str, frames: int, time_s: float, converged: int, t_loop: float
) -> Dict[str, Any]:
    return {
        "mode": name,
        "time_s": time_s,
        "frames_per_s": frames / time_s if time_s > 0 else 0.0,
        "converged": converged,
        "speedup_vs_per_frame": t_loop / time_s if time_s > 0 else 0.0,
    }
