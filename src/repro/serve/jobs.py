"""Job records flowing through the serving runtime.

A :class:`DecodeJob` is one frame of channel LLRs waiting for a decoder
slot; a :class:`CompletedJob` pairs the job with its
:class:`~repro.decoder.result.DecodeResult` and the latency split the
metrics layer aggregates.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.decoder.result import DecodeResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceContext

_JOB_IDS = itertools.count()


def _next_job_id() -> int:
    return next(_JOB_IDS)


@dataclass
class DecodeJob(object):
    """One frame awaiting decode.

    Attributes
    ----------
    llrs:
        Length-n channel LLRs.
    job_id:
        Monotonic id (auto-assigned; submission order within a process).
    code_key:
        Routing key for sharded services (e.g. the rate class); None
        means "the only shard".
    enqueued_at:
        ``time.monotonic()`` timestamp taken at construction, the start
        of the latency clock.
    deadline:
        Optional ``time.monotonic()`` instant after which the job is no
        longer worth decoding; a worker that dequeues an expired job
        fails it with :class:`~repro.errors.DeadlineExceededError`
        instead of spending decoder slots on it.
    max_retries:
        How many times the job may be re-admitted after a transient
        engine failure (:class:`~repro.errors.TransientDecodeError`).
    attempts:
        Re-admissions consumed so far (mutated by the worker).
    iteration_budget:
        Optional per-job iteration cap; ``None`` means the engine's
        configured budget.  The load-shedding policy lowers this under
        overload so the service degrades accuracy before availability.
    trace:
        Optional :class:`~repro.obs.trace.TraceContext` inherited from
        the submitter (ultimately the wire client); the worker loop
        records its queue-wait/decode spans under it so one distributed
        trace id spans client → gateway → shard → worker.
    dispatched_at:
        ``time.monotonic()`` instant a worker pulled the job off its
        shard queue (set by the worker loop; None until then).  The
        enqueue→dispatch delta is the queue-wait segment of the
        request waterfall.
    """

    llrs: np.ndarray
    job_id: int = field(default_factory=_next_job_id)
    code_key: Optional[str] = None
    enqueued_at: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None
    max_retries: int = 0
    attempts: int = 0
    iteration_budget: Optional[int] = None
    trace: "Optional[TraceContext]" = None
    dispatched_at: Optional[float] = None

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() > self.deadline


@dataclass
class CompletedJob(object):
    """A decoded frame with its latency accounting.

    Attributes
    ----------
    job:
        The originating :class:`DecodeJob`.
    result:
        The per-frame decode outcome.
    completed_at:
        ``time.monotonic()`` when the frame retired from its engine.
    """

    job: DecodeJob
    result: DecodeResult
    completed_at: float = field(default_factory=time.monotonic)

    @property
    def job_id(self) -> int:
        """The originating :class:`DecodeJob`'s id."""
        return self.job.job_id

    @property
    def latency_s(self) -> float:
        """Queue wait + decode time, in seconds."""
        return max(0.0, self.completed_at - self.job.enqueued_at)
