"""Sharded worker pool wrapping continuous-batching engines.

:class:`DecodeService` is the front door of the serving runtime: callers
submit frames (getting a future back) and a pool of worker threads — one
per code shard — drains bounded queues into per-shard
:class:`~repro.serve.engine.ContinuousBatchingEngine` instances.

Design points:

* **Per-rate sharding.**  Every configured code gets its own queue,
  worker, and engine, so mixed-rate traffic (à la CVR's continuously
  variable rate decoding) never fragments a batch: all frames sharing a
  slot matrix have the same length and layer structure.
* **Backpressure.**  Queues are bounded; ``submit`` either rejects
  immediately (:class:`~repro.errors.QueueFullError`) or waits up to a
  timeout (:class:`~repro.errors.ServeTimeoutError`), so overload is an
  explicit, typed signal rather than unbounded memory growth.
* **Threads, not processes.**  The hot loop is numpy over large arrays,
  which releases the GIL; threads keep results zero-copy and the
  service embeddable.  One engine per worker means no shared mutable
  decode state.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.errors import (
    QueueFullError,
    ServeError,
    ServeTimeoutError,
    ServiceClosedError,
)
from repro.serve.engine import ContinuousBatchingEngine
from repro.serve.jobs import CompletedJob, DecodeJob
from repro.serve.metrics import ServeMetrics

__all__ = ["DecodeService"]

_POLL_S = 0.05


class _Shard(object):
    """One code's queue + engine + worker thread."""

    def __init__(
        self,
        key: str,
        engine: ContinuousBatchingEngine,
        capacity: int,
    ) -> None:
        self.key = key
        self.engine = engine
        self.queue: "queue.Queue" = queue.Queue(maxsize=capacity)
        self.thread: Optional[threading.Thread] = None


class DecodeService(object):
    """Threaded decode service with per-rate sharding and backpressure.

    Parameters
    ----------
    codes:
        One :class:`QCLDPCCode` or a mapping ``{key: code}``; each entry
        becomes an independent shard.  For a single code the key is the
        code's name.
    batch_size:
        Slots per shard engine.
    max_iterations / fixed:
        Decoder configuration, shared by every shard.
    queue_capacity:
        Bound of each shard's admission queue (the backpressure knob).
    metrics:
        Optional shared :class:`ServeMetrics` (one is created if absent).
    autostart:
        Start worker threads immediately; with ``False`` the service
        accepts submissions (until queues fill) but decodes nothing
        until :meth:`start` — useful for tests and staged warm-up.
    """

    def __init__(
        self,
        codes: Union[QCLDPCCode, Mapping[str, QCLDPCCode]],
        batch_size: int = 16,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        fixed: bool = False,
        queue_capacity: int = 256,
        metrics: Optional[ServeMetrics] = None,
        autostart: bool = True,
    ) -> None:
        if queue_capacity < 1:
            raise ServeError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if isinstance(codes, QCLDPCCode):
            codes = {codes.name or "default": codes}
        if not codes:
            raise ServeError("DecodeService needs at least one code")
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._shards: Dict[str, _Shard] = {}
        self._length_index: Dict[int, List[str]] = {}
        for key, code in codes.items():
            engine = ContinuousBatchingEngine(
                code,
                batch_size=batch_size,
                max_iterations=max_iterations,
                fixed=fixed,
                metrics=self.metrics,
            )
            self._shards[key] = _Shard(key, engine, queue_capacity)
            self._length_index.setdefault(code.n, []).append(key)
        self._closing = threading.Event()
        self._started = False
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start one worker thread per shard (idempotent)."""
        if self._closing.is_set():
            raise ServiceClosedError("cannot start a closed service")
        if self._started:
            return
        for shard in self._shards.values():
            thread = threading.Thread(
                target=self._worker,
                args=(shard,),
                name=f"decode-worker-{shard.key}",
                daemon=True,
            )
            shard.thread = thread
            thread.start()
        self._started = True

    def close(self, wait: bool = True) -> None:
        """Stop accepting frames; drain queued and in-flight work.

        With ``wait=True`` blocks until every worker has retired its
        remaining frames and exited.
        """
        self._closing.set()
        if not self._started:
            # no worker will ever drain these; fail them explicitly
            for shard in self._shards.values():
                self._fail_queue(shard, ServiceClosedError("service closed"))
            return
        if wait:
            for shard in self._shards.values():
                if shard.thread is not None:
                    shard.thread.join()

    def __enter__(self) -> "DecodeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)

    @property
    def closed(self) -> bool:
        return self._closing.is_set()

    @property
    def shard_keys(self) -> List[str]:
        """Configured shard keys, in insertion order."""
        return list(self._shards)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        llrs: np.ndarray,
        code_key: Optional[str] = None,
        timeout: float = 0.0,
    ) -> "Future[CompletedJob]":
        """Enqueue one frame; returns a future of :class:`CompletedJob`.

        Parameters
        ----------
        llrs:
            Length-n channel LLRs for the target shard's code.
        code_key:
            Shard to route to; optional when the service has one shard
            or when the LLR length identifies the shard uniquely.
        timeout:
            Seconds to wait for queue space.  ``0`` rejects immediately
            with :class:`QueueFullError` when the shard queue is full; a
            positive value waits and raises :class:`ServeTimeoutError`
            on expiry.
        """
        if self._closing.is_set():
            self.metrics.frame_rejected()
            raise ServiceClosedError("service is closed to new frames")
        llrs = np.asarray(llrs, dtype=np.float64)
        shard = self._route(llrs, code_key)
        job = DecodeJob(llrs=llrs, code_key=shard.key)
        future: "Future[CompletedJob]" = Future()
        item = (job, future)
        try:
            if timeout > 0:
                shard.queue.put(item, timeout=timeout)
            else:
                shard.queue.put_nowait(item)
        except queue.Full:
            self.metrics.frame_rejected()
            if timeout > 0:
                raise ServeTimeoutError(
                    f"shard {shard.key!r}: no queue space within {timeout}s"
                ) from None
            raise QueueFullError(
                f"shard {shard.key!r}: queue full "
                f"({shard.queue.maxsize} frames waiting)"
            ) from None
        return future

    def decode(
        self,
        llrs: np.ndarray,
        code_key: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> CompletedJob:
        """Synchronous convenience: submit and wait for the result."""
        future = self.submit(llrs, code_key=code_key, timeout=timeout or 0.0)
        try:
            return future.result(timeout=timeout)
        except (FutureTimeoutError, TimeoutError):
            raise ServeTimeoutError(
                f"decode did not complete within {timeout}s"
            ) from None

    def _route(self, llrs: np.ndarray, code_key: Optional[str]) -> _Shard:
        if code_key is not None:
            shard = self._shards.get(code_key)
            if shard is None:
                raise ServeError(
                    f"unknown code_key {code_key!r}; have {self.shard_keys}"
                )
            return shard
        if len(self._shards) == 1:
            return next(iter(self._shards.values()))
        keys = self._length_index.get(llrs.shape[0] if llrs.ndim else -1)
        if keys is None or len(keys) != 1:
            raise ServeError(
                f"cannot route frame of length {llrs.shape}: pass code_key "
                f"(shards: {self.shard_keys})"
            )
        return self._shards[keys[0]]

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _worker(self, shard: _Shard) -> None:
        engine = shard.engine
        futures: Dict[int, Future] = {}
        while True:
            # admit as much queued work as fits into free slots
            while engine.free_slots > 0:
                block = engine.in_flight == 0
                try:
                    job, future = shard.queue.get(
                        timeout=_POLL_S if block else 0.0
                    )
                except queue.Empty:
                    break
                if not future.set_running_or_notify_cancel():
                    continue  # caller cancelled while queued
                try:
                    engine.admit(job)
                except Exception as exc:  # bad frame: fail just this job
                    future.set_exception(exc)
                    continue
                futures[job.job_id] = future
            if engine.in_flight == 0:
                if self._closing.is_set() and shard.queue.empty():
                    return
                continue
            try:
                for done in engine.step():
                    future = futures.pop(done.job_id, None)
                    if future is not None:
                        future.set_result(done)
            except Exception as exc:  # engine corrupted: fail in-flight work
                for future in futures.values():
                    if not future.done():
                        future.set_exception(exc)
                futures.clear()
                self._fail_queue(shard, exc)
                raise

    @staticmethod
    def _fail_queue(shard: _Shard, exc: Exception) -> None:
        while True:
            try:
                _job, future = shard.queue.get_nowait()
            except queue.Empty:
                return
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
