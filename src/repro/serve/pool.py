"""Sharded worker pool wrapping continuous-batching engines.

:class:`DecodeService` is the front door of the serving runtime: callers
submit frames (getting a future back) and a pool of worker threads — one
per code shard — drains bounded queues into per-shard
:class:`~repro.serve.engine.ContinuousBatchingEngine` instances.

Design points:

* **Per-rate sharding.**  Every configured code gets its own queue,
  worker, and engine, so mixed-rate traffic (à la CVR's continuously
  variable rate decoding) never fragments a batch: all frames sharing a
  slot matrix have the same length and layer structure.
* **Backpressure.**  Queues are bounded; ``submit`` either rejects
  immediately (:class:`~repro.errors.QueueFullError`) or waits up to a
  timeout (:class:`~repro.errors.ServeTimeoutError`), so overload is an
  explicit, typed signal rather than unbounded memory growth.
* **Supervision.**  Worker crashes fail every pending future fast with
  a typed error — nothing ever hangs — then the supervisor rebuilds the
  engine and restarts the loop under capped exponential backoff.  A
  shard that crashes ``max_strikes`` times without making progress is
  taken out of service: further submissions raise
  :class:`~repro.errors.ShardDeadError`.
* **Graceful degradation.**  A transient engine failure
  (:class:`~repro.errors.TransientDecodeError`, e.g. an injected fault)
  re-admits in-flight frames within their per-job retry budget instead
  of failing them; under overload the load-shedding policy lowers the
  iteration budget of newly admitted frames before backpressure starts
  rejecting outright; per-job deadlines stop the service from decoding
  frames nobody is waiting for anymore.
* **Elastic shard groups.**  Every configured code seeds a *group* of
  replica shards sharing one routing key; :meth:`DecodeService.add_shard`
  grows a group at runtime (the new worker starts immediately) and
  :meth:`DecodeService.remove_shard` shrinks it, draining queued and
  in-flight frames before the worker exits.  Submissions routed by
  group key (or by unique LLR length) land on the least-loaded healthy
  replica, so the SLO-driven autoscaler in :mod:`repro.net.autoscaler`
  can trade shards for latency without touching callers.
* **Threads by default, processes on request.**  The hot loop is numpy
  over large arrays, which releases the GIL; threads keep results
  zero-copy and the service embeddable, and one engine per worker means
  no shared mutable decode state.  ``backend="process"`` instead puts
  each shard's engine behind a worker process
  (:class:`~repro.accel.procpool.ProcessEngineProxy`, shared-memory LLR
  slots), trading per-frame IPC latency for hard fault isolation and —
  on multi-core hosts — true shard parallelism; supervision semantics
  (fail-fast futures, capped-backoff restarts, strike-out) are
  identical, with a killed worker process surfacing as
  :class:`~repro.errors.WorkerProcessError`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServeTimeoutError,
    ServiceClosedError,
    ShardDeadError,
    TransientDecodeError,
    UnknownCodeError,
)
from repro.serve.engine import ContinuousBatchingEngine
from repro.serve.jobs import CompletedJob, DecodeJob
from repro.serve.metrics import ServeMetrics
from repro.serve.shedding import LoadShedPolicy, StepShedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.obs.slo import SloMonitor, SloReport
    from repro.obs.trace import TraceContext, TraceRecorder

__all__ = ["DecodeService", "ServiceHealth", "ShardHealth"]

_POLL_S = 0.05

_Item = Tuple[DecodeJob, "Future[CompletedJob]"]

#: Severity assigned to each pool lifecycle event in the structured log.
_EVENT_LEVELS = {
    "pool.crash": "error",
    "pool.shard_dead": "error",
    "pool.restart": "warning",
    "pool.transient": "warning",
    "pool.expire": "warning",
    "pool.shed": "warning",
    "pool.enqueue": "debug",
    "pool.dispatch": "debug",
    "pool.shard_added": "info",
    "pool.shard_removed": "info",
    "pool.inject_crash": "warning",
}


@dataclass(frozen=True)
class ShardHealth(object):
    """Point-in-time health of one shard."""

    key: str
    alive: bool
    healthy: bool
    queue_depth: int
    queue_capacity: int
    in_flight: int
    restarts: int
    strikes: int
    last_error: Optional[str]
    group: str = ""

    @property
    def fill(self) -> float:
        """Queue fill fraction (0..1) of this shard."""
        if self.queue_capacity <= 0:
            return 0.0
        return min(1.0, self.queue_depth / self.queue_capacity)


@dataclass(frozen=True)
class ServiceHealth(object):
    """Point-in-time health of the whole service.

    ``slo`` carries the :class:`~repro.obs.slo.SloReport` of the
    service's SLO monitor evaluated at snapshot time (None when the
    service was built without one); ``status`` reflects shard liveness
    only, so an SLO breach degrades the report without flapping the
    routing-level health signal.
    """

    closed: bool
    shards: Dict[str, ShardHealth]
    slo: "Optional[SloReport]" = None

    @property
    def status(self) -> str:
        """``"ok"``, ``"degraded"`` (some shard down or striking), or
        ``"dead"`` (no shard can accept work)."""
        down = [s for s in self.shards.values() if not s.healthy]
        if len(down) == len(self.shards):
            return "dead"
        if down or any(s.strikes > 0 for s in self.shards.values()):
            return "degraded"
        return "ok"


class _Shard(object):
    """One replica's queue + engine + supervised worker thread."""

    def __init__(
        self,
        key: str,
        make_engine: Callable[[], ContinuousBatchingEngine],
        capacity: int,
        group: str = "",
    ) -> None:
        self.key = key
        self.group = group or key
        self.make_engine = make_engine
        self.engine = make_engine()
        self.queue: "queue.Queue[_Item]" = queue.Queue(maxsize=capacity)
        self.thread: Optional[threading.Thread] = None
        # in-flight work, owned by the worker/supervisor thread
        self.futures: Dict[int, _Item] = {}
        self.healthy = True
        self.restarts = 0
        self.strikes = 0
        self.last_error: Optional[BaseException] = None
        # runtime removal: drained workers exit when this is set
        self.stopping = threading.Event()
        # chaos hook: the worker raises this at its next loop turn
        self.crash_next: Optional[BaseException] = None

    @property
    def load(self) -> int:
        """Queued + in-flight frames (the replica-routing load signal)."""
        return self.queue.qsize() + self.engine.in_flight


class DecodeService(object):
    """Threaded decode service with sharding, backpressure, and self-healing.

    Parameters
    ----------
    codes:
        One :class:`QCLDPCCode` or a mapping ``{key: code}``; each entry
        becomes an independent shard.  For a single code the key is the
        code's name.
    batch_size:
        Slots per shard engine.
    max_iterations / fixed:
        Decoder configuration, shared by every shard.
    backend:
        ``"thread"`` (default) runs each shard's engine in-process on
        the worker thread; ``"process"`` puts it behind a spawned worker
        process (:class:`~repro.accel.procpool.ProcessEngineProxy`) with
        shared-memory LLR slots — same bit-exact results and the same
        supervision semantics, plus hard fault isolation.
    kernel:
        ``"batch"``, ``"fused"``, or ``"column"`` — which batch kernel
        the shard engines run (``batch``/``fused`` are bit-exact with
        the per-frame row-layered decoder, see :mod:`repro.accel.fused`;
        ``column`` runs the column-layered schedule of
        :mod:`repro.serve.column`).
    queue_capacity:
        Bound of each shard's admission queue (the backpressure knob).
    metrics:
        Optional shared :class:`ServeMetrics` (one is created if absent).
    autostart:
        Start worker threads immediately; with ``False`` the service
        accepts submissions (until queues fill) but decodes nothing
        until :meth:`start` — useful for tests and staged warm-up.
    shed_policy:
        Load-shedding policy mapping queue fill to iteration budget
        (default: :class:`~repro.serve.shedding.StepShedPolicy`, which
        sheds only above 75 % fill; pass
        :class:`~repro.serve.shedding.NoShedPolicy` to disable).
    default_max_retries:
        Retry budget given to jobs whose ``submit`` call does not
        specify one: how many times a frame is re-admitted after a
        transient engine failure before its future fails.
    max_strikes:
        Consecutive worker crashes (without a successful engine step in
        between) before a shard is marked unhealthy and taken out of
        service.
    restart_backoff_s / restart_backoff_cap_s:
        Initial and maximum supervisor backoff between worker restarts
        (doubled per consecutive crash).
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder` shared by the
        service and every shard engine: the pool emits
        ``pool.enqueue`` / ``pool.dispatch`` / ``pool.expire`` /
        ``pool.shed`` / ``pool.crash`` / ``pool.restart`` /
        ``pool.shard_dead`` events and the engines their slot-level
        spans/events, giving one timeline for the whole service.  With
        ``backend="process"`` the recorder is handed to each shard
        proxy, which merges the child's spans back in shard-labelled
        and clock-offset-corrected, so the timeline stays coherent
        across the process boundary.
    log:
        Optional :class:`~repro.obs.log.EventLog`: every pool lifecycle
        event is also written as a levelled structured record (crashes
        and strike-outs at ``error``, restarts/expiries/sheds at
        ``warning``, enqueue/dispatch chatter at ``debug``), and
        process-backend shards publish their spawn/shutdown/death
        lifecycle plus child-shipped records into it.
    slo:
        Optional :class:`~repro.obs.slo.SloMonitor`; when given,
        :meth:`health` evaluates it against the service's metrics
        registry and attaches the report to :class:`ServiceHealth`.
    """

    def __init__(
        self,
        codes: Union[QCLDPCCode, Mapping[str, QCLDPCCode]],
        batch_size: int = 16,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        fixed: bool = False,
        backend: str = "thread",
        kernel: str = "batch",
        queue_capacity: int = 256,
        metrics: Optional[ServeMetrics] = None,
        autostart: bool = True,
        shed_policy: Optional[LoadShedPolicy] = None,
        default_max_retries: int = 1,
        max_strikes: int = 3,
        restart_backoff_s: float = 0.1,
        restart_backoff_cap_s: float = 2.0,
        recorder: "Optional[TraceRecorder]" = None,
        log: "Optional[EventLog]" = None,
        slo: "Optional[SloMonitor]" = None,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ServeError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if kernel not in ("batch", "fused", "column"):
            raise ServeError(
                f"kernel must be 'batch', 'fused', or 'column', got {kernel!r}"
            )
        if queue_capacity < 1:
            raise ServeError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if default_max_retries < 0:
            raise ServeError(
                f"default_max_retries must be >= 0, got {default_max_retries}"
            )
        if max_strikes < 1:
            raise ServeError(f"max_strikes must be >= 1, got {max_strikes}")
        if restart_backoff_s <= 0 or restart_backoff_cap_s < restart_backoff_s:
            raise ServeError(
                "need 0 < restart_backoff_s <= restart_backoff_cap_s, got "
                f"{restart_backoff_s} / {restart_backoff_cap_s}"
            )
        if isinstance(codes, QCLDPCCode):
            codes = {codes.name or "default": codes}
        if not codes:
            raise ServeError("DecodeService needs at least one code")
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.recorder = recorder
        self.log = log
        self.slo = slo
        self.backend = backend
        self.kernel = kernel
        self.max_iterations = max_iterations
        self.shed_policy = shed_policy if shed_policy is not None else StepShedPolicy()
        self.default_max_retries = default_max_retries
        self.max_strikes = max_strikes
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_cap_s = restart_backoff_cap_s
        self.batch_size = batch_size
        self.fixed = fixed
        self.queue_capacity = queue_capacity
        #: Registry ids this service was built from (see from_registry).
        self.registry_ids: Tuple[str, ...] = ()
        self._shards: Dict[str, _Shard] = {}
        self._length_index: Dict[int, List[str]] = {}
        self._groups: Dict[str, List[str]] = {}
        self._group_codes: Dict[str, QCLDPCCode] = {}
        self._replica_seq: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._shard_gauge = self.metrics.registry.gauge(
            "serve_shards", "live shards per group", label_names=("group",)
        )
        for key, code in codes.items():
            make_engine = self._engine_factory(
                key, code, batch_size, max_iterations, fixed
            )
            self._shards[key] = _Shard(key, make_engine, queue_capacity,
                                       group=key)
            self._length_index.setdefault(code.n, []).append(key)
            self._groups[key] = [key]
            self._group_codes[key] = code
            self._replica_seq[key] = 0
            self._shard_gauge.set(1, group=key)
        self._closing = threading.Event()
        self._started = False
        if autostart:
            self.start()

    def _engine_factory(
        self,
        key: str,
        code: QCLDPCCode,
        batch_size: int,
        max_iterations: int,
        fixed: bool,
    ) -> Callable[[], ContinuousBatchingEngine]:
        if self.backend == "process":
            def make() -> ContinuousBatchingEngine:
                from repro.accel.procpool import ProcessEngineProxy

                return ProcessEngineProxy(
                    code,
                    batch_size=batch_size,
                    max_iterations=max_iterations,
                    fixed=fixed,
                    kernel=self.kernel,
                    metrics=self.metrics,
                    recorder=self.recorder,
                    log=self.log,
                    label=key,
                )
        else:
            def make() -> ContinuousBatchingEngine:
                return ContinuousBatchingEngine(
                    code,
                    batch_size=batch_size,
                    max_iterations=max_iterations,
                    fixed=fixed,
                    kernel=self.kernel,
                    metrics=self.metrics,
                    recorder=self.recorder,
                )

        return make

    @classmethod
    def from_registry(
        cls,
        code_ids: Sequence[str],
        registry: Optional[object] = None,
        warm_plans: bool = True,
        **kwargs: object,
    ) -> "DecodeService":
        """Host a set of registry codes, one shard group per id.

        ``code_ids`` are ids from a :class:`~repro.codes.registry.CodeRegistry`
        (default: the process-wide zoo from
        :func:`~repro.codes.registry.default_registry`); unknown ids
        raise :class:`~repro.errors.UnknownCodeError` before any shard
        is built.  Shard groups are keyed by registry id, so the same
        string a remote client puts in the net protocol's ``code_id``
        field routes frames here — rate-aware routing across the whole
        zoo, even when several codes share a frame length.  With
        ``warm_plans`` (default) each code's :class:`~repro.accel.plan.CodePlan`
        is built into the process-global plan cache up front, so the
        first frame of every code hits a warm cache instead of paying
        plan construction on the serving path.
        """
        if registry is None:
            from repro.codes.registry import default_registry

            registry = default_registry()
        ids = list(code_ids)
        if not ids:
            raise ServeError("from_registry needs at least one code id")
        codes = {code_id: registry.get(code_id) for code_id in ids}
        if warm_plans:
            from repro.accel.plan import get_plan

            for code in codes.values():
                get_plan(code)
        service = cls(codes, **kwargs)
        service.registry_ids = tuple(ids)
        return service

    @staticmethod
    def _close_engine(engine: object) -> None:
        """Release engine-held resources, if the backend holds any.

        Thread-backend engines are plain objects (nothing to do);
        process-backend proxies own a child process and two queues that
        must be torn down whenever an engine is discarded — on clean
        worker exit, before a crash rebuild, and at shard strike-out.
        """
        shutdown = getattr(engine, "shutdown", None)
        if shutdown is not None:
            try:
                shutdown()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start one supervised worker thread per shard (idempotent)."""
        if self._closing.is_set():
            raise ServiceClosedError("cannot start a closed service")
        if self._started:
            return
        for shard in self._shards.values():
            self._start_worker(shard)
        self._started = True

    def _start_worker(self, shard: _Shard) -> None:
        thread = threading.Thread(
            target=self._supervise,
            args=(shard,),
            name=f"decode-worker-{shard.key}",
            daemon=True,
        )
        shard.thread = thread
        thread.start()

    def close(self, wait: bool = True) -> None:
        """Stop accepting frames; drain queued and in-flight work.

        With ``wait=True`` blocks until every worker has retired its
        remaining frames and exited; with ``wait=False`` returns
        immediately while the daemon workers finish draining in the
        background (their futures still resolve).  Safe to call more
        than once.
        """
        self._closing.set()
        if not self._started:
            # no worker will ever drain these; fail them explicitly
            for shard in self._shards.values():
                self._fail_queue(shard, ServiceClosedError("service closed"))
                self._close_engine(shard.engine)
            return
        if wait:
            for shard in self._shards.values():
                if shard.thread is not None:
                    shard.thread.join()

    def __enter__(self) -> "DecodeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun; submissions are refused."""
        return self._closing.is_set()

    @property
    def shard_keys(self) -> List[str]:
        """Configured shard keys, in insertion order."""
        return list(self._shards)

    @property
    def groups(self) -> Dict[str, List[str]]:
        """Replica-group membership: ``{group: [shard keys]}`` (a copy)."""
        with self._lock:
            return {g: list(keys) for g, keys in self._groups.items()}

    def group_size(self, group: str) -> int:
        """Live replica count of ``group`` (0 for an unknown group)."""
        with self._lock:
            return len(self._groups.get(group, ()))

    # ------------------------------------------------------------------
    # elastic shard pool (the autoscaler surface)
    # ------------------------------------------------------------------
    def add_shard(self, group: Optional[str] = None) -> str:
        """Grow a replica group by one shard; returns the new shard key.

        The new shard decodes the group's code with the service-wide
        engine configuration and (on a started service) begins draining
        work immediately.  With one configured code ``group`` may be
        omitted.  Replica keys are ``<group>#<seq>`` with a monotonic
        per-group sequence, so a key is never reused.
        """
        if self._closing.is_set():
            raise ServiceClosedError("cannot add shards to a closed service")
        with self._lock:
            if group is None:
                if len(self._groups) != 1:
                    raise ServeError(
                        f"service has {len(self._groups)} groups; pass one of "
                        f"{list(self._groups)}"
                    )
                group = next(iter(self._groups))
            code = self._group_codes.get(group)
            if code is None:
                raise ServeError(
                    f"unknown shard group {group!r}; have {list(self._groups)}"
                )
            self._replica_seq[group] += 1
            key = f"{group}#{self._replica_seq[group]}"
            make_engine = self._engine_factory(
                key, code, self.batch_size, self.max_iterations, self.fixed
            )
            shard = _Shard(key, make_engine, self.queue_capacity, group=group)
            self._shards[key] = shard
            self._groups[group].append(key)
            self._length_index.setdefault(code.n, []).append(key)
            self._shard_gauge.set(len(self._groups[group]), group=group)
        if self._started:
            self._start_worker(shard)
        self._event("pool.shard_added", shard=key, group=group,
                    replicas=self.group_size(group))
        return key

    def remove_shard(
        self,
        key: Optional[str] = None,
        group: Optional[str] = None,
        drain: bool = True,
        timeout: Optional[float] = None,
    ) -> str:
        """Shrink the pool by one shard; returns the removed shard key.

        Pass either an explicit shard ``key`` or a ``group`` (the most
        recently added replica is removed).  The last replica of a group
        cannot be removed — a group must always be routable.

        With ``drain=True`` (default) the shard stops accepting new
        frames, finishes its queued and in-flight work, and its worker
        exits cleanly before the shard is dropped (bounded by
        ``timeout`` seconds when given).  With ``drain=False`` queued
        frames fail fast with :class:`~repro.errors.ShardDeadError`;
        in-flight frames still retire.  Dead (struck-out) shards can be
        removed regardless of replica count via ``key``.
        """
        with self._lock:
            shard = self._resolve_removal(key, group)
            members = self._groups[shard.group]
            if len(members) <= 1 and shard.healthy:
                raise ServeError(
                    f"cannot remove {shard.key!r}: it is the last replica of "
                    f"group {shard.group!r}"
                )
            shard.stopping.set()
        if not drain:
            self._fail_queue(
                shard,
                ShardDeadError(f"shard {shard.key!r} removed without drain"),
            )
        thread = shard.thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            if thread.is_alive():
                raise ServeTimeoutError(
                    f"shard {shard.key!r} did not drain within {timeout}s"
                )
        else:
            # never started (or already dead): nothing will drain the queue
            self._fail_queue(
                shard, ShardDeadError(f"shard {shard.key!r} removed")
            )
            self._close_engine(shard.engine)
        with self._lock:
            self._shards.pop(shard.key, None)
            members = self._groups.get(shard.group, [])
            if shard.key in members:
                members.remove(shard.key)
            length_keys = self._length_index.get(
                self._group_codes[shard.group].n, []
            )
            if shard.key in length_keys:
                length_keys.remove(shard.key)
            self._shard_gauge.set(len(members), group=shard.group)
        self._event("pool.shard_removed", shard=shard.key, group=shard.group,
                    replicas=self.group_size(shard.group), drained=drain)
        return shard.key

    def _resolve_removal(
        self, key: Optional[str], group: Optional[str]
    ) -> _Shard:
        """Pick the shard to remove (caller holds the lock)."""
        if key is not None:
            shard = self._shards.get(key)
            if shard is None:
                raise ServeError(
                    f"unknown shard key {key!r}; have {list(self._shards)}"
                )
            return shard
        if group is None:
            if len(self._groups) != 1:
                raise ServeError(
                    f"service has {len(self._groups)} groups; pass one of "
                    f"{list(self._groups)}"
                )
            group = next(iter(self._groups))
        members = self._groups.get(group)
        if not members:
            raise ServeError(
                f"unknown shard group {group!r}; have {list(self._groups)}"
            )
        return self._shards[members[-1]]

    def queue_fill(self, code_key: Optional[str] = None) -> float:
        """Mean queue fill (0..1) across the routed shards.

        ``code_key`` may be a group name or a shard key; ``None`` means
        every shard.  The gateway's admission layer feeds this into the
        load-shedding policy, so remote traffic sees the same degrade-
        before-reject behaviour as in-process callers.
        """
        with self._lock:
            if code_key is None:
                shards = list(self._shards.values())
            elif code_key in self._groups:
                shards = [self._shards[k] for k in self._groups[code_key]]
            elif code_key in self._shards:
                shards = [self._shards[code_key]]
            else:
                raise UnknownCodeError(
                    f"unknown code_key {code_key!r}; have {self.shard_keys}"
                )
        fills = [
            s.queue.qsize() / s.queue.maxsize
            for s in shards
            if s.queue.maxsize > 0 and not s.stopping.is_set()
        ]
        if not fills:
            return 1.0  # nothing routable: report saturated
        return float(sum(fills)) / len(fills)

    def inject_worker_crash(
        self, key: Optional[str] = None, exc: Optional[BaseException] = None
    ) -> str:
        """Chaos hook: make one shard's worker raise at its next turn.

        The crash takes the real supervision path — pending futures fail
        fast, the engine is rebuilt, the supervisor restarts the worker
        under backoff — exactly as an organic crash would.  Used by the
        soak harness and resilience tests; returns the targeted key.
        """
        with self._lock:
            if key is None:
                candidates = [
                    s for s in self._shards.values()
                    if s.healthy and not s.stopping.is_set()
                ]
                if not candidates:
                    raise ServeError("no healthy shard to crash")
                shard = max(candidates, key=lambda s: s.load)
            else:
                shard = self._shards.get(key)
                if shard is None:
                    raise ServeError(
                        f"unknown shard key {key!r}; have {list(self._shards)}"
                    )
            shard.crash_next = exc or RuntimeError(
                f"injected worker crash (shard {shard.key!r})"
            )
        self._event("pool.inject_crash", shard=shard.key)
        return shard.key

    def health(self) -> ServiceHealth:
        """Snapshot of every shard's liveness, load, and crash history."""
        shards = {}
        with self._lock:
            live = list(self._shards.values())
        for shard in live:
            thread = shard.thread
            alive = thread is not None and thread.is_alive()
            shards[shard.key] = ShardHealth(
                key=shard.key,
                alive=alive,
                healthy=shard.healthy and (alive or not self._started),
                queue_depth=shard.queue.qsize(),
                queue_capacity=shard.queue.maxsize,
                in_flight=shard.engine.in_flight,
                restarts=shard.restarts,
                strikes=shard.strikes,
                last_error=repr(shard.last_error) if shard.last_error else None,
                group=shard.group,
            )
        slo_report = (
            self.slo.evaluate(self.metrics.registry)
            if self.slo is not None else None
        )
        return ServiceHealth(closed=self.closed, shards=shards, slo=slo_report)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        llrs: np.ndarray,
        code_key: Optional[str] = None,
        timeout: Optional[float] = 0.0,
        deadline_s: Optional[float] = None,
        max_retries: Optional[int] = None,
        iteration_budget: Optional[int] = None,
        trace: "Optional[TraceContext]" = None,
    ) -> "Future[CompletedJob]":
        """Enqueue one frame; returns a future of :class:`CompletedJob`.

        Parameters
        ----------
        llrs:
            Length-n channel LLRs for the target shard's code.
        code_key:
            Group or shard to route to; optional when the service has
            one group or when the LLR length identifies the group
            uniquely.  A group key lands on its least-loaded healthy
            replica.
        timeout:
            Seconds to wait for queue space.  ``0`` rejects immediately
            with :class:`QueueFullError` when the shard queue is full; a
            positive value waits and raises :class:`ServeTimeoutError`
            on expiry; ``None`` blocks until space is available.
        deadline_s:
            Optional per-job deadline, in seconds from now: if the frame
            is still queued when it expires, its future fails with
            :class:`DeadlineExceededError` instead of occupying a slot.
        max_retries:
            Override of the service's ``default_max_retries`` transient
            retry budget for this job.
        iteration_budget:
            Optional caller-imposed iteration cap (e.g. a gateway
            priority class); the effective budget is the tighter of this
            and the load-shedding policy's.
        trace:
            Optional distributed :class:`~repro.obs.trace.TraceContext`
            (trace id + parent span id).  The worker loop records the
            job's queue-wait and decode segments as spans under that
            parent, so a gateway-submitted frame shows up in the same
            Chrome trace as its wire request.
        """
        if self._closing.is_set():
            self.metrics.frame_rejected()
            raise ServiceClosedError("service is closed to new frames")
        llrs = np.asarray(llrs, dtype=np.float64)
        shard = self._route(llrs, code_key)
        self._check_shard_alive(shard)
        shed = self._shed_budget(shard)
        if iteration_budget is not None:
            shed = (
                min(shed, int(iteration_budget)) if shed is not None
                else min(int(iteration_budget), self.max_iterations)
            )
        job = DecodeJob(
            llrs=llrs,
            code_key=shard.key,
            deadline=(
                time.monotonic() + deadline_s if deadline_s is not None else None
            ),
            max_retries=(
                self.default_max_retries if max_retries is None else max_retries
            ),
            iteration_budget=shed,
            trace=trace,
        )
        future: "Future[CompletedJob]" = Future()
        item = (job, future)
        try:
            if timeout is None:
                shard.queue.put(item)
            elif timeout > 0:
                shard.queue.put(item, timeout=timeout)
            else:
                shard.queue.put_nowait(item)
        except queue.Full:
            self.metrics.frame_rejected()
            if timeout:
                raise ServeTimeoutError(
                    f"shard {shard.key!r}: no queue space within {timeout}s"
                ) from None
            raise QueueFullError(
                f"shard {shard.key!r}: queue full "
                f"({shard.queue.maxsize} frames waiting)"
            ) from None
        self._event("pool.enqueue", shard=shard.key, job=job.job_id)
        if not shard.healthy:
            # the shard died between the liveness check and the enqueue;
            # its final drain may have missed this item, so fail it here
            # (first resolution wins — double handling is harmless)
            self._fail_future(
                future, ShardDeadError(f"shard {shard.key!r} is out of service")
            )
            raise ShardDeadError(f"shard {shard.key!r} is out of service")
        return future

    def decode(
        self,
        llrs: np.ndarray,
        code_key: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> CompletedJob:
        """Synchronous convenience: submit and wait for the result.

        ``timeout=None`` (the default) means *wait as long as it takes*:
        block for queue space under backpressure, then block until the
        result arrives.  A positive timeout bounds each stage and raises
        :class:`ServeTimeoutError` on expiry.
        """
        future = self.submit(llrs, code_key=code_key, timeout=timeout)
        try:
            return future.result(timeout=timeout)
        except (FutureTimeoutError, TimeoutError):
            future.cancel()
            raise ServeTimeoutError(
                f"decode did not complete within {timeout}s"
            ) from None

    def _event(self, name: str, **labels: object) -> None:
        if self.recorder is not None:
            self.recorder.event(name, **labels)
        if self.log is not None:
            self.log.log(_EVENT_LEVELS.get(name, "info"), name, **labels)

    # ------------------------------------------------------------------
    # distributed-trace spans
    # ------------------------------------------------------------------
    def _trace_queue_wait(self, shard: _Shard, job: DecodeJob) -> None:
        """Record the enqueue→dispatch wait as a span under the job's trace."""
        rec = self.recorder
        if rec is None or not rec.enabled or job.trace is None:
            return
        if job.dispatched_at is None:  # pragma: no cover - set by caller
            return
        wait_s = max(0.0, job.dispatched_at - job.enqueued_at)
        rec.complete(
            "pool.queue_wait",
            time.perf_counter() - wait_s,
            parent_id=job.trace.span_id,
            trace=job.trace.trace_id,
            job=job.job_id,
            shard=shard.key,
        )

    def _trace_decode(self, shard: _Shard, done: CompletedJob) -> None:
        """Record the dispatch→retire decode segment under the job's trace."""
        rec = self.recorder
        job = done.job
        if rec is None or not rec.enabled or job.trace is None:
            return
        start = job.dispatched_at
        if start is None:
            start = job.enqueued_at
        decode_s = max(0.0, done.completed_at - start)
        rec.complete(
            "job.decode",
            time.perf_counter() - decode_s,
            parent_id=job.trace.span_id,
            trace=job.trace.trace_id,
            job=job.job_id,
            shard=shard.key,
            converged=done.result.converged,
            iterations=done.result.iterations,
        )

    def _check_shard_alive(self, shard: _Shard) -> None:
        if shard.stopping.is_set():
            raise ShardDeadError(
                f"shard {shard.key!r} is draining for removal"
            )
        if not shard.healthy:
            raise ShardDeadError(
                f"shard {shard.key!r} is out of service after "
                f"{shard.strikes} crashes (last: {shard.last_error!r})"
            )
        if self._started and (
            shard.thread is None or not shard.thread.is_alive()
        ):
            raise ShardDeadError(
                f"shard {shard.key!r}: worker thread is dead; "
                "nothing will ever drain this queue"
            )

    def _shed_budget(self, shard: _Shard) -> Optional[int]:
        """Iteration budget under the shed policy (None = full budget)."""
        capacity = shard.queue.maxsize
        fill = shard.queue.qsize() / capacity if capacity > 0 else 0.0
        budget = self.shed_policy.budget(fill, self.max_iterations)
        if budget >= self.max_iterations:
            return None
        self.metrics.frame_shed()
        self._event("pool.shed", shard=shard.key, budget=budget,
                    fill=round(fill, 3))
        return budget

    def _route(self, llrs: np.ndarray, code_key: Optional[str]) -> _Shard:
        with self._lock:
            if code_key is not None:
                members = self._groups.get(code_key)
                if members is not None:
                    return self._pick_replica(members, code_key)
                shard = self._shards.get(code_key)
                if shard is None:
                    raise UnknownCodeError(
                        f"unknown code_key {code_key!r}; have {self.shard_keys}"
                    )
                return shard
            if len(self._groups) == 1:
                group = next(iter(self._groups))
                return self._pick_replica(self._groups[group], group)
            keys = self._length_index.get(llrs.shape[0] if llrs.ndim else -1)
            groups = {self._shards[k].group for k in (keys or ())}
            if not groups or len(groups) != 1:
                raise ServeError(
                    f"cannot route frame of length {llrs.shape}: pass code_key "
                    f"(shards: {self.shard_keys})"
                )
            group = groups.pop()
            return self._pick_replica(self._groups[group], group)

    def _pick_replica(self, members: List[str], group: str) -> _Shard:
        """Least-loaded routable replica (caller holds the lock)."""
        shards = [self._shards[k] for k in members]
        routable = [
            s for s in shards if s.healthy and not s.stopping.is_set()
        ]
        if not routable:
            # every replica is dead or draining: return one so the
            # caller's liveness check raises the canonical typed error
            return shards[-1]
        return min(routable, key=lambda s: s.load)

    # ------------------------------------------------------------------
    # worker loop + supervision
    # ------------------------------------------------------------------
    def _supervise(self, shard: _Shard) -> None:
        """Run the worker loop, restarting it on crashes with backoff."""
        backoff = self.restart_backoff_s
        while True:
            try:
                self._worker_loop(shard)
                self._close_engine(shard.engine)
                return  # clean exit: service closed and shard drained
            except Exception as exc:  # worker crash
                shard.strikes += 1
                shard.last_error = exc
                self.metrics.worker_crashed()
                self._event("pool.crash", shard=shard.key, error=repr(exc),
                            strikes=shard.strikes)
                # fail-fast: every pending future resolves *now* with a
                # typed error instead of hanging on a dead worker
                self._fail_in_flight(shard, exc)
                self._fail_queue(shard, exc)
                self._close_engine(shard.engine)
                shard.engine = shard.make_engine()
                if shard.stopping.is_set():
                    # crashed while draining for removal: don't restart,
                    # just make sure nothing is left hanging
                    self._fail_queue(
                        shard,
                        ShardDeadError(
                            f"shard {shard.key!r} crashed while draining"
                        ),
                    )
                    self._close_engine(shard.engine)
                    return
                if shard.strikes >= self.max_strikes:
                    shard.healthy = False
                    self._event("pool.shard_dead", shard=shard.key,
                                strikes=shard.strikes)
                    # final drain: catch items that raced the flag flip
                    self._fail_queue(
                        shard,
                        ShardDeadError(
                            f"shard {shard.key!r} disabled after "
                            f"{shard.strikes} consecutive crashes"
                        ),
                    )
                    self._close_engine(shard.engine)
                    return
                if self._closing.wait(backoff):
                    # closing: skip the rest of the backoff and make one
                    # final drain pass so close(wait=True) never hangs
                    pass
                backoff = min(backoff * 2.0, self.restart_backoff_cap_s)
                shard.restarts += 1
                self.metrics.worker_restarted()
                self._event("pool.restart", shard=shard.key,
                            restarts=shard.restarts)

    def _worker_loop(self, shard: _Shard) -> None:
        while True:
            if shard.crash_next is not None:
                exc, shard.crash_next = shard.crash_next, None
                raise exc
            engine = shard.engine
            # admit as much queued work as fits into free slots
            while engine.free_slots > 0:
                block = engine.in_flight == 0
                try:
                    job, future = shard.queue.get(
                        timeout=_POLL_S if block else 0.0
                    )
                except queue.Empty:
                    break
                if not future.set_running_or_notify_cancel():
                    continue  # caller cancelled while queued
                if job.expired:
                    self.metrics.frame_expired()
                    self.metrics.frame_errored()
                    self._event("pool.expire", shard=shard.key,
                                job=job.job_id)
                    future.set_exception(
                        DeadlineExceededError(
                            f"job {job.job_id}: deadline passed after "
                            f"{time.monotonic() - job.enqueued_at:.3f}s in queue"
                        )
                    )
                    continue
                try:
                    engine.admit(job)
                except Exception as exc:  # bad frame: fail just this job
                    self.metrics.frame_errored()
                    future.set_exception(exc)
                    continue
                job.dispatched_at = time.monotonic()
                self._event("pool.dispatch", shard=shard.key, job=job.job_id)
                self._trace_queue_wait(shard, job)
                shard.futures[job.job_id] = (job, future)
            if engine.in_flight == 0:
                if (
                    (self._closing.is_set() or shard.stopping.is_set())
                    and shard.queue.empty()
                ):
                    return
                continue
            try:
                completed = engine.step()
                for done in completed:
                    item = shard.futures.pop(done.job_id, None)
                    if item is not None:
                        self._trace_decode(shard, done)
                        item[1].set_result(done)
                if completed:
                    # forward progress (frames actually retired): clear
                    # the consecutive-crash counter.  Empty steps don't
                    # count — a process backend polls emptily while its
                    # child computes (or is dead), and resetting there
                    # would defeat the strike-out.
                    shard.strikes = 0
            except TransientDecodeError as exc:
                # recoverable corruption: rebuild the engine and retry
                # in-flight frames within their budget
                self._recover_transient(shard, exc)

    def _recover_transient(self, shard: _Shard, exc: Exception) -> None:
        shard.last_error = exc
        self._event("pool.transient", shard=shard.key, error=repr(exc))
        self._close_engine(shard.engine)
        shard.engine = shard.make_engine()
        survivors: Dict[int, _Item] = {}
        for job_id, (job, future) in shard.futures.items():
            if job.attempts < job.max_retries and not job.expired:
                job.attempts += 1
                self.metrics.frame_retried()
                try:
                    shard.engine.admit(job)
                except Exception as admit_exc:
                    self.metrics.frame_errored()
                    future.set_exception(admit_exc)
                else:
                    survivors[job_id] = (job, future)
            else:
                self.metrics.frame_errored()
                future.set_exception(exc)
        shard.futures = survivors

    def _fail_in_flight(self, shard: _Shard, exc: Exception) -> None:
        for _job, future in shard.futures.values():
            try:
                future.set_exception(exc)
                self.metrics.frame_errored()
            except InvalidStateError:
                pass  # already resolved
        shard.futures.clear()

    def _fail_queue(self, shard: _Shard, exc: Exception) -> None:
        while True:
            try:
                _job, future = shard.queue.get_nowait()
            except queue.Empty:
                return
            self._fail_future(future, exc)

    def _fail_future(self, future: "Future", exc: Exception) -> None:
        try:
            if future.set_running_or_notify_cancel():
                future.set_exception(exc)
                self.metrics.frame_errored()
        except InvalidStateError:
            pass  # resolved elsewhere; first resolution wins
