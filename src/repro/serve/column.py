"""Batched column-layered scaled min-sum kernel.

:class:`ColumnBatchLayeredMinSumDecoder` is the ``(B, n)`` batch form of
:class:`~repro.decoder.column_layered.ColumnLayeredMinSumDecoder`: the
same vertical shuffled schedule (sweep block columns; per column,
re-evaluate each incident layer and write back only that column's
edges), vectorized over a leading batch axis.  It subclasses the
row-layered batch kernel and replaces only the iteration schedule, so
the state primitives (``prepare`` / ``iterate_once`` /
``syndrome_weights`` / slot accessors), the early-retirement batch
driver, and the continuous-batching engine integration all carry over
unchanged — ``DecodeService(kernel="column")`` is just a different
``_iterate_*`` under the same machinery.

Bit-exactness contract: identical arithmetic and visitation order as
the per-frame column decoder (every layer re-evaluation goes through
the shared :meth:`_layer_minsum` core, proven value-identical to the
per-frame sign/min computations by the row-kernel test suite), so the
per-frame and batch column forms produce byte-identical results; the
differential tests pin it across the registry zoo in both arithmetic
modes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accel.plan import column_adjacency
from repro.decoder.minsum import scale_magnitude_fixed
from repro.serve.batch import BatchLayeredMinSumDecoder

__all__ = ["ColumnBatchLayeredMinSumDecoder"]


class ColumnBatchLayeredMinSumDecoder(BatchLayeredMinSumDecoder):
    """Column-layered scaled min-sum over a batch of frames.

    Accepts the same parameters as
    :class:`~repro.serve.batch.BatchLayeredMinSumDecoder`;
    ``layer_order`` is ignored by the column schedule (columns are swept
    in natural order, layers in each column's adjacency order).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.col_edges = column_adjacency(self.plan)
        self.column_order = list(range(len(self.col_edges)))

    def _iterate_float(self, p: np.ndarray, r: List[np.ndarray]) -> None:
        for j in self.column_order:
            for l, k in self.col_edges[j]:
                idx = self.plan.layers[l].var_idx
                q = p[:, idx] - r[l]
                mags, r_negative = self._layer_minsum(q)
                shaped = self.scaling_factor * mags
                r_new = np.where(r_negative, -shaped, shaped)
                # Column write-back: only block column j's edge.
                p[:, idx[k]] = q[:, k] + r_new[:, k]
                r[l][:, k] = r_new[:, k]

    def _iterate_fixed(self, p: np.ndarray, r: List[np.ndarray]) -> None:
        fmt = self.fmt
        for j in self.column_order:
            for l, k in self.col_edges[j]:
                idx = self.plan.layers[l].var_idx
                q = fmt.saturate(p[:, idx].astype(np.int64) - r[l])
                mags, r_negative = self._layer_minsum(q)
                shaped = scale_magnitude_fixed(mags)
                r_new = fmt.saturate(np.where(r_negative, -shaped, shaped))
                p[:, idx[k]] = fmt.saturate(
                    q[:, k].astype(np.int64) + r_new[:, k]
                )
                r[l][:, k] = r_new[:, k]
