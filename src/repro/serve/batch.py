"""Vectorized batch kernel for layered scaled min-sum decoding.

:class:`BatchLayeredMinSumDecoder` decodes a ``(B, n)`` LLR matrix with
one numpy pass per layer — the software analogue of the paper's z-way
parallel datapath extended across frames.  It is bit-exact with
:class:`~repro.decoder.layered.LayeredMinSumDecoder` in both float and
fixed-point modes: every arithmetic step computes the same values as the
per-frame update rule, merely broadcast over a leading batch axis (the
sign product becomes an XOR parity and the min/second-min selection a
scatter, both value-identical to the per-frame kernels and much faster —
the bit-exactness tests pin the equivalence on both paths).

Converged frames are **retired early**: at every iteration boundary the
per-frame parity checks run, frames whose syndrome is zero are recorded
and removed, and the working arrays are compacted so later iterations
spend no work on finished frames.  The continuous-batching engine
(:mod:`repro.serve.engine`) builds on the same two primitives exposed
here — :meth:`iterate_once` and :meth:`syndrome_weights` — to refill the
freed rows with new frames instead of shrinking the batch.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.plan import get_plan
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.decoder.minsum import SCALING_FACTOR, scale_magnitude_fixed
from repro.decoder.result import BatchDecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

__all__ = ["BatchLayeredMinSumDecoder"]


class BatchLayeredMinSumDecoder(object):
    """Layered scaled min-sum over a batch of frames.

    Parameters
    ----------
    code:
        The QC-LDPC code (shared by every frame of a batch).
    max_iterations:
        Full-iteration budget per frame (paper: 10).
    scaling_factor:
        Check-message scaling, float mode only (paper: 0.75).
    fixed:
        Bit-accurate 8-bit two's-complement arithmetic.
    fmt:
        Fixed-point message format (default: the paper's 8-bit format).
    early_termination:
        Retire frames as soon as their parity checks pass at an
        iteration boundary (per-frame early exit, as in the paper).
    layer_order:
        Optional permutation of layer indices per iteration.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when enabled,
        every layer sweep emits a ``batch.layer`` span (labelled with
        the layer index and live batch size) and every full iteration a
        ``batch.iteration`` span.  Tracing never touches the working
        arrays, so batch results stay bit-exact with and without it.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        scaling_factor: float = SCALING_FACTOR,
        fixed: bool = False,
        fmt: FixedPointFormat = MESSAGE_8BIT,
        early_termination: bool = True,
        layer_order: Optional[Sequence[int]] = None,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        if max_iterations < 1:
            raise DecodingError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0.0 < scaling_factor <= 1.0:
            raise DecodingError(
                f"scaling_factor must be in (0, 1], got {scaling_factor}"
            )
        self.code = code
        self.max_iterations = max_iterations
        self.scaling_factor = scaling_factor
        self.fixed = fixed
        self.fmt = fmt
        self.early_termination = early_termination
        self.recorder = recorder
        # Cached routing tables (gather indices, lane columns) shared by
        # every decoder of this code structure.
        self.plan = get_plan(code)
        if layer_order is None:
            self.layer_order = list(range(code.num_layers))
        else:
            self.layer_order = [int(i) for i in layer_order]
            if sorted(self.layer_order) != list(range(code.num_layers)):
                raise DecodingError(
                    "layer_order must be a permutation of the layer indices"
                )

    # ------------------------------------------------------------------
    # state primitives (shared with the continuous-batching engine)
    # ------------------------------------------------------------------
    def prepare(self, llrs_2d: np.ndarray) -> np.ndarray:
        """Channel LLRs ``(A, n)`` -> initial P state (quantized if fixed)."""
        llrs = np.asarray(llrs_2d, dtype=np.float64)
        if llrs.ndim != 2 or llrs.shape[1] != self.code.n:
            raise DecodingError(
                f"LLR matrix shape {llrs.shape} != (B, {self.code.n})"
            )
        if self.fixed:
            return self.fmt.quantize(llrs)
        return llrs.copy()

    def new_r_state(self, batch: int) -> List[np.ndarray]:
        """Zeroed per-layer R messages for ``batch`` frames."""
        dtype = np.int32 if self.fixed else np.float64
        return [
            np.zeros((batch, layer.degree, self.code.z), dtype=dtype)
            for layer in self.code.layers
        ]

    def iterate_once(self, p: np.ndarray, r: List[np.ndarray]) -> None:
        """Run one full iteration (all layers) in place on ``(A, ...)`` state."""
        if self.fixed:
            self._iterate_fixed(p, r)
        else:
            self._iterate_float(p, r)

    def syndrome_weights(self, p: np.ndarray, frames=None) -> np.ndarray:
        """Unsatisfied-check count per frame of an ``(A, n)`` P state.

        ``frames`` optionally restricts the computation to a subset of
        frames (an index array), in kernel state layout.
        """
        if frames is not None:
            p = p[frames]
        bits = hard_decision(p)
        weights = np.zeros(p.shape[0], dtype=np.int64)
        for layer in self.plan.layers:
            vals = bits[:, layer.var_idx]  # (A, degree, z)
            weights += np.count_nonzero(
                np.bitwise_xor.reduce(vals, axis=1), axis=1
            )
        return weights

    def finalize_llrs(self, p: np.ndarray) -> np.ndarray:
        """P state -> real-valued a-posteriori LLRs (dequantize if fixed)."""
        if self.fixed:
            return self.fmt.dequantize(p)
        return np.asarray(p, dtype=np.float64)

    # ------------------------------------------------------------------
    # state-layout accessors
    #
    # The batch driver below and the continuous-batching engine touch
    # kernel state only through these methods, so a subclass is free to
    # store P/R in a different memory layout (the fused kernel keeps
    # the batch axis innermost) by overriding them consistently.
    # ------------------------------------------------------------------
    def batch_of(self, p: np.ndarray) -> int:
        """Number of frames held by P state ``p``."""
        return int(p.shape[0])

    def load_slot(
        self, p: np.ndarray, r: List[np.ndarray], slot: int, llrs: np.ndarray
    ) -> None:
        """Overwrite slot ``slot`` with a fresh frame's initial state."""
        p[slot] = self.prepare(llrs[None, :])[0]
        for rl in r:
            rl[slot] = 0

    def frame_bits(self, p: np.ndarray, frame: int) -> np.ndarray:
        """Hard-decision bits of one frame of P state."""
        return hard_decision(p[frame])

    def frame_llrs(self, p: np.ndarray, frame: int) -> np.ndarray:
        """Finalized a-posteriori LLRs of one frame of P state.

        Always a copy: the caller holds the result beyond the slot's
        lifetime, while ``finalize_llrs`` may return a view in float
        mode.
        """
        return self.finalize_llrs(p[frame : frame + 1])[0].copy()

    def frames_bits(self, p: np.ndarray, sel) -> np.ndarray:
        """Hard-decision bits ``(K, n)`` of the selected frames."""
        return hard_decision(p[sel])

    def frames_llrs(self, p: np.ndarray, sel) -> np.ndarray:
        """Finalized LLRs ``(K, n)`` of the selected frames."""
        return self.finalize_llrs(p[sel])

    def compact(
        self, p: np.ndarray, r: List[np.ndarray], keep: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Drop retired frames from the working state (boolean mask)."""
        return p[keep], [rl[keep] for rl in r]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, llrs_2d: np.ndarray) -> BatchDecodeResult:
        """Decode a ``(B, n)`` LLR matrix; rows are independent frames."""
        p = self.prepare(llrs_2d)
        batch = self.batch_of(p)

        out_bits = np.zeros((batch, self.code.n), dtype=np.uint8)
        out_llrs = np.zeros((batch, self.code.n), dtype=np.float64)
        out_converged = np.zeros(batch, dtype=bool)
        out_iterations = np.zeros(batch, dtype=np.int64)
        out_weights = np.zeros(batch, dtype=np.int64)
        out_syndromes: List[List[int]] = [[] for _ in range(batch)]

        if batch == 0:
            return BatchDecodeResult(
                bits=out_bits,
                converged=out_converged,
                iterations=out_iterations,
                llrs=out_llrs,
                syndrome_weights=out_weights,
                iteration_syndromes=out_syndromes,
                max_iterations=self.max_iterations,
            )

        r = self.new_r_state(batch)
        active = np.arange(batch)
        rec = self.recorder
        tracing = rec is not None and rec.enabled

        for it in range(self.max_iterations):
            it_t0 = time.perf_counter() if tracing else 0.0
            self.iterate_once(p, r)
            weights = self.syndrome_weights(p)
            if tracing:
                rec.complete("batch.iteration", it_t0, iteration=it,
                             active=int(len(active)))
            for j, frame in enumerate(active):
                out_syndromes[frame].append(int(weights[j]))

            if self.early_termination:
                done = weights == 0
            else:
                done = np.zeros(len(active), dtype=bool)
            if it == self.max_iterations - 1:
                done = np.ones(len(active), dtype=bool)

            if done.any():
                retired = active[done]
                out_bits[retired] = self.frames_bits(p, done)
                out_llrs[retired] = self.frames_llrs(p, done)
                out_converged[retired] = weights[done] == 0
                out_iterations[retired] = it + 1
                out_weights[retired] = weights[done]

                keep = ~done
                if not keep.any():
                    break
                p, r = self.compact(p, r, keep)
                active = active[keep]

        return BatchDecodeResult(
            bits=out_bits,
            converged=out_converged,
            iterations=out_iterations,
            llrs=out_llrs,
            syndrome_weights=out_weights,
            iteration_syndromes=out_syndromes,
            max_iterations=self.max_iterations,
        )

    # ------------------------------------------------------------------
    # layer sweeps
    # ------------------------------------------------------------------
    def _layer_minsum(self, q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batched core1: per-edge R' magnitudes and sign-negativity mask.

        ``q`` is ``(A, degree, z)``.  Returns ``(mags, r_negative)``
        where ``mags[a, k, r]`` is the min (or second-min at the argmin
        edge) magnitude for edge ``k`` of check row ``r`` of frame ``a``,
        and ``r_negative`` is True where the outgoing message sign is
        negative.

        The sign product is computed as an XOR parity of "is negative"
        bits rather than an integer product — value-identical to
        :func:`~repro.decoder.minsum.sign_with_zero_positive` (zero
        counts as positive, matching a two's-complement MSB) and far
        cheaper than multiplying sign integers.  The min/second-min
        selection scatters the second minimum into the argmin position —
        value-identical to the per-frame
        :func:`~repro.decoder.minsum.min1_min2` + ``np.where`` pair; the
        bit-exactness test suite pins the equivalence.
        """
        batch, degree, z = q.shape
        negative = q < 0  # (A, degree, z); -0.0 counts positive, as in hardware
        total_negative = np.logical_xor.reduce(negative, axis=1)  # (A, z)
        # outgoing sign excludes the edge's own sign: parity XOR own bit
        r_negative = negative ^ total_negative[:, None, :]

        magnitudes = np.abs(q)
        pos1 = magnitudes.argmin(axis=1)  # (A, z), first index on ties
        rows = np.arange(batch)[:, None]
        cols = self.plan.lane_idx[None, :]
        min1 = magnitudes[rows, pos1, cols]
        if degree == 1:
            min2 = min1
        else:
            if np.issubdtype(magnitudes.dtype, np.integer):
                sentinel = np.iinfo(magnitudes.dtype).max
            else:
                sentinel = np.inf
            magnitudes[rows, pos1, cols] = sentinel
            min2 = magnitudes.min(axis=1)
        mags = np.repeat(min1[:, None, :], degree, axis=1)
        mags[rows, pos1, cols] = min2
        return mags, r_negative

    def _iterate_float(self, p: np.ndarray, r: List[np.ndarray]) -> None:
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        for l in self.layer_order:
            if tracing:
                layer_t0 = time.perf_counter()
            idx = self.plan.layers[l].var_idx
            q = p[:, idx] - r[l]
            mags, r_negative = self._layer_minsum(q)
            shaped = self.scaling_factor * mags
            r_new = np.where(r_negative, -shaped, shaped)
            p[:, idx] = q + r_new
            r[l] = r_new
            if tracing:
                rec.complete("batch.layer", layer_t0, layer=l,
                             batch=int(p.shape[0]), mode="float")

    def _iterate_fixed(self, p: np.ndarray, r: List[np.ndarray]) -> None:
        fmt = self.fmt
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        for l in self.layer_order:
            if tracing:
                layer_t0 = time.perf_counter()
            idx = self.plan.layers[l].var_idx
            q = fmt.saturate(p[:, idx].astype(np.int64) - r[l])
            mags, r_negative = self._layer_minsum(q)
            shaped = scale_magnitude_fixed(mags)
            r_new = fmt.saturate(np.where(r_negative, -shaped, shaped))
            p[:, idx] = fmt.saturate(q.astype(np.int64) + r_new)
            r[l] = r_new
            if tracing:
                rec.complete("batch.layer", layer_t0, layer=l,
                             batch=int(p.shape[0]), mode="fixed")
