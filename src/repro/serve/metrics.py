"""Counters and latency/occupancy statistics for the serving runtime.

One :class:`ServeMetrics` instance can be shared by every engine and
worker of a service — all mutators take an internal lock — and exposes
its state two ways: :meth:`snapshot` returns an immutable
:class:`MetricsSnapshot` dataclass for programmatic use, and
:meth:`report` renders the snapshot as an aligned text table in the
house style of the evaluation harness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.utils.stats import RollingReservoir
from repro.utils.tables import render_table

__all__ = ["MetricsSnapshot", "ServeMetrics"]


@dataclass(frozen=True)
class MetricsSnapshot(object):
    """Immutable point-in-time view of a :class:`ServeMetrics`.

    Attributes
    ----------
    frames_in / frames_out:
        Frames admitted to an engine slot / frames retired with a result.
    frames_converged / frames_failed:
        Retired frames whose parity checks passed / did not pass.
    frames_rejected:
        Frames refused by backpressure (queue full or service closed).
    frames_errored:
        Frames whose future completed exceptionally (bad input, worker
        crash, dead shard) — distinct from ``frames_failed``, which are
        decoded-but-unconverged frames that still produced a result.
    frames_retried:
        Re-admissions after a transient engine failure (a frame retried
        twice counts twice).
    frames_expired:
        Frames dropped at dequeue because their deadline had passed.
    frames_shed:
        Frames admitted with a reduced iteration budget by the
        load-shedding policy.
    worker_crashes / worker_restarts:
        Shard worker loops that died with an unexpected exception / that
        were restarted by the supervisor after backoff.
    engine_steps:
        Decode iterations executed across all engines (each step runs
        one full layered iteration over the occupied slots).
    slot_iterations:
        Frame-iterations executed (sum of occupied slots over steps).
    iterations_saved:
        Frame-iterations avoided by early retirement of converged
        frames, relative to running every frame to its budget.
    mean_occupancy:
        Mean fraction of slots busy per engine step (0..1).
    p50_latency_s / p99_latency_s / mean_latency_s:
        Submit-to-retire latency percentiles over the recent window.
    elapsed_s:
        Wall-clock seconds since the metrics object was created/reset.
    throughput_fps:
        ``frames_out / elapsed_s`` (0 when no time has elapsed).
    """

    frames_in: int
    frames_out: int
    frames_converged: int
    frames_failed: int
    frames_rejected: int
    frames_errored: int
    frames_retried: int
    frames_expired: int
    frames_shed: int
    worker_crashes: int
    worker_restarts: int
    engine_steps: int
    slot_iterations: int
    iterations_saved: int
    mean_occupancy: float
    p50_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    elapsed_s: float
    throughput_fps: float


class ServeMetrics(object):
    """Thread-safe counters + histograms for the decode service."""

    def __init__(self, latency_window: int = 8192) -> None:
        self._lock = threading.Lock()
        self._latency_window = latency_window
        self.reset()

    def reset(self) -> None:
        """Zero every counter and drop retained samples."""
        with self._lock:
            self._frames_in = 0
            self._frames_out = 0
            self._frames_converged = 0
            self._frames_failed = 0
            self._frames_rejected = 0
            self._frames_errored = 0
            self._frames_retried = 0
            self._frames_expired = 0
            self._frames_shed = 0
            self._worker_crashes = 0
            self._worker_restarts = 0
            self._engine_steps = 0
            self._slot_iterations = 0
            self._iterations_saved = 0
            self._occupancy = RollingReservoir(self._latency_window)
            self._latency = RollingReservoir(self._latency_window)
            self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # recording hooks (called by engines / services)
    # ------------------------------------------------------------------
    def frame_admitted(self, count: int = 1) -> None:
        with self._lock:
            self._frames_in += count

    def frame_rejected(self, count: int = 1) -> None:
        with self._lock:
            self._frames_rejected += count

    def frame_errored(self, count: int = 1) -> None:
        """A frame's future completed with an exception."""
        with self._lock:
            self._frames_errored += count

    def frame_retried(self, count: int = 1) -> None:
        """A frame was re-admitted after a transient engine failure."""
        with self._lock:
            self._frames_retried += count

    def frame_expired(self, count: int = 1) -> None:
        """A frame's deadline passed before it reached a decoder slot."""
        with self._lock:
            self._frames_expired += count

    def frame_shed(self, count: int = 1) -> None:
        """A frame was admitted with a shed (reduced) iteration budget."""
        with self._lock:
            self._frames_shed += count

    def worker_crashed(self) -> None:
        with self._lock:
            self._worker_crashes += 1

    def worker_restarted(self) -> None:
        with self._lock:
            self._worker_restarts += 1

    def step_recorded(self, busy_slots: int, capacity: int) -> None:
        """One engine step over ``busy_slots`` of ``capacity`` slots."""
        with self._lock:
            self._engine_steps += 1
            self._slot_iterations += busy_slots
            if capacity > 0:
                self._occupancy.observe(busy_slots / capacity)

    def frame_retired(
        self,
        converged: bool,
        iterations: int,
        max_iterations: int,
        latency_s: float,
    ) -> None:
        with self._lock:
            self._frames_out += 1
            if converged:
                self._frames_converged += 1
                self._iterations_saved += max(0, max_iterations - iterations)
            else:
                self._frames_failed += 1
            self._latency.observe(latency_s)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Consistent immutable view of all counters and histograms."""
        with self._lock:
            elapsed = max(0.0, time.monotonic() - self._started_at)
            fps = self._frames_out / elapsed if elapsed > 0 else 0.0
            return MetricsSnapshot(
                frames_in=self._frames_in,
                frames_out=self._frames_out,
                frames_converged=self._frames_converged,
                frames_failed=self._frames_failed,
                frames_rejected=self._frames_rejected,
                frames_errored=self._frames_errored,
                frames_retried=self._frames_retried,
                frames_expired=self._frames_expired,
                frames_shed=self._frames_shed,
                worker_crashes=self._worker_crashes,
                worker_restarts=self._worker_restarts,
                engine_steps=self._engine_steps,
                slot_iterations=self._slot_iterations,
                iterations_saved=self._iterations_saved,
                mean_occupancy=self._occupancy.mean,
                p50_latency_s=self._latency.percentile(50.0),
                p99_latency_s=self._latency.percentile(99.0),
                mean_latency_s=self._latency.mean,
                elapsed_s=elapsed,
                throughput_fps=fps,
            )

    def report(self, title: str = "serving metrics") -> str:
        """The snapshot as an aligned two-column text table."""
        snap = self.snapshot()
        rows = [
            ["frames in / out", f"{snap.frames_in} / {snap.frames_out}"],
            ["converged / failed (unconverged)",
             f"{snap.frames_converged} / {snap.frames_failed}"],
            ["rejected (backpressure)", str(snap.frames_rejected)],
            ["errored (exception)", str(snap.frames_errored)],
            ["retried (transient fault)", str(snap.frames_retried)],
            ["expired (deadline)", str(snap.frames_expired)],
            ["shed (reduced budget)", str(snap.frames_shed)],
            ["worker crashes / restarts",
             f"{snap.worker_crashes} / {snap.worker_restarts}"],
            ["engine steps", str(snap.engine_steps)],
            ["slot iterations", str(snap.slot_iterations)],
            ["iterations saved (early retire)", str(snap.iterations_saved)],
            ["mean batch occupancy", f"{snap.mean_occupancy:.2f}"],
            ["latency p50 / p99 (ms)",
             f"{snap.p50_latency_s * 1e3:.2f} / {snap.p99_latency_s * 1e3:.2f}"],
            ["throughput (frames/s)", f"{snap.throughput_fps:.1f}"],
        ]
        return render_table(["metric", "value"], rows, title=title)
