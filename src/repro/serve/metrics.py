"""Counters and latency/occupancy statistics for the serving runtime.

One :class:`ServeMetrics` instance can be shared by every engine and
worker of a service and exposes its state several ways:
:meth:`snapshot` returns an immutable :class:`MetricsSnapshot` dataclass
for programmatic use, :meth:`report` renders the snapshot as an aligned
text table in the house style of the evaluation harness, and the
backing :class:`~repro.obs.metrics.MetricsRegistry` (the ``registry``
attribute) renders the same series as JSON or Prometheus exposition
text for machine consumers.

Since the observability refactor every counter and histogram lives in
the registry (instrument names are prefixed ``serve_``); this class is
the serving-specific facade — stable recording hooks, the snapshot
shape the tests and benchmarks rely on — over those instruments, and
the values it reports are by construction identical to what the
registry exposes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.utils.tables import render_table

__all__ = ["MetricsSnapshot", "ServeMetrics"]

#: Occupancy is a fraction in [0, 1]; latency buckets suit ms-scale decodes.
_OCCUPANCY_BUCKETS = tuple(i / 10 for i in range(1, 11))
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class MetricsSnapshot(object):
    """Immutable point-in-time view of a :class:`ServeMetrics`.

    Attributes
    ----------
    frames_in / frames_out:
        Frames admitted to an engine slot / frames retired with a result.
    frames_converged / frames_failed:
        Retired frames whose parity checks passed / did not pass.
    frames_rejected:
        Frames refused by backpressure (queue full or service closed).
    frames_errored:
        Frames whose future completed exceptionally (bad input, worker
        crash, dead shard) — distinct from ``frames_failed``, which are
        decoded-but-unconverged frames that still produced a result.
    frames_retried:
        Re-admissions after a transient engine failure (a frame retried
        twice counts twice).
    frames_expired:
        Frames dropped at dequeue because their deadline had passed.
    frames_shed:
        Frames admitted with a reduced iteration budget by the
        load-shedding policy.
    worker_crashes / worker_restarts:
        Shard worker loops that died with an unexpected exception / that
        were restarted by the supervisor after backoff.
    engine_steps:
        Decode iterations executed across all engines (each step runs
        one full layered iteration over the occupied slots).
    slot_iterations:
        Frame-iterations executed (sum of occupied slots over steps).
    iterations_saved:
        Frame-iterations avoided by early retirement of converged
        frames, relative to running every frame to its budget.
    mean_occupancy:
        Mean fraction of slots busy per engine step (0..1).
    p50_latency_s / p99_latency_s / mean_latency_s:
        Submit-to-retire latency percentiles over the recent window.
    elapsed_s:
        Wall-clock seconds since the metrics object was created/reset.
    throughput_fps:
        ``frames_out / elapsed_s`` (0 when no time has elapsed).
    """

    frames_in: int
    frames_out: int
    frames_converged: int
    frames_failed: int
    frames_rejected: int
    frames_errored: int
    frames_retried: int
    frames_expired: int
    frames_shed: int
    worker_crashes: int
    worker_restarts: int
    engine_steps: int
    slot_iterations: int
    iterations_saved: int
    mean_occupancy: float
    p50_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    elapsed_s: float
    throughput_fps: float


class ServeMetrics(object):
    """Thread-safe counters + histograms for the decode service.

    Parameters
    ----------
    latency_window:
        Sliding-window size (samples) for latency/occupancy percentiles.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` to
        publish into; a private registry is created when omitted.  All
        instruments are named ``serve_*``, so one registry can also
        carry fault-campaign or application metrics.
    """

    def __init__(
        self,
        latency_window: int = 8192,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._latency_window = latency_window
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._frames_in = reg.counter(
            "serve_frames_in", "frames admitted to an engine slot")
        self._frames_out = reg.counter(
            "serve_frames_out", "frames retired with a result")
        self._frames_converged = reg.counter(
            "serve_frames_converged", "retired frames with parity passing")
        self._frames_failed = reg.counter(
            "serve_frames_failed", "retired frames still failing parity")
        self._frames_rejected = reg.counter(
            "serve_frames_rejected", "frames refused by backpressure")
        self._frames_errored = reg.counter(
            "serve_frames_errored", "frame futures completed exceptionally")
        self._frames_retried = reg.counter(
            "serve_frames_retried", "re-admissions after transient faults")
        self._frames_expired = reg.counter(
            "serve_frames_expired", "frames dropped past their deadline")
        self._frames_shed = reg.counter(
            "serve_frames_shed", "frames admitted with a shed budget")
        self._worker_crashes = reg.counter(
            "serve_worker_crashes", "worker loops died unexpectedly")
        self._worker_restarts = reg.counter(
            "serve_worker_restarts", "worker loops restarted by supervisor")
        self._engine_steps = reg.counter(
            "serve_engine_steps", "layered iterations over occupied slots")
        self._slot_iterations = reg.counter(
            "serve_slot_iterations", "frame-iterations executed")
        self._iterations_saved = reg.counter(
            "serve_iterations_saved", "frame-iterations avoided by early retire")
        self._occupancy = reg.histogram(
            "serve_occupancy_ratio", "busy slot fraction per engine step",
            buckets=_OCCUPANCY_BUCKETS, window=latency_window)
        self._latency = reg.histogram(
            "serve_latency_seconds", "submit-to-retire latency",
            buckets=_LATENCY_BUCKETS, window=latency_window)
        self._started_at = time.monotonic()

    def reset(self) -> None:
        """Zero every serving instrument and drop retained samples."""
        for inst in (
            self._frames_in, self._frames_out, self._frames_converged,
            self._frames_failed, self._frames_rejected, self._frames_errored,
            self._frames_retried, self._frames_expired, self._frames_shed,
            self._worker_crashes, self._worker_restarts, self._engine_steps,
            self._slot_iterations, self._iterations_saved,
            self._occupancy, self._latency,
        ):
            inst.reset()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # recording hooks (called by engines / services)
    # ------------------------------------------------------------------
    def frame_admitted(self, count: int = 1) -> None:
        """``count`` frames entered a decoder (queue or engine slot)."""
        self._frames_in.inc(count)

    def frame_rejected(self, count: int = 1) -> None:
        """``count`` frames were refused admission (backpressure)."""
        self._frames_rejected.inc(count)

    def frame_errored(self, count: int = 1) -> None:
        """A frame's future completed with an exception."""
        self._frames_errored.inc(count)

    def frame_retried(self, count: int = 1) -> None:
        """A frame was re-admitted after a transient engine failure."""
        self._frames_retried.inc(count)

    def frame_expired(self, count: int = 1) -> None:
        """A frame's deadline passed before it reached a decoder slot."""
        self._frames_expired.inc(count)

    def frame_shed(self, count: int = 1) -> None:
        """A frame was admitted with a shed (reduced) iteration budget."""
        self._frames_shed.inc(count)

    def worker_crashed(self) -> None:
        """A shard worker (thread or child process) died."""
        self._worker_crashes.inc()

    def worker_restarted(self) -> None:
        """A crashed shard worker was rebuilt and restarted."""
        self._worker_restarts.inc()

    def step_recorded(self, busy_slots: int, capacity: int) -> None:
        """One engine step over ``busy_slots`` of ``capacity`` slots."""
        self._engine_steps.inc()
        self._slot_iterations.inc(busy_slots)
        if capacity > 0:
            self._occupancy.observe(busy_slots / capacity)

    def absorb_worker_steps(
        self, steps: int, slot_iterations: int, capacity: int
    ) -> None:
        """Fold a worker process's engine-step deltas into this registry.

        A process-backed shard runs its engine in a child whose private
        metrics cannot share this registry; the child periodically ships
        ``(steps, slot_iterations)`` deltas and the parent calls this to
        keep ``serve_engine_steps`` / ``serve_slot_iterations`` /
        ``serve_occupancy_ratio`` coherent across backends.  Occupancy
        is reconstructed as the mean ratio over the delta (per-step
        detail is not shipped); the sample count is capped so a large
        delta cannot stall the caller.
        """
        if steps <= 0:
            return
        self._engine_steps.inc(steps)
        self._slot_iterations.inc(slot_iterations)
        if capacity > 0:
            ratio = min(1.0, slot_iterations / (steps * capacity))
            for _ in range(min(steps, 256)):
                self._occupancy.observe(ratio)

    def frame_retired(
        self,
        converged: bool,
        iterations: int,
        max_iterations: int,
        latency_s: float,
    ) -> None:
        """A frame finished decoding; records convergence, the
        early-termination saving vs ``max_iterations``, and latency."""
        self._frames_out.inc()
        if converged:
            self._frames_converged.inc()
            self._iterations_saved.inc(max(0, max_iterations - iterations))
        else:
            self._frames_failed.inc()
        self._latency.observe(latency_s)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Immutable view of all counters and histograms."""
        elapsed = max(0.0, time.monotonic() - self._started_at)
        frames_out = int(self._frames_out.value())
        fps = frames_out / elapsed if elapsed > 0 else 0.0
        return MetricsSnapshot(
            frames_in=int(self._frames_in.value()),
            frames_out=frames_out,
            frames_converged=int(self._frames_converged.value()),
            frames_failed=int(self._frames_failed.value()),
            frames_rejected=int(self._frames_rejected.value()),
            frames_errored=int(self._frames_errored.value()),
            frames_retried=int(self._frames_retried.value()),
            frames_expired=int(self._frames_expired.value()),
            frames_shed=int(self._frames_shed.value()),
            worker_crashes=int(self._worker_crashes.value()),
            worker_restarts=int(self._worker_restarts.value()),
            engine_steps=int(self._engine_steps.value()),
            slot_iterations=int(self._slot_iterations.value()),
            iterations_saved=int(self._iterations_saved.value()),
            mean_occupancy=self._occupancy.mean(),
            p50_latency_s=self._latency.percentile(50.0),
            p99_latency_s=self._latency.percentile(99.0),
            mean_latency_s=self._latency.mean(),
            elapsed_s=elapsed,
            throughput_fps=fps,
        )

    def report(self, title: str = "serving metrics") -> str:
        """The snapshot as an aligned two-column text table."""
        snap = self.snapshot()
        rows = [
            ["frames in / out", f"{snap.frames_in} / {snap.frames_out}"],
            ["converged / failed (unconverged)",
             f"{snap.frames_converged} / {snap.frames_failed}"],
            ["rejected (backpressure)", str(snap.frames_rejected)],
            ["errored (exception)", str(snap.frames_errored)],
            ["retried (transient fault)", str(snap.frames_retried)],
            ["expired (deadline)", str(snap.frames_expired)],
            ["shed (reduced budget)", str(snap.frames_shed)],
            ["worker crashes / restarts",
             f"{snap.worker_crashes} / {snap.worker_restarts}"],
            ["engine steps", str(snap.engine_steps)],
            ["slot iterations", str(snap.slot_iterations)],
            ["iterations saved (early retire)", str(snap.iterations_saved)],
            ["mean batch occupancy", f"{snap.mean_occupancy:.2f}"],
            ["latency p50 / p99 (ms)",
             f"{snap.p50_latency_s * 1e3:.2f} / {snap.p99_latency_s * 1e3:.2f}"],
            ["throughput (frames/s)", f"{snap.throughput_fps:.1f}"],
        ]
        return render_table(["metric", "value"], rows, title=title)
