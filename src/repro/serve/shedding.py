"""Load shedding: degrade iteration budget before rejecting frames.

Under overload a decode service has three options, in order of
preference: work faster, work worse, or refuse work.  The iteration
budget is the knob that makes "work worse" cheap and graceful for an
LDPC decoder — most frames converge in a few iterations, so capping the
budget trims only the tail (the hardest frames lose a little coding
gain) while multiplying worst-case throughput.  This mirrors the
paper's own early-termination argument: iterations beyond convergence
are pure cost.

A policy maps queue fill fraction -> iteration budget.  The service
evaluates it at submit time, so the budget a frame gets reflects the
overload level *when it joined the queue*, and the metrics layer counts
every shed frame.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ServeError

__all__ = ["LoadShedPolicy", "NoShedPolicy", "StepShedPolicy"]


class LoadShedPolicy(object):
    """Maps queue pressure to a per-job iteration budget."""

    def budget(self, fill: float, max_iterations: int) -> int:
        """Iteration budget for a job arriving at queue fill ``fill`` (0..1)."""
        raise NotImplementedError


class NoShedPolicy(LoadShedPolicy):
    """Never shed: every frame gets the full budget."""

    def budget(self, fill: float, max_iterations: int) -> int:
        """Always the full ``max_iterations`` budget."""
        return max_iterations


class StepShedPolicy(LoadShedPolicy):
    """Piecewise-constant shedding: budget fraction steps down with fill.

    Parameters
    ----------
    steps:
        ``(fill_threshold, budget_fraction)`` pairs; the first pair
        whose threshold is >= the observed fill supplies the fraction.
        Thresholds must be ascending and end at 1.0.  The default keeps
        the full budget below 75 % fill, drops to 75 % of it below 90 %,
        and to half when the queue is nearly full.
    floor_iterations:
        Never shed below this many iterations (a frame that gets a slot
        deserves a real decode attempt).
    """

    def __init__(
        self,
        steps: Sequence[Tuple[float, float]] = (
            (0.75, 1.0),
            (0.90, 0.75),
            (1.00, 0.50),
        ),
        floor_iterations: int = 2,
    ) -> None:
        steps = [(float(t), float(f)) for t, f in steps]
        if not steps:
            raise ServeError("StepShedPolicy needs at least one step")
        thresholds = [t for t, _ in steps]
        if thresholds != sorted(thresholds) or thresholds[-1] < 1.0:
            raise ServeError(
                "shed steps must have ascending thresholds ending at >= 1.0"
            )
        for t, f in steps:
            if not 0.0 < f <= 1.0:
                raise ServeError(f"budget fraction must be in (0, 1], got {f}")
        if floor_iterations < 1:
            raise ServeError(
                f"floor_iterations must be >= 1, got {floor_iterations}"
            )
        self.steps = steps
        self.floor_iterations = floor_iterations

    def budget(self, fill: float, max_iterations: int) -> int:
        """Budget from the first step whose fill threshold covers ``fill``,
        floored at ``floor_iterations``."""
        for threshold, fraction in self.steps:
            if fill <= threshold:
                budget = int(max_iterations * fraction)
                return max(min(self.floor_iterations, max_iterations), budget)
        return max_iterations
