"""Continuous-batching engine: slot reuse across frames.

The LLM-inference continuous-batching pattern applied to LDPC decoding:
an engine owns ``batch_size`` decoder slots; every :meth:`step` runs one
full layered iteration over the *occupied* slots only, retires frames
whose parity checks pass (or whose iteration budget is spent), and the
freed slots are immediately available to :meth:`admit` new frames — so
a saturated engine never idles a slot waiting for the slowest frame of
a fixed batch, exactly the way the paper's two-layer pipelined
architecture keeps core1/core2 busy across layers via its scoreboard.

Frames in the same engine share one code (and hence one LLR length);
mixed-rate traffic is sharded across engines by the worker pool in
:mod:`repro.serve.pool`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Iterable, List, Optional

import numpy as np

from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.decoder.minsum import SCALING_FACTOR
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError, EngineFullError
from repro.serve.batch import BatchLayeredMinSumDecoder
from repro.serve.jobs import CompletedJob, DecodeJob
from repro.serve.metrics import ServeMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

__all__ = ["ContinuousBatchingEngine"]


class ContinuousBatchingEngine(object):
    """Decode a stream of jobs through a fixed pool of batch slots.

    Parameters
    ----------
    code:
        The QC-LDPC code every frame of this engine uses.
    batch_size:
        Number of decoder slots (B).
    max_iterations / scaling_factor / fixed / fmt:
        Forwarded to the underlying batch kernel.
    kernel:
        ``"batch"`` (the reference batch kernel), ``"fused"`` (the
        fused transposed-state kernel from :mod:`repro.accel.fused`), or
        ``"column"`` (the column-layered schedule from
        :mod:`repro.serve.column`).  ``batch`` and ``fused`` are
        bit-exact with the per-frame row-layered decoder; ``column`` is
        bit-exact with its own per-frame reference
        (:class:`~repro.decoder.column_layered.ColumnLayeredMinSumDecoder`).
    metrics:
        Optional shared :class:`ServeMetrics`; a private instance is
        created when omitted.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; when enabled
        the engine emits ``engine.admit`` / ``engine.retire`` events per
        slot fill/free and an ``engine.step`` span per layered
        iteration, and forwards the recorder to the batch kernel for
        ``batch.layer`` attribution.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        batch_size: int = 16,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        scaling_factor: float = SCALING_FACTOR,
        fixed: bool = False,
        fmt: FixedPointFormat = MESSAGE_8BIT,
        metrics: Optional[ServeMetrics] = None,
        recorder: "Optional[TraceRecorder]" = None,
        kernel: str = "batch",
    ) -> None:
        if batch_size < 1:
            raise DecodingError(f"batch_size must be >= 1, got {batch_size}")
        if kernel not in ("batch", "fused", "column"):
            raise DecodingError(
                f"kernel must be 'batch', 'fused', or 'column', got {kernel!r}"
            )
        self.code = code
        self.batch_size = batch_size
        self.max_iterations = max_iterations
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.recorder = recorder
        if kernel == "fused":
            from repro.accel.fused import FusedBatchLayeredMinSumDecoder

            kernel_cls = FusedBatchLayeredMinSumDecoder
        elif kernel == "column":
            from repro.serve.column import ColumnBatchLayeredMinSumDecoder

            kernel_cls = ColumnBatchLayeredMinSumDecoder
        else:
            kernel_cls = BatchLayeredMinSumDecoder
        self.kernel = kernel_cls(
            code,
            max_iterations=max_iterations,
            scaling_factor=scaling_factor,
            fixed=fixed,
            fmt=fmt,
            early_termination=True,
            recorder=recorder,
        )
        self._p = self.kernel.prepare(np.zeros((batch_size, code.n)))
        self._r = self.kernel.new_r_state(batch_size)
        self._occupied = np.zeros(batch_size, dtype=bool)
        self._iters = np.zeros(batch_size, dtype=np.int64)
        self._budgets = np.full(batch_size, max_iterations, dtype=np.int64)
        self._jobs: List[Optional[DecodeJob]] = [None] * batch_size
        self._syndromes: List[List[int]] = [[] for _ in range(batch_size)]

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Frames currently occupying a slot."""
        return int(np.count_nonzero(self._occupied))

    @property
    def free_slots(self) -> int:
        """Slots available for :meth:`admit`."""
        return self.batch_size - self.in_flight

    def admit(self, job: DecodeJob) -> int:
        """Place one job into a free slot; returns the slot index.

        Raises
        ------
        EngineFullError
            If every slot is occupied.
        DecodingError
            If the job's LLR vector has the wrong length.
        """
        free = np.flatnonzero(~self._occupied)
        if free.size == 0:
            raise EngineFullError(
                f"all {self.batch_size} slots occupied; step() before admitting"
            )
        llrs = np.asarray(job.llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(
                f"job {job.job_id}: LLR length {llrs.shape} != ({self.code.n},)"
            )
        slot = int(free[0])
        self.kernel.load_slot(self._p, self._r, slot, llrs)
        self._occupied[slot] = True
        self._iters[slot] = 0
        # per-job budget (load shedding lowers it); clamp to [1, engine max]
        budget = job.iteration_budget
        if budget is None:
            budget = self.max_iterations
        self._budgets[slot] = min(max(1, int(budget)), self.max_iterations)
        self._jobs[slot] = job
        self._syndromes[slot] = []
        self.metrics.frame_admitted()
        if self.recorder is not None:
            self.recorder.event("engine.admit", slot=slot, job=job.job_id)
        return slot

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> List[CompletedJob]:
        """Run one layered iteration over the occupied slots.

        Retires (and returns) every frame whose parity checks pass or
        whose iteration budget is exhausted; the freed slots can be
        refilled before the next step.
        """
        act = np.flatnonzero(self._occupied)
        if act.size == 0:
            return []
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        step_t0 = time.perf_counter() if tracing else 0.0

        # Iterate the full slot arrays: free slots decode stale/zero
        # state (cheap, harmless) and in exchange the hot path never
        # gathers/scatters the per-layer R matrices.
        self.kernel.iterate_once(self._p, self._r)
        p = self._p

        self._iters[act] += 1
        weights = self.kernel.syndrome_weights(p, frames=act)
        self.metrics.step_recorded(int(act.size), self.batch_size)
        if tracing:
            rec.complete("engine.step", step_t0, busy=int(act.size),
                         capacity=self.batch_size)

        completed: List[CompletedJob] = []
        for j, slot in enumerate(act):
            slot = int(slot)
            weight = int(weights[j])
            self._syndromes[slot].append(weight)
            converged = weight == 0
            if not converged and self._iters[slot] < self._budgets[slot]:
                continue
            job = self._jobs[slot]
            result = DecodeResult(
                bits=self.kernel.frame_bits(p, slot),
                converged=converged,
                iterations=int(self._iters[slot]),
                llrs=self.kernel.frame_llrs(p, slot),
                syndrome_weight=weight,
                iteration_syndromes=list(self._syndromes[slot]),
            )
            done = CompletedJob(job=job, result=result)
            self.metrics.frame_retired(
                converged=converged,
                iterations=result.iterations,
                max_iterations=int(self._budgets[slot]),
                latency_s=done.latency_s,
            )
            self._occupied[slot] = False
            self._jobs[slot] = None
            completed.append(done)
            if self.recorder is not None:
                self.recorder.event(
                    "engine.retire", slot=slot, job=done.job_id,
                    converged=converged, iterations=result.iterations,
                )
        return completed

    def drain(self) -> List[CompletedJob]:
        """Step until every in-flight frame has retired."""
        completed: List[CompletedJob] = []
        while self.in_flight:
            completed.extend(self.step())
        return completed

    # ------------------------------------------------------------------
    # convenience driver
    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[DecodeJob]) -> List[CompletedJob]:
        """Continuously feed ``jobs`` through the slots.

        Admission happens whenever a slot is free (including slots freed
        by early retirement mid-stream), so a long job list keeps the
        batch full; results are returned in the input order.
        """
        pending = deque(
            job if isinstance(job, DecodeJob) else DecodeJob(llrs=np.asarray(job))
            for job in jobs
        )
        order = {job.job_id: i for i, job in enumerate(pending)}
        completed: List[Optional[CompletedJob]] = [None] * len(pending)
        extras: List[CompletedJob] = []

        while pending or self.in_flight:
            while pending and self.free_slots:
                self.admit(pending.popleft())
            for done in self.step():
                pos = order.get(done.job_id)
                if pos is None:
                    # a frame admitted outside this run() call retired here
                    extras.append(done)
                else:
                    completed[pos] = done
        return [c for c in completed if c is not None] + extras
