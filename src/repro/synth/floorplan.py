"""Floorplanning: the paper's Fig 9 layout view, reproduced.

Fig 9 shows the placed decoder: the R memory along one edge, the P
memory in a corner, and the standard-cell sea (cores, shifter, control)
filling the rest of the 1.2 mm^2 die.  This module computes that
floorplan from the area report — macro dimensions from their bit
capacities and aspect ratios, the core outline from total area and
layout utilization — and renders it as ASCII art or SVG.

It is a *slicing* floorplanner: macros are packed along the top edge
(widest first), and the remaining L-shaped region is standard-cell
area.  That is exactly the arrangement in the paper's die plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.errors import ModelError
from repro.synth.area import AreaReport
from repro.synth.tech65 import TSMC65GP, TechnologyModel


@dataclass(frozen=True)
class Placement(object):
    """One placed rectangle, in micrometres."""

    name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def area_um2(self) -> float:
        """Rectangle area."""
        return self.width * self.height


@dataclass
class Floorplan(object):
    """A placed die: outline plus macro and cell-region rectangles."""

    die_width_um: float
    die_height_um: float
    placements: List[Placement] = field(default_factory=list)

    @property
    def die_area_mm2(self) -> float:
        """Die outline area."""
        return self.die_width_um * self.die_height_um * 1e-6

    def utilization(self) -> float:
        """Placed area over die area."""
        placed = sum(p.area_um2 for p in self.placements)
        return placed / (self.die_width_um * self.die_height_um)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 60) -> str:
        """ASCII die plot in the style of Fig 9."""
        scale = width / self.die_width_um
        height = max(8, int(self.die_height_um * scale * 0.5))
        yscale = height / self.die_height_um
        grid = [[" "] * width for _ in range(height)]
        for idx, p in enumerate(self.placements):
            mark = p.name[:1].upper() or str(idx)
            x0 = int(p.x * scale)
            x1 = max(x0 + 1, int((p.x + p.width) * scale))
            y0 = int(p.y * yscale)
            y1 = max(y0 + 1, int((p.y + p.height) * yscale))
            for y in range(y0, min(y1, height)):
                for x in range(x0, min(x1, width)):
                    grid[y][x] = mark
        border = "+" + "-" * width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        legend = "  ".join(
            f"{p.name[:1].upper()}={p.name}" for p in self.placements
        )
        return f"{border}\n{body}\n{border}\n{legend}"

    def render_svg(self) -> str:
        """SVG die plot (viewable in any browser)."""
        colors = ["#88c0d0", "#a3be8c", "#d8dee9", "#ebcb8b", "#b48ead"]
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'viewBox="0 0 {self.die_width_um:.0f} {self.die_height_um:.0f}">',
            f'<rect width="{self.die_width_um:.0f}" '
            f'height="{self.die_height_um:.0f}" fill="#2e3440"/>',
        ]
        for i, p in enumerate(self.placements):
            color = colors[i % len(colors)]
            parts.append(
                f'<rect x="{p.x:.0f}" y="{p.y:.0f}" width="{p.width:.0f}" '
                f'height="{p.height:.0f}" fill="{color}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{p.x + 8:.0f}" y="{p.y + p.height / 2:.0f}" '
                f'font-size="{max(self.die_width_um / 30, 10):.0f}">'
                f"{p.name}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)


def build_floorplan(
    area: AreaReport,
    p_bits: int = 18432,
    r_bits: int = 64512,
    tech: TechnologyModel = TSMC65GP,
    macro_aspect: float = 3.0,
) -> Floorplan:
    """Place the decoder: R and P macros on the top edge, cells below.

    Parameters
    ----------
    area:
        The design's area report (std cells + SRAM).
    p_bits / r_bits:
        Macro capacities (defaults: the paper's P and R SRAMs).
    macro_aspect:
        Width/height ratio of the SRAM macros (wide-shallow words).
    """
    if p_bits < 0 or r_bits < 0:
        raise ModelError("negative memory capacity")
    die_um2 = area.core_area_mm2 * 1e6
    die_w = math.sqrt(die_um2 / 0.85)  # slightly landscape die
    die_h = die_um2 / die_w

    placements: List[Placement] = []
    y = 0.0
    # R memory spans the top edge (the dominant macro of Fig 9).
    r_um2 = r_bits * tech.sram_bit_area_um2
    r_h = r_um2 / die_w
    placements.append(Placement("R memory (SRAM)", 0.0, y, die_w, r_h))
    y += r_h
    # P memory sits below it in the left corner, at the macro aspect.
    p_um2 = p_bits * tech.sram_bit_area_um2
    if p_um2 > 0:
        p_h = math.sqrt(p_um2 / macro_aspect)
        p_w = min(p_um2 / p_h, die_w)
        p_h = p_um2 / p_w
        placements.append(Placement("P memory (SRAM)", 0.0, y, p_w, p_h))
    else:
        p_h = 0.0
    # The standard-cell sea fills the remaining rows.
    cell_um2 = area.std_cell_mm2 * 1e6
    cell_y = y + p_h
    cell_h = cell_um2 / die_w
    if cell_y + cell_h > die_h + 1e-6:
        raise ModelError("placed area exceeds the die outline")
    placements.append(
        Placement(
            "standard cells (cores, shifter, control)",
            0.0,
            cell_y,
            die_w,
            cell_h,
        )
    )
    return Floorplan(die_w, die_h, placements)
