"""Area estimation over RTL netlists (the Design Compiler stand-in).

Standard-cell area = functional units (upsized by the timing model's
sizing factor at the target clock) + flip-flops for pipeline registers
and register-file macros + sharing muxes + a routing/control overhead
factor.  SRAM macros are reported separately, matching the paper's
Fig 8(b) which charts *standard cell* area only ("two architectures
would require the same amount of external SRAMs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.synth.library import cell

if TYPE_CHECKING:  # avoid a circular import with repro.hls at runtime
    from repro.hls.rtl import RtlModule
from repro.synth.tech65 import TSMC65GP, TechnologyModel
from repro.synth.timing import TimingModel

#: Clock-tree buffers, control FSMs, configuration/sequencing logic
#: for the 19 z-factors x 6 rate classes a full-WiMax decoder must
#: support, and routing cells beyond the datapath inventory, as a
#: fraction of counted standard-cell area.
_OVERHEAD_FRACTION = 0.30


@dataclass
class AreaReport(object):
    """Area decomposition of one design point.

    All areas are in mm^2; ``breakdown_ge`` keeps the raw gate-
    equivalent accounting for tests and power estimation.
    """

    std_cell_mm2: float
    sram_mm2: float
    breakdown_ge: Dict[str, float] = field(default_factory=dict)

    utilization: float = 0.75

    @property
    def total_mm2(self) -> float:
        """Placed standard cells plus SRAM macros."""
        return self.std_cell_mm2 + self.sram_mm2

    @property
    def core_area_mm2(self) -> float:
        """Table II's core area: placed area over layout utilization."""
        return self.total_mm2 / self.utilization

    @property
    def std_cell_ge(self) -> float:
        """Total standard-cell gate equivalents."""
        return sum(self.breakdown_ge.values())


def estimate_area(
    rtl: "RtlModule",
    clock_mhz: float,
    tech: TechnologyModel = TSMC65GP,
    timing: TimingModel = None,
) -> AreaReport:
    """Estimate silicon area of a netlist at a target clock."""
    timing = timing or TimingModel(tech)
    sizing = timing.sizing_factor(clock_mhz)

    fu_ge = rtl.total_fu_area_ge() * sizing
    ff_bits = rtl.total_register_bits() + rtl.regfile_bits()
    ff_ge = ff_bits * tech.ff_area_ge
    mux_ge = rtl.total_mux_inputs() * cell("mux").area_at(8)
    datapath_ge = fu_ge + ff_ge + mux_ge
    overhead_ge = datapath_ge * _OVERHEAD_FRACTION

    breakdown = {
        "functional_units": fu_ge,
        "registers": ff_ge,
        "muxes": mux_ge,
        "control_routing": overhead_ge,
    }
    std_cell_mm2 = tech.ge_to_mm2(sum(breakdown.values()))
    sram_mm2 = tech.sram_area_mm2(rtl.total_memory_bits(("sram",)))
    return AreaReport(
        std_cell_mm2, sram_mm2, breakdown, utilization=tech.layout_utilization
    )
