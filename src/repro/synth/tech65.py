"""Technology model for a TSMC-65nm-like general-purpose process.

All area, delay, and power estimation in the package funnels through
one :class:`TechnologyModel` instance, so a different process node is a
one-object swap.  The constants below are calibrated so the full flow
lands on the paper's absolute numbers (see EXPERIMENTS.md):

* gate-equivalent (2-input NAND) area of 1.44 um^2 — the usual 65 nm
  9-track figure;
* FO4 delay of 45 ps — worst-case corner at 0.9 V, which is the corner
  a 400 MHz sign-off is made at;
* leakage of ~14 nW per gate equivalent at 0.9 V (GP process), which reproduces the
  3.43 mW leakage of Table I at the pipelined decoder's ~0.3 mm^2 of
  standard cells;
* 10.6 fJ clock+internal energy per flip-flop toggle (including its
  share of the clock tree), which reproduces the 64.5 mW ungated
  sequential-internal power of Table I at 400 MHz;
* 2.4 fJ switching energy per gate equivalent per toggle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class TechnologyModel(object):
    """Process constants used by timing, area, and power estimation.

    Attributes
    ----------
    name:
        Display name of the process corner.
    ge_area_um2:
        Area of one gate equivalent (2-input NAND) in um^2.
    fo4_ps:
        Fanout-of-4 inverter delay in ps at the sign-off corner.
    ff_area_ge:
        D flip-flop area in gate equivalents.
    ff_clock_energy_fj:
        Internal + clock energy per flip-flop per clocked cycle (fJ),
        including amortized clock-tree energy.
    ge_switch_energy_fj:
        Dynamic energy per gate equivalent per output toggle (fJ).
    leakage_nw_per_ge:
        Static leakage per gate equivalent (nW) at nominal voltage.
    sram_bit_area_um2:
        Single-port SRAM macro density (um^2 per bit) for the
        decoder's wide-shallow macros (24-84 words x 768 bits), which
        are periphery-dominated.  Calibrated against Table II's [3]
        (Brack DATE'07): 0.551 mm^2 of memory for a comparable WiMax
        decoder's ~85 kbit.
    sram_access_energy_fj_per_bit:
        Read or write energy per bit accessed.
    sram_leakage_nw_per_kbit:
        SRAM macro leakage per kilobit.
    layout_utilization:
        Placement utilization: core area = placed cell + macro area
        divided by this factor (routing/whitespace).
    sequencing_overhead_ps:
        Flip-flop setup + clock-to-q + clock skew margin charged to
        every pipeline stage.
    """

    name: str = "TSMC 65nm GP 0.9V (modelled)"
    ge_area_um2: float = 1.44
    fo4_ps: float = 45.0
    ff_area_ge: float = 9.0
    ff_clock_energy_fj: float = 10.66
    ge_switch_energy_fj: float = 2.4
    leakage_nw_per_ge: float = 13.54
    sram_bit_area_um2: float = 6.5
    sram_access_energy_fj_per_bit: float = 45.0
    sram_leakage_nw_per_kbit: float = 250.0
    layout_utilization: float = 0.75
    sequencing_overhead_ps: float = 180.0

    def period_ps(self, clock_mhz: float) -> float:
        """Clock period in ps for a frequency in MHz."""
        if clock_mhz <= 0:
            raise ModelError(f"clock must be positive, got {clock_mhz} MHz")
        return 1.0e6 / clock_mhz

    def usable_period_ps(self, clock_mhz: float) -> float:
        """Period available to logic after sequencing overhead."""
        usable = self.period_ps(clock_mhz) - self.sequencing_overhead_ps
        if usable <= self.fo4_ps:
            raise ModelError(
                f"{clock_mhz} MHz leaves no usable logic time in this "
                f"technology (period {self.period_ps(clock_mhz):.0f} ps)"
            )
        return usable

    def fo4_budget(self, clock_mhz: float) -> float:
        """How many FO4 delays fit in one cycle at this clock."""
        return self.usable_period_ps(clock_mhz) / self.fo4_ps

    def ge_to_mm2(self, gate_equivalents: float) -> float:
        """Convert gate equivalents to silicon area in mm^2."""
        return gate_equivalents * self.ge_area_um2 * 1e-6

    def sram_area_mm2(self, bits: int) -> float:
        """Macro area of an SRAM of the given capacity."""
        if bits < 0:
            raise ModelError(f"negative SRAM size {bits}")
        return bits * self.sram_bit_area_um2 * 1e-6


#: The package-wide default technology instance.
TSMC65GP = TechnologyModel()
