"""65 nm synthesis models: technology constants, timing, and area.

This package stands in for the paper's Synopsys Design Compiler /
TSMC 65 nm 0.9 V flow (DESIGN.md section 2).  It provides

* :class:`TechnologyModel` with the ``TSMC65GP`` instance — gate-
  equivalent area, FO4 delay, per-gate leakage, and energy constants
  calibrated against the paper's Table I / Table II absolute numbers;
* a small standard-cell :mod:`library <repro.synth.library>` used to
  cost datapath operators;
* the :mod:`timing <repro.synth.timing>` model that converts a target
  clock into pipeline depths and sizing factors (the mechanism behind
  Fig 8's "latency and area increase with clock frequency");
* the :mod:`area <repro.synth.area>` estimator over RTL netlists.
"""

from repro.synth.tech65 import TSMC65GP, TechnologyModel
from repro.synth.library import STD_CELLS, StdCell, cell
from repro.synth.timing import TimingModel, TimingReport
from repro.synth.area import AreaReport, estimate_area

__all__ = [
    "TechnologyModel",
    "TSMC65GP",
    "StdCell",
    "STD_CELLS",
    "cell",
    "TimingModel",
    "TimingReport",
    "AreaReport",
    "estimate_area",
]
