"""A small standard-cell / operator library.

The HLS engine costs each IR operation by mapping it to one of these
operator cells.  Areas are in gate equivalents for an 8-bit operand
(the decoder's message width); delays are in FO4 units so they scale
with the technology's FO4 figure.  Widths other than 8 bits scale area
linearly and delay logarithmically (carry chains), which is accurate
enough for the ripple/prefix adders at these sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ModelError

_REFERENCE_WIDTH = 8


@dataclass(frozen=True)
class StdCell(object):
    """Cost record for one operator class at the reference width.

    Attributes
    ----------
    name:
        Operator class name, matching ``Op.kind`` in the HLS IR.
    area_ge:
        Area in gate equivalents at the 8-bit reference width.
    delay_fo4:
        Propagation delay in FO4 units at the reference width.
    """

    name: str
    area_ge: float
    delay_fo4: float

    def area_at(self, width: int) -> float:
        """Area in GE for an operand width (linear scaling)."""
        return self.area_ge * width / _REFERENCE_WIDTH

    def delay_at(self, width: int) -> float:
        """Delay in FO4 for an operand width (log carry scaling)."""
        if width <= 0:
            raise ModelError(f"width must be positive, got {width}")
        scale = math.log2(max(width, 2)) / math.log2(_REFERENCE_WIDTH)
        return self.delay_fo4 * max(scale, 0.5)


# Operator classes the decoder's datapath (and the example kernels) use.
# Areas reflect typical 65 nm synthesis results for 8-bit operators.
STD_CELLS: Dict[str, StdCell] = {
    cellspec.name: cellspec
    for cellspec in (
        StdCell("add", area_ge=38.0, delay_fo4=9.0),
        StdCell("sub", area_ge=42.0, delay_fo4=10.0),
        StdCell("abs", area_ge=22.0, delay_fo4=5.0),
        StdCell("neg", area_ge=20.0, delay_fo4=5.0),
        StdCell("min", area_ge=48.0, delay_fo4=11.0),  # compare + select
        StdCell("max", area_ge=48.0, delay_fo4=11.0),
        StdCell("cmp", area_ge=30.0, delay_fo4=9.0),
        StdCell("mux", area_ge=14.0, delay_fo4=3.0),
        StdCell("xor", area_ge=12.0, delay_fo4=2.0),
        StdCell("and", area_ge=8.0, delay_fo4=1.5),
        StdCell("or", area_ge=8.0, delay_fo4=1.5),
        StdCell("not", area_ge=4.0, delay_fo4=1.0),
        StdCell("shift_const", area_ge=0.0, delay_fo4=0.0),  # wiring only
        # log2(96)-stage barrel rotator, one 8-bit lane: 7 stages of
        # 2:1 muxes (~1.75 GE/bit) and ~2 FO4 per stage.
        StdCell("rotate", area_ge=98.0, delay_fo4=14.0),
        StdCell("scale34", area_ge=40.0, delay_fo4=8.0),  # (3x)>>2 shift-add
        StdCell("sat", area_ge=18.0, delay_fo4=4.0),  # saturation clamp
        StdCell("sign", area_ge=2.0, delay_fo4=0.5),  # MSB tap
        StdCell("mul", area_ge=300.0, delay_fo4=22.0),
        StdCell("copy", area_ge=0.0, delay_fo4=0.0),
        StdCell("const", area_ge=0.0, delay_fo4=0.0),
        StdCell("load", area_ge=10.0, delay_fo4=4.0),  # memory port logic
        StdCell("store", area_ge=10.0, delay_fo4=3.0),
    )
}


def cell(kind: str) -> StdCell:
    """Look up the cost cell for an operator kind."""
    try:
        return STD_CELLS[kind]
    except KeyError:
        raise ModelError(
            f"no library cell for operator kind {kind!r}; "
            f"known kinds: {sorted(STD_CELLS)}"
        ) from None
