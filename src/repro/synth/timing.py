"""Timing model: target clock -> pipeline depth and sizing factors.

This is the mechanism behind both panels of the paper's Fig 8.  PICO
"adjusts the design and finds the best solution for a given target
clock frequency": at a faster clock, less logic fits in a cycle, so

* combinational chains are cut into more pipeline stages — each core's
  latency in cycles grows, which grows the per-iteration latency
  (Fig 8a); and
* cells on critical paths are upsized and extra pipeline registers are
  inserted — area grows (Fig 8b).

:class:`TimingModel` captures both effects from two inputs: a logic
depth in FO4 units and a target clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.synth.tech65 import TSMC65GP, TechnologyModel

#: Above this fraction of the technology's practical speed limit,
#: synthesis starts paying steep upsizing costs.
_SIZING_KNEE = 0.35
#: Upsizing slope: area multiplier grows with (utilized speed)^2.
_SIZING_GAIN = 1.1
#: Wire-load growth per doubling of datapath lanes: a 96-lane 768-bit
#: structure (the decoder's barrel shifter, min networks) pays heavy
#: routing RC that a single 8-bit lane does not.
_WIRE_PENALTY_PER_OCTAVE = 0.18


@dataclass(frozen=True)
class TimingReport(object):
    """Pipelining decision for one combinational block.

    Attributes
    ----------
    stages:
        Number of pipeline stages the block is cut into (>= 1).
    stage_delay_ps:
        Logic delay of the longest resulting stage.
    slack_ps:
        Usable-period slack of that stage (negative = infeasible).
    sizing_factor:
        Area multiplier from gate upsizing at this clock (>= 1).
    """

    stages: int
    stage_delay_ps: float
    slack_ps: float
    sizing_factor: float

    @property
    def feasible(self) -> bool:
        """True iff the block meets timing at the target clock."""
        return self.slack_ps >= 0.0


class TimingModel(object):
    """Pipeline-depth and sizing decisions for a technology.

    Parameters
    ----------
    tech:
        Technology constants (default: the 65 nm model).
    max_stage_fo4:
        A practical cap on how finely retiming can cut a block: stages
        shorter than a couple of FO4 stop helping.
    """

    def __init__(
        self, tech: TechnologyModel = TSMC65GP, max_stage_fo4: float = 2.0
    ) -> None:
        self.tech = tech
        self.max_stage_fo4 = max_stage_fo4

    # ------------------------------------------------------------------
    # pipelining
    # ------------------------------------------------------------------
    def pipeline(self, logic_depth_fo4: float, clock_mhz: float) -> TimingReport:
        """Cut a block of the given FO4 depth to meet a clock target."""
        if logic_depth_fo4 < 0:
            raise ModelError(f"negative logic depth {logic_depth_fo4}")
        budget_fo4 = self.tech.fo4_budget(clock_mhz)
        stages = max(1, math.ceil(logic_depth_fo4 / budget_fo4))
        stage_fo4 = logic_depth_fo4 / stages
        stage_delay = stage_fo4 * self.tech.fo4_ps
        slack = self.tech.usable_period_ps(clock_mhz) - stage_delay
        if stage_fo4 < self.max_stage_fo4 and stages > 1:
            # Retiming cannot cut finer; report the floor and its slack.
            stages = max(1, math.ceil(logic_depth_fo4 / self.max_stage_fo4))
            stage_delay = self.max_stage_fo4 * self.tech.fo4_ps
            slack = self.tech.usable_period_ps(clock_mhz) - stage_delay
        return TimingReport(
            stages=stages,
            stage_delay_ps=stage_delay,
            slack_ps=slack,
            sizing_factor=self.sizing_factor(clock_mhz),
        )

    def stages_for(self, logic_depth_fo4: float, clock_mhz: float) -> int:
        """Just the stage count for a block at a clock target."""
        return self.pipeline(logic_depth_fo4, clock_mhz).stages

    def operation_latency(self, delay_fo4: float, clock_mhz: float) -> int:
        """Latency in cycles of a single operator at a clock target.

        Operators that fit in a cycle take 1; larger ones are pipelined.
        """
        return self.stages_for(delay_fo4, clock_mhz)

    def wire_penalty(self, simd: int) -> float:
        """Delay multiplier for lane-parallel (wide) datapaths.

        Routing dominates wide structures: each doubling of the lane
        count adds a fixed fraction of wire delay.  One lane pays
        nothing; the decoder's 96-lane word pays about 2.2x.
        """
        if simd <= 1:
            return 1.0
        return 1.0 + _WIRE_PENALTY_PER_OCTAVE * math.log2(simd)

    def effective_delay_fo4(self, delay_fo4: float, simd: int) -> float:
        """Operator delay including the wire-load penalty."""
        return delay_fo4 * self.wire_penalty(simd)

    # ------------------------------------------------------------------
    # sizing / fmax
    # ------------------------------------------------------------------
    def sizing_factor(self, clock_mhz: float) -> float:
        """Area multiplier from upsizing gates at this clock.

        Grows quadratically once the clock exceeds a knee fraction of
        the technology's practical limit; this is what bends the Fig 8b
        area curves upward at 300-400 MHz.
        """
        speed = clock_mhz / self.practical_fmax_mhz()
        if speed <= _SIZING_KNEE:
            return 1.0
        return 1.0 + _SIZING_GAIN * (speed - _SIZING_KNEE) ** 2

    def practical_fmax_mhz(self) -> float:
        """The fastest clock the model considers routable.

        Set by the minimum stage depth plus sequencing overhead: with a
        2-FO4 floor and 180 ps of overhead at 45 ps FO4, this is about
        3.7 GHz of raw sequencing limit; real designs stop well short,
        so a 6x margin is applied, landing near the 400-600 MHz range
        typical of 65 nm signal-processing blocks.
        """
        min_period = (
            self.max_stage_fo4 * self.tech.fo4_ps + self.tech.sequencing_overhead_ps
        )
        return 1.0e6 / (6.0 * min_period)

    def achievable_fmax_mhz(self, logic_depth_fo4: float, max_stages: int) -> float:
        """Highest clock a block can reach with a stage budget."""
        if max_stages < 1:
            raise ModelError(f"max_stages must be >= 1, got {max_stages}")
        stage_fo4 = max(logic_depth_fo4 / max_stages, self.max_stage_fo4)
        period = stage_fo4 * self.tech.fo4_ps + self.tech.sequencing_overhead_ps
        return min(1.0e6 / period, self.practical_fmax_mhz())
