"""EXP-EXT2 — cross-standard evaluation: 802.11n through this decoder.

Table II compares against [2] (Rovini), an 802.11n decoder: 1944-bit
code, 240 MHz, 178 Mbps, 5.75 us.  The paper's architectures are
code-family agnostic (the parity-check ROM sequences any QC code whose
z fits the lanes), so this extension runs the 802.11n (1944, 1/2) code
through our two-layer pipelined architecture — first at [2]'s 240 MHz
for an apples-to-apples schedule comparison, then at the full 400 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.arch import ArchConfig, TwoLayerPipelinedArch
from repro.channel import AwgnChannel
from repro.codes import wifi_code
from repro.encoder import RuEncoder
from repro.eval.paper_ref import COMPARISON_DECODERS
from repro.utils.tables import render_table


@dataclass
class WifiPoint(object):
    """One clock point of the 802.11n evaluation."""

    clock_mhz: float
    cycles: int
    iterations: int
    latency_us: float
    throughput_mbps: float


def run_wifi_comparison(
    clocks=(240.0, 400.0), iterations: int = 10, seed: int = 5
) -> List[WifiPoint]:
    """Run the (1944, 1/2) 802.11n code through the pipelined decoder."""
    code = wifi_code("1/2", 1944)
    encoder = RuEncoder(code)
    rng = np.random.default_rng(seed)
    message = rng.integers(0, 2, encoder.k).astype(np.uint8)
    codeword = encoder.encode(message)
    llrs = AwgnChannel.from_ebno(2.5, code.rate, seed=rng).llrs(codeword)

    points: List[WifiPoint] = []
    for clock in clocks:
        config = ArchConfig.from_hls(
            code,
            clock,
            "pipelined",
            early_termination=False,
            max_iterations=iterations,
        )
        result = TwoLayerPipelinedArch(config).decode(llrs)
        points.append(
            WifiPoint(
                clock_mhz=clock,
                cycles=result.cycles,
                iterations=result.decode.iterations,
                latency_us=result.latency_us,
                throughput_mbps=result.throughput_mbps(code.k),
            )
        )
    return points


def format_wifi_comparison(points: List[WifiPoint]) -> str:
    """Render our 802.11n numbers next to [2]'s published row."""
    rovini = COMPARISON_DECODERS[0]
    rows = [
        [
            f"this work @{p.clock_mhz:.0f} MHz",
            p.cycles,
            f"{p.latency_us:.2f}",
            f"{p.throughput_mbps:.0f}",
        ]
        for p in points
    ]
    rows.append(
        [
            rovini["name"],
            "-",
            f"{rovini['latency_us']:.2f}",
            f"{rovini['throughput_mbps']:.0f}",
        ]
    )
    return render_table(
        ["decoder (802.11n 1944, R=1/2)", "cycles", "latency us", "Mbps"],
        rows,
        title="Extension — cross-standard: 802.11n through this architecture",
    )
