"""EXP-EXT1 — effective throughput vs SNR with early termination.

Table II's 415 Mbps is the *worst-case* (10-iteration) number.  The
paper's top level "can return early if all the parity checks are
satisfied", and the programs carry a zero-cycle on-the-fly syndrome
accumulator, so the *average* latency at operating SNRs is far lower —
an extension measurement the paper implies but never charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arch import ArchConfig, TwoLayerPipelinedArch
from repro.channel import AwgnChannel
from repro.codes import wimax_code
from repro.encoder import RuEncoder
from repro.utils.tables import render_table


@dataclass
class ThroughputPoint(object):
    """Average decode behaviour at one Eb/N0 point."""

    ebno_db: float
    frames: int
    avg_iterations: float
    avg_cycles: float
    effective_mbps: float
    worst_case_mbps: float


def run_throughput_snr(
    ebno_db_points: Sequence[float] = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    frames: int = 12,
    clock_mhz: float = 400.0,
    seed: int = 77,
) -> List[ThroughputPoint]:
    """Sweep SNR and measure average-case pipelined throughput."""
    code = wimax_code("1/2", 2304)
    encoder = RuEncoder(code)
    rng = np.random.default_rng(seed)

    config = ArchConfig.from_hls(
        code, clock_mhz, "pipelined", early_termination=True
    )
    worst_config = ArchConfig.from_hls(
        code, clock_mhz, "pipelined", early_termination=False
    )
    worst = TwoLayerPipelinedArch(worst_config).decode(
        _frame(code, encoder, 2.5, rng)
    )
    worst_mbps = worst.throughput_mbps(code.k)

    points: List[ThroughputPoint] = []
    for ebno in ebno_db_points:
        cycles = []
        iterations = []
        for _ in range(frames):
            llrs = _frame(code, encoder, ebno, rng)
            result = TwoLayerPipelinedArch(config).decode(llrs)
            cycles.append(result.cycles)
            iterations.append(result.decode.iterations)
        avg_cycles = float(np.mean(cycles))
        points.append(
            ThroughputPoint(
                ebno_db=ebno,
                frames=frames,
                avg_iterations=float(np.mean(iterations)),
                avg_cycles=avg_cycles,
                effective_mbps=code.k * clock_mhz / avg_cycles,
                worst_case_mbps=worst_mbps,
            )
        )
    return points


def _frame(code, encoder, ebno_db, rng) -> np.ndarray:
    message = rng.integers(0, 2, encoder.k).astype(np.uint8)
    codeword = encoder.encode(message)
    channel = AwgnChannel.from_ebno(ebno_db, code.rate, seed=rng)
    return channel.llrs(codeword)


def format_throughput_snr(points: List[ThroughputPoint]) -> str:
    """Render the SNR sweep table."""
    rows = [
        [
            p.ebno_db,
            f"{p.avg_iterations:.1f}",
            f"{p.avg_cycles:.0f}",
            f"{p.effective_mbps:.0f}",
        ]
        for p in points
    ]
    worst = points[0].worst_case_mbps if points else 0.0
    return render_table(
        ["Eb/N0 dB", "avg iters", "avg cycles", "effective Mbps"],
        rows,
        title=(
            "Extension — effective throughput vs SNR with early "
            f"termination (worst case {worst:.0f} Mbps at 10 iterations)"
        ),
    )
