"""EXP-EXT5 — message quantization study.

Table II reports "Quantization 6" against competitors at 5 and 6 bits,
while Section IV-A fixes the implemented P/R messages at 8 bits.  The
design question behind those numbers: how many message bits does the
layered scaled-min-sum decoder need before the error-rate loss against
floating point becomes negligible?  This sweep measures FER at a fixed
near-threshold SNR across formats — the plot every fixed-point decoder
paper carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.channel.quantize import FixedPointFormat
from repro.codes import wimax_code
from repro.codes.qc import QCLDPCCode
from repro.decoder import LayeredMinSumDecoder
from repro.eval.ber import BerPoint, run_ber
from repro.utils.tables import render_table

#: total bits -> fraction bits: keep ~the same dynamic range (+/-31.75)
#: while the LSB shrinks, which is how hardware teams scale formats.
_DEFAULT_FORMATS = {
    4: FixedPointFormat(4, 0),
    5: FixedPointFormat(5, 1),
    6: FixedPointFormat(6, 1),
    7: FixedPointFormat(7, 2),
    8: FixedPointFormat(8, 2),
}


@dataclass
class QuantizationPoint(object):
    """FER of one message format at the probe SNR."""

    label: str
    total_bits: Optional[int]
    point: BerPoint


def run_quantization_study(
    code: Optional[QCLDPCCode] = None,
    bit_widths: Sequence[int] = (4, 5, 6, 8),
    ebno_db: float = 2.6,
    max_frames: int = 120,
    min_frame_errors: int = 60,
    seed: int = 17,
) -> List[QuantizationPoint]:
    """Sweep message formats plus the float reference."""
    code = code or wimax_code("1/2", 576)
    results: List[QuantizationPoint] = []

    float_decoder = LayeredMinSumDecoder(code, max_iterations=10)
    (ref,) = run_ber(
        code, float_decoder.decode, [ebno_db],
        max_frames=max_frames, min_frame_errors=min_frame_errors, seed=seed,
    )
    results.append(QuantizationPoint("float", None, ref))

    for bits in bit_widths:
        fmt = _DEFAULT_FORMATS[bits]
        decoder = LayeredMinSumDecoder(
            code, max_iterations=10, fixed=True, fmt=fmt
        )
        (point,) = run_ber(
            code, decoder.decode, [ebno_db],
            max_frames=max_frames, min_frame_errors=min_frame_errors,
            seed=seed,
        )
        results.append(QuantizationPoint(f"{bits}-bit", bits, point))
    return results


def format_quantization_study(
    points: List[QuantizationPoint], ebno_db: float = 2.6
) -> str:
    """Render the format sweep."""
    rows = [
        [
            p.label,
            p.point.frames,
            f"{p.point.fer:.3f}",
            f"{p.point.ber:.2e}",
            f"{p.point.avg_iterations:.1f}",
        ]
        for p in points
    ]
    return render_table(
        ["format", "frames", "FER", "BER", "avg iters"],
        rows,
        title=(
            f"Extension — message quantization at {ebno_db} dB "
            "(paper implements 8-bit; Table II reports 6)"
        ),
    )
