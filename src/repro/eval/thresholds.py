"""EXP-EXT6 — asymptotic decoding thresholds of the code families.

Density evolution (BEC) over the *measured* degree distributions of
every 802.16e rate class: how far each ensemble sits from its Shannon
limit.  This is the asymptotic counterpart of the finite-length BER
waterfalls — and a sanity check that the standard's irregular profiles
were chosen well (each beats the regular ensemble of the same rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.codes import wimax_code
from repro.codes.density_evolution import BecDensityEvolution
from repro.utils.tables import render_table


@dataclass
class ThresholdPoint(object):
    """One ensemble's asymptotic numbers."""

    label: str
    rate: float
    threshold: float
    capacity: float

    @property
    def gap_to_capacity(self) -> float:
        """Shannon-limit distance in erasure probability."""
        return self.capacity - self.threshold

    @property
    def efficiency(self) -> float:
        """threshold / capacity — 1.0 is the Shannon limit."""
        return self.threshold / self.capacity if self.capacity else 0.0


def run_thresholds(
    rates: Sequence[str] = ("1/2", "2/3A", "3/4A", "5/6"),
    n: int = 576,
    tolerance: float = 5e-4,
) -> List[ThresholdPoint]:
    """BEC thresholds of the WiMax rate classes plus regular baselines."""
    points: List[ThresholdPoint] = []
    for rate in rates:
        code = wimax_code(rate, n)
        de = BecDensityEvolution.for_code(code)
        points.append(
            ThresholdPoint(
                label=f"802.16e r{rate}",
                rate=code.rate,
                threshold=de.threshold(tolerance),
                capacity=1.0 - code.rate,
            )
        )
    regular = BecDensityEvolution.regular(3, 6)
    points.append(
        ThresholdPoint(
            label="regular (3,6) baseline",
            rate=0.5,
            threshold=regular.threshold(tolerance),
            capacity=0.5,
        )
    )
    return points


def format_thresholds(points: List[ThresholdPoint]) -> str:
    """Render the threshold comparison."""
    rows = [
        [
            p.label,
            f"{p.rate:.3f}",
            f"{p.threshold:.4f}",
            f"{p.capacity:.3f}",
            f"{p.efficiency:.1%}",
        ]
        for p in points
    ]
    return render_table(
        ["ensemble", "rate", "BEC threshold", "capacity", "efficiency"],
        rows,
        title=(
            "Extension — asymptotic (density-evolution) thresholds of "
            "the supported ensembles"
        ),
    )
