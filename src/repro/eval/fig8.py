"""Fig 8 reproduction: latency and area vs target clock frequency.

Panel (a): latency per decoding iteration in cycles, per-layer vs
two-layer pipelined, at 100/200/300/400 MHz — measured by running the
cycle-accurate simulators on the shared reference frame with early
termination disabled (steady-state cycles / iterations).

Panel (b): total standard-cell area in mm^2 for the same sweep —
estimated from the compiled netlist at each target clock (SRAM macros
excluded, as in the paper: "two architectures would require the same
amount of external SRAMs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.eval.designs import design_point
from repro.eval.paper_ref import FIG8_SHAPE
from repro.utils.tables import render_table

_ARCHS = ("perlayer", "pipelined")


@dataclass
class Fig8Point(object):
    """One (architecture, clock) sample of both panels."""

    architecture: str
    clock_mhz: float
    cycles_per_iteration: float
    std_cell_area_mm2: float
    core1_depth: int
    core2_depth: int
    stall_cycles_per_iteration: float


def run_fig8(clocks: Sequence[float] = FIG8_SHAPE["clocks_mhz"]) -> List[Fig8Point]:
    """Measure both panels of Fig 8 over the clock sweep."""
    points: List[Fig8Point] = []
    for arch in _ARCHS:
        for clock in clocks:
            point = design_point(arch, clock)
            result = point.decode_reference_frame()
            iters = max(result.decode.iterations, 1)
            points.append(
                Fig8Point(
                    architecture=arch,
                    clock_mhz=clock,
                    cycles_per_iteration=result.cycles / iters,
                    std_cell_area_mm2=point.hls.area().std_cell_mm2,
                    core1_depth=point.config.core1_depth,
                    core2_depth=point.config.core2_depth,
                    stall_cycles_per_iteration=result.trace.stall_cycles / iters,
                )
            )
    return points


def format_fig8(points: List[Fig8Point]) -> str:
    """Render both panels the way the paper charts them."""
    rows_a = []
    rows_b = []
    for p in points:
        rows_a.append(
            [
                p.architecture,
                int(p.clock_mhz),
                f"{p.cycles_per_iteration:.1f}",
                p.core1_depth,
                p.core2_depth,
                f"{p.stall_cycles_per_iteration:.1f}",
            ]
        )
        rows_b.append(
            [p.architecture, int(p.clock_mhz), f"{p.std_cell_area_mm2:.3f}"]
        )
    a = render_table(
        ["architecture", "clock MHz", "cycles/iter", "d1", "d2", "stalls/iter"],
        rows_a,
        title="Fig 8(a) — latency per iteration vs target clock "
        "(paper axis: 0-250 cycles; pipelined @400 ~= 112)",
    )
    b = render_table(
        ["architecture", "clock MHz", "std-cell mm^2"],
        rows_b,
        title="Fig 8(b) — standard-cell area vs target clock "
        "(paper axis: 0-0.5 mm^2; both curves rise with clock)",
    )
    return f"{a}\n\n{b}"
