"""Table I reproduction: SpyGlass power with and without clock gating."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.designs import design_point
from repro.eval.paper_ref import TABLE1
from repro.power import SpyGlassEstimator, SpyGlassReport
from repro.utils.tables import render_table


@dataclass
class Table1Result(object):
    """Measured report plus the activity trace it was derived from."""

    report: SpyGlassReport
    clock_mhz: float


def run_table1(clock_mhz: float = 400.0) -> Table1Result:
    """Estimate the pipelined decoder's power decomposition."""
    point = design_point("pipelined", clock_mhz)
    run = point.decode_reference_frame()
    estimator = SpyGlassEstimator()
    report = estimator.estimate(point.hls, run.trace, point.q_depth_words)
    return Table1Result(report, clock_mhz)


def format_table1(result: Table1Result) -> str:
    """Render the paper-vs-measured comparison."""
    w = result.report.with_gating
    wo = result.report.without_gating
    ref_w = TABLE1["with_gating"]
    ref_wo = TABLE1["without_gating"]
    rows = [
        [
            "W/ clock-gating (paper)",
            ref_w["leakage"],
            ref_w["internal"],
            ref_w["switching"],
            ref_w["total"],
        ],
        [
            "W/ clock-gating (measured)",
            round(w.leakage_mw, 2),
            round(w.internal_mw, 1),
            round(w.switching_mw, 1),
            round(w.total_mw, 1),
        ],
        [
            "W/O clock-gating (paper)",
            ref_wo["leakage"],
            ref_wo["internal"],
            ref_wo["switching"],
            ref_wo["total"],
        ],
        [
            "W/O clock-gating (measured)",
            round(wo.leakage_mw, 2),
            round(wo.internal_mw, 1),
            round(wo.switching_mw, 1),
            round(wo.total_mw, 1),
        ],
    ]
    table = render_table(
        ["Power (mW)", "Leakage", "Internal", "Switching", "Total"],
        rows,
        title="Table I — SpyGlass power estimates, standard cells only",
    )
    saving = result.report.internal_saving
    return (
        f"{table}\n"
        f"sequential-internal saving from gating: measured "
        f"{saving * 100:.0f}% (paper {TABLE1['internal_saving'] * 100:.0f}%)"
    )
