"""Evaluation harness: regenerate every table and figure of the paper.

One module per paper artifact:

* :mod:`fig8` — latency/iteration and standard-cell area vs target
  clock for both architectures (Fig 8a/8b);
* :mod:`table1` — SpyGlass-style power with/without clock gating;
* :mod:`table2` — the comparison table against the hand-coded decoders
  [2] (Rovini, GLOBECOM'07) and [3] (Brack, DATE'07);
* :mod:`schedules` — the Fig 4 / Fig 6 schedule timelines and the
  ~50% core-utilization observation;
* :mod:`scalability` — the Fig 3 parallelism sweep (96/48/... cores);
* :mod:`ber` — Monte-Carlo error-rate harness (Algorithm 1 validation).

:data:`experiments.EXPERIMENTS` is the registry keyed by experiment id
(EXP-F8A, EXP-T1, ...), mirroring DESIGN.md's per-experiment index; the
benchmark suite runs each entry and prints paper-vs-measured rows.
"""

from repro.eval.paper_ref import PAPER
from repro.eval.fig8 import Fig8Point, run_fig8
from repro.eval.table1 import run_table1
from repro.eval.table2 import run_table2
from repro.eval.schedules import run_schedules
from repro.eval.scalability import run_scalability
from repro.eval.ber import BerPoint, run_ber
from repro.eval.throughput_snr import ThroughputPoint, run_throughput_snr
from repro.eval.wifi_comparison import WifiPoint, run_wifi_comparison
from repro.eval.convergence import (
    ConvergenceCurve,
    default_decoders,
    measure_convergence,
)
from repro.eval.quantization import QuantizationPoint, run_quantization_study
from repro.eval.thresholds import ThresholdPoint, run_thresholds
from repro.eval.design_space import DesignSpacePoint, run_design_space
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.summary import build_report, write_reproduction_report

__all__ = [
    "PAPER",
    "Fig8Point",
    "run_fig8",
    "run_table1",
    "run_table2",
    "run_schedules",
    "run_scalability",
    "BerPoint",
    "run_ber",
    "EXPERIMENTS",
    "run_experiment",
    "ThroughputPoint",
    "run_throughput_snr",
    "WifiPoint",
    "run_wifi_comparison",
    "ConvergenceCurve",
    "default_decoders",
    "measure_convergence",
    "QuantizationPoint",
    "run_quantization_study",
    "ThresholdPoint",
    "run_thresholds",
    "DesignSpacePoint",
    "run_design_space",
    "build_report",
    "write_reproduction_report",
]
