"""Reference values transcribed from the paper, for side-by-side output.

Everything the evaluation section states numerically lives here, so the
benchmark reports can print paper-vs-measured without magic numbers
scattered through the harness.
"""

from __future__ import annotations

#: Table II, plus headline statements from the abstract/Section V.
PAPER = {
    "clock_mhz": 400.0,
    "iterations": 10,
    "code_length": 2304,
    "code_rate": 0.5,
    "core_area_mm2": 1.2,  # standard cells + SRAMs
    "max_power_mw": 180.0,
    "memory_bits": 82944,
    "throughput_mbps": 415.0,  # information bits at R = 1/2
    "latency_us": 2.8,
    "quantization_bits": 6,  # as reported in the Table II comparison
    "message_bits": 8,  # Section IV-A: 8-bit fixed-point P/R messages
    # Derived anchor: 2.8 us at 400 MHz over 10 iterations.
    "cycles_per_iteration": 112.0,
}

#: Table I: SpyGlass power estimates (standard cells only), in mW.
TABLE1 = {
    "with_gating": {"leakage": 3.43, "internal": 46.1, "switching": 22.5, "total": 72.0},
    "without_gating": {"leakage": 3.43, "internal": 64.5, "switching": 22.5, "total": 90.4},
    "internal_saving": 0.29,
}

#: Table II reference rows for the hand-coded comparison decoders.
COMPARISON_DECODERS = [
    {
        "name": "[2] Rovini GLOBECOM'07 (802.11n)",
        "core_area_mm2": 0.74,
        "max_frequency_mhz": 240.0,
        "max_power_mw": 235.0,
        "technology_nm": 65,
        "quantization_bits": 5,
        "iterations": "13",
        "max_code_length": 1944,
        "memory_bits": 68256,
        "throughput_mbps": 178.0,
        "latency_us": 5.75,
    },
    {
        "name": "[3] Brack DATE'07 (WiMax)",
        "core_area_mm2": 1.337,
        "max_frequency_mhz": 400.0,
        "max_power_mw": float("nan"),
        "technology_nm": 65,
        "quantization_bits": 6,
        "iterations": "25-20",
        "max_code_length": 2304,
        "memory_bits": None,  # reported as 0.551 mm^2, not bits
        "throughput_mbps": 333.0,
        "latency_us": 6.0,
    },
]

#: Fig 8 qualitative expectations (the plot publishes no data table).
FIG8_SHAPE = {
    "clocks_mhz": (100.0, 200.0, 300.0, 400.0),
    "latency_axis_max_cycles": 250,
    "area_axis_max_mm2": 0.5,
    # Both curves rise with clock; pipelined is faster but larger.
    "perlayer_over_pipelined_latency": 2.0,
}
