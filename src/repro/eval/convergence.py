"""Convergence analysis: syndrome decay across iterations.

The per-iteration unsatisfied-check counts every decoder records
(``DecodeResult.iteration_syndromes``) make schedule comparisons
visible at a finer grain than final error rates: layered decoding's
~2x advantage over flooding shows up as a syndrome curve dropping
roughly twice as fast.  The extension experiment averages those curves
over frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.channel import AwgnChannel
from repro.codes.qc import QCLDPCCode
from repro.decoder import FloodingDecoder, LayeredMinSumDecoder
from repro.decoder.result import DecodeResult
from repro.encoder import RuEncoder
from repro.utils.rng import SeedLike, as_generator
from repro.utils.tables import render_table

DecoderFn = Callable[[np.ndarray], DecodeResult]


@dataclass
class ConvergenceCurve(object):
    """Average residual syndrome weight per iteration for one decoder."""

    label: str
    mean_syndrome: List[float]
    converged_fraction: List[float]

    def iterations_to_clear(self) -> float:
        """First iteration index (1-based) where >= 90% of frames
        converged; ``inf`` if never reached."""
        for i, frac in enumerate(self.converged_fraction):
            if frac >= 0.9:
                return float(i + 1)
        return float("inf")


def measure_convergence(
    code: QCLDPCCode,
    decoders: Dict[str, DecoderFn],
    ebno_db: float = 2.5,
    frames: int = 10,
    iterations: int = 20,
    seed: SeedLike = 3,
) -> List[ConvergenceCurve]:
    """Average syndrome-decay curves over random frames.

    Decoders must be configured with ``early_termination=False`` (or
    tolerate it); shorter records are padded with their final value so
    early-converging decoders still chart correctly.
    """
    rng = as_generator(seed)
    encoder = RuEncoder(code)
    llr_frames = []
    for _ in range(frames):
        message = rng.integers(0, 2, encoder.k).astype(np.uint8)
        codeword = encoder.encode(message)
        llr_frames.append(
            AwgnChannel.from_ebno(ebno_db, code.rate, seed=rng).llrs(codeword)
        )

    curves: List[ConvergenceCurve] = []
    for label, decoder in decoders.items():
        syndromes = np.zeros((frames, iterations))
        converged = np.zeros((frames, iterations))
        for f, llrs in enumerate(llr_frames):
            record = decoder(llrs).iteration_syndromes
            padded = list(record) + [record[-1]] * (iterations - len(record))
            syndromes[f] = padded[:iterations]
            converged[f] = [s == 0 for s in padded[:iterations]]
        curves.append(
            ConvergenceCurve(
                label,
                mean_syndrome=list(syndromes.mean(axis=0)),
                converged_fraction=list(converged.mean(axis=0)),
            )
        )
    return curves


def default_decoders(code: QCLDPCCode, iterations: int = 20) -> Dict[str, DecoderFn]:
    """The canonical schedule comparison: layered vs flooding."""
    return {
        "layered 0.75": LayeredMinSumDecoder(
            code, max_iterations=iterations, early_termination=False
        ).decode,
        "flooding 0.75": FloodingDecoder(
            code,
            max_iterations=iterations,
            check_rule="min-sum",
            scaling_factor=0.75,
            early_termination=False,
        ).decode,
    }


def format_convergence(curves: List[ConvergenceCurve], every: int = 2) -> str:
    """Render the decay curves side by side."""
    iterations = len(curves[0].mean_syndrome)
    picks = list(range(0, iterations, every))
    headers = ["iteration"] + [c.label for c in curves]
    rows = []
    for i in picks:
        rows.append(
            [i + 1] + [f"{c.mean_syndrome[i]:.1f}" for c in curves]
        )
    table = render_table(
        headers, rows, title="Convergence — mean unsatisfied checks per iteration"
    )
    clears = ", ".join(
        f"{c.label}: {c.iterations_to_clear():.0f}" for c in curves
    )
    return f"{table}\niterations to 90% frame convergence — {clears}"
