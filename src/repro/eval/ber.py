"""Monte-Carlo error-rate harness (Algorithm 1 validation).

The paper motivates LDPC with "excellent error correction performance"
and fixes the decoder at 10 layered scaled-min-sum iterations; this
harness measures BER/FER waterfalls for any decoder configuration so
the algorithmic claims (layered ~= 2x faster convergence than flooding,
0.75 scaling beating plain min-sum, 8-bit fixed-point tracking float)
can be demonstrated and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.channel import AwgnChannel
from repro.codes.qc import QCLDPCCode
from repro.decoder.result import DecodeResult
from repro.encoder import RuEncoder
from repro.utils.rng import SeedLike, as_generator

DecoderFn = Callable[[np.ndarray], DecodeResult]


@dataclass
class BerPoint(object):
    """Error statistics at one Eb/N0 point."""

    ebno_db: float
    frames: int
    bit_errors: int
    frame_errors: int
    total_bits: int
    avg_iterations: float

    @property
    def ber(self) -> float:
        """Information bit error rate."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def fer(self) -> float:
        """Frame error rate."""
        return self.frame_errors / self.frames if self.frames else 0.0


def run_ber(
    code: QCLDPCCode,
    decoder: DecoderFn,
    ebno_db_points: Sequence[float],
    max_frames: int = 200,
    min_frame_errors: int = 20,
    seed: SeedLike = 0,
) -> List[BerPoint]:
    """Measure a BER/FER waterfall.

    Each Eb/N0 point runs until ``min_frame_errors`` frame errors or
    ``max_frames`` frames, whichever first — the standard Monte-Carlo
    stopping rule.
    """
    rng = as_generator(seed)
    encoder = RuEncoder(code)
    points: List[BerPoint] = []
    for ebno in ebno_db_points:
        channel = AwgnChannel.from_ebno(ebno, code.rate, seed=rng)
        frames = bit_errors = frame_errors = 0
        iteration_sum = 0
        while frames < max_frames and frame_errors < min_frame_errors:
            message = rng.integers(0, 2, encoder.k).astype(np.uint8)
            codeword = encoder.encode(message)
            result = decoder(channel.llrs(codeword))
            frames += 1
            iteration_sum += result.iterations
            errors = int(
                np.count_nonzero(result.bits[: encoder.k] != message)
            )
            bit_errors += errors
            frame_errors += errors > 0
        points.append(
            BerPoint(
                ebno_db=ebno,
                frames=frames,
                bit_errors=bit_errors,
                frame_errors=frame_errors,
                total_bits=frames * encoder.k,
                avg_iterations=iteration_sum / frames if frames else 0.0,
            )
        )
    return points
