"""Experiment registry: DESIGN.md's per-experiment index, runnable.

Each entry regenerates one paper artifact and returns a printable
report.  ``python -m repro.eval <EXP-ID>`` runs one from the command
line; the benchmark suite runs them all.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.eval.fig8 import format_fig8, run_fig8
from repro.eval.scalability import format_scalability, run_scalability
from repro.eval.schedules import format_schedules, run_schedules
from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2
from repro.eval.throughput_snr import format_throughput_snr, run_throughput_snr
from repro.eval.wifi_comparison import format_wifi_comparison, run_wifi_comparison
from repro.eval.quantization import (
    format_quantization_study,
    run_quantization_study,
)
from repro.eval.convergence import (
    default_decoders,
    format_convergence,
    measure_convergence,
)
from repro.eval.design_space import format_design_space, run_design_space
from repro.eval.thresholds import format_thresholds, run_thresholds


def _exp_fig8() -> str:
    return format_fig8(run_fig8())


def _exp_table1() -> str:
    return format_table1(run_table1())


def _exp_table2() -> str:
    return format_table2(run_table2())


def _exp_schedules() -> str:
    return format_schedules(run_schedules())


def _exp_scalability() -> str:
    return format_scalability(run_scalability())


def _exp_throughput_snr() -> str:
    return format_throughput_snr(run_throughput_snr(frames=6))


def _exp_wifi() -> str:
    return format_wifi_comparison(run_wifi_comparison())


def _exp_quantization() -> str:
    return format_quantization_study(
        run_quantization_study(max_frames=80, min_frame_errors=80)
    )


def _exp_fig9() -> str:
    from repro.eval.designs import design_point
    from repro.synth.floorplan import build_floorplan

    point = design_point("pipelined", 400.0)
    plan = build_floorplan(point.hls.area())
    return (
        "Fig 9 - VLSI layout view (modelled floorplan):\n"
        + plan.render_ascii(width=60)
        + f"\ndie {plan.die_area_mm2:.2f} mm^2 at "
        + f"{plan.utilization():.0%} utilization (paper: 1.2 mm^2)"
    )


def _exp_design_space() -> str:
    return format_design_space(run_design_space())


def _exp_thresholds() -> str:
    return format_thresholds(run_thresholds())


def _exp_convergence() -> str:
    from repro.codes import wimax_code

    code = wimax_code("1/2", 576)
    curves = measure_convergence(
        code, default_decoders(code, iterations=16), frames=8, iterations=16
    )
    return format_convergence(curves)


#: Experiment id -> report generator (ids match DESIGN.md section 4).
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "EXP-F8A": _exp_fig8,  # both Fig 8 panels share one sweep
    "EXP-F8B": _exp_fig8,
    "EXP-T1": _exp_table1,
    "EXP-T2": _exp_table2,
    "EXP-F4F6": _exp_schedules,
    "EXP-F3": _exp_scalability,
    # Extensions beyond the paper's published artifacts.
    "EXP-EXT1": _exp_throughput_snr,
    "EXP-EXT2": _exp_wifi,
    "EXP-EXT5": _exp_quantization,
    "EXP-F9": _exp_fig9,
    "EXP-ALG2": _exp_convergence,
    "EXP-DSE": _exp_design_space,
    "EXP-EXT6": _exp_thresholds,
}


def run_experiment(exp_id: str) -> str:
    """Run one experiment by id and return its report text."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]()
