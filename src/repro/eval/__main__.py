"""Command-line entry: ``python -m repro.eval [EXP-ID ...]``.

With no arguments, every registered experiment runs in order.
"""

from __future__ import annotations

import sys

from repro.eval.experiments import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    """Run the requested experiments (default: all) and print reports."""
    args = list(sys.argv[1:] if argv is None else argv)
    ids = args or sorted(EXPERIMENTS)
    seen = set()
    for exp_id in ids:
        fn = EXPERIMENTS.get(exp_id.upper())
        if fn in seen:
            continue  # Fig 8a/8b share one sweep; print it once
        seen.add(fn)
        print(f"=== {exp_id.upper()} " + "=" * 40)
        print(run_experiment(exp_id))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
