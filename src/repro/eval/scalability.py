"""Fig 3 reproduction: scalable parallelism via the unroll factor.

The paper's Fig 3 shows PICO generating 96 decoder cores from a fully
unrolled loop, or 48 cores (at twice the passes) from a partial unroll.
Here the parallelism knob sweeps {96, 48, 24, 12} on the pipelined
design: datapath lane-units scale with the factor, cycles scale
inversely — throughput/area becomes a tunable trade-off, which is the
figure's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch import ArchConfig, TwoLayerPipelinedArch
from repro.codes import wimax_code
from repro.eval.designs import reference_frame
from repro.hls import PicoCompiler
from repro.hls.programs import DecoderProfile, build_pipelined_program
from repro.utils.tables import render_table


@dataclass
class ScalabilityPoint(object):
    """One parallelism setting of the Fig 3 sweep."""

    parallelism: int
    cycles_per_iteration: float
    std_cell_area_mm2: float
    throughput_mbps: float


def run_scalability(
    factors: Sequence[int] = (96, 48, 24, 12), clock_mhz: float = 400.0
) -> List[ScalabilityPoint]:
    """Sweep the unroll/parallelism factor on the pipelined design."""
    code = wimax_code("1/2", 2304)
    profile = DecoderProfile.from_code(code, r_words=84)
    llrs = reference_frame(code)
    points: List[ScalabilityPoint] = []
    for factor in factors:
        hls = PicoCompiler(clock_mhz=clock_mhz).compile(
            build_pipelined_program(profile, parallelism=factor)
        )
        config = ArchConfig.from_hls(
            code,
            clock_mhz,
            "pipelined",
            parallelism=factor,
            early_termination=False,
        )
        result = TwoLayerPipelinedArch(config).decode(llrs)
        iters = max(result.decode.iterations, 1)
        points.append(
            ScalabilityPoint(
                parallelism=factor,
                cycles_per_iteration=result.cycles / iters,
                std_cell_area_mm2=hls.area().std_cell_mm2,
                throughput_mbps=result.throughput_mbps(code.k),
            )
        )
    return points


def format_scalability(points: List[ScalabilityPoint]) -> str:
    """Render the parallelism sweep."""
    rows = [
        [
            p.parallelism,
            f"{p.cycles_per_iteration:.1f}",
            f"{p.std_cell_area_mm2:.3f}",
            f"{p.throughput_mbps:.0f}",
        ]
        for p in points
    ]
    return render_table(
        ["cores (unroll)", "cycles/iter", "std-cell mm^2", "Mbps @10it"],
        rows,
        title="Fig 3 — scalable parallelism: cores vs cycles vs area",
    )
