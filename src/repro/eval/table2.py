"""Table II reproduction: comparison with the hand-coded decoders.

Only the "This Work" column is reproducible; the two comparison rows
carry the published numbers of [2] and [3] verbatim (they are fabbed or
hand-synthesized designs we do not rebuild beyond these records).  Our
column is produced end-to-end by the models: area from the compiled
netlist + SRAM macros, throughput/latency from the cycle-accurate
pipelined simulator at 10 iterations, power from the SpyGlass-style
estimator at peak activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.eval.designs import design_point
from repro.eval.paper_ref import COMPARISON_DECODERS, PAPER
from repro.power import SpyGlassEstimator
from repro.utils.tables import render_table


@dataclass
class Table2Result(object):
    """Our measured column plus the reference rows."""

    ours: Dict[str, object]
    paper_ours: Dict[str, object]
    references: List[Dict[str, object]]


def run_table2(clock_mhz: float = 400.0) -> Table2Result:
    """Produce the full comparison table."""
    point = design_point("pipelined", clock_mhz)
    run = point.decode_reference_frame()
    area = point.hls.area()
    estimator = SpyGlassEstimator()
    peak_mw = estimator.peak_power_mw(point.hls, run.trace, point.q_depth_words)

    info_bits = point.code.k
    ours = {
        "name": "This Work (measured)",
        "core_area_mm2": round(area.core_area_mm2, 2),
        "max_frequency_mhz": clock_mhz,
        "max_power_mw": round(peak_mw, 0),
        "technology_nm": 65,
        "quantization_bits": point.profile.msg_bits,
        "iterations": str(point.config.max_iterations),
        "max_code_length": point.code.n,
        "memory_bits": point.profile.memory_bits(),
        "throughput_mbps": round(run.throughput_mbps(info_bits), 0),
        "latency_us": round(run.latency_us, 2),
    }
    paper_ours = {
        "name": "This Work (paper)",
        "core_area_mm2": PAPER["core_area_mm2"],
        "max_frequency_mhz": PAPER["clock_mhz"],
        "max_power_mw": PAPER["max_power_mw"],
        "technology_nm": 65,
        "quantization_bits": PAPER["quantization_bits"],
        "iterations": str(PAPER["iterations"]),
        "max_code_length": PAPER["code_length"],
        "memory_bits": PAPER["memory_bits"],
        "throughput_mbps": PAPER["throughput_mbps"],
        "latency_us": PAPER["latency_us"],
    }
    return Table2Result(ours, paper_ours, list(COMPARISON_DECODERS))


def format_table2(result: Table2Result) -> str:
    """Render Table II with our measured column first."""
    fields = [
        ("Core Area (mm^2)", "core_area_mm2"),
        ("Max Frequency (MHz)", "max_frequency_mhz"),
        ("Max Power (mW)", "max_power_mw"),
        ("Technology (nm)", "technology_nm"),
        ("Quantization (bits)", "quantization_bits"),
        ("Iterations", "iterations"),
        ("Max Code Length", "max_code_length"),
        ("Memory (bits)", "memory_bits"),
        ("Throughput @R=1/2 (Mbps)", "throughput_mbps"),
        ("Latency @R=1/2 (us)", "latency_us"),
    ]
    columns = [result.ours, result.paper_ours] + result.references
    headers = ["Metric"] + [str(c["name"]) for c in columns]
    rows = []
    for label, key in fields:
        row = [label]
        for column in columns:
            value = column.get(key)
            row.append("NA" if value is None or value != value else value)
        rows.append(row)
    return render_table(
        headers, rows, title="Table II — comparison with existing LDPC decoders"
    )
