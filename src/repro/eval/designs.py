"""Shared design-point construction for the evaluation harness.

A *design point* is one (architecture, clock) pair of the paper's case
study — the (2304, rate 1/2) WiMax decoder — with its compiled netlist
and cycle-accurate simulator.  Building one runs the whole front half
of the flow, so results are memoized per (architecture, clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.arch import ArchConfig, PerLayerArch, TwoLayerPipelinedArch
from repro.arch.result import ArchDecodeResult
from repro.channel import AwgnChannel
from repro.codes import wimax_code
from repro.codes.qc import QCLDPCCode
from repro.encoder import RuEncoder
from repro.hls import HlsResult, PicoCompiler
from repro.hls.programs import (
    DecoderProfile,
    build_perlayer_program,
    build_pipelined_program,
)

#: Deterministic seed for the shared evaluation frame.
_FRAME_SEED = 20091
#: Eb/N0 of the representative activity frame (near-threshold: keeps
#: the decoder running all iterations without early exit).
_FRAME_EBNO_DB = 2.5


@dataclass
class DesignPoint(object):
    """One compiled + simulatable decoder design."""

    architecture: str
    clock_mhz: float
    code: QCLDPCCode
    profile: DecoderProfile
    hls: HlsResult
    config: ArchConfig

    def simulator(self):
        """A fresh cycle-accurate simulator for this point."""
        if self.architecture == "pipelined":
            return TwoLayerPipelinedArch(self.config)
        return PerLayerArch(self.config)

    def decode_reference_frame(self) -> ArchDecodeResult:
        """Decode the shared activity frame (all iterations forced)."""
        llrs = reference_frame(self.code)
        return self.simulator().decode(llrs)

    @property
    def q_depth_words(self) -> int:
        """Q storage depth in words (for the activity model)."""
        if self.architecture == "pipelined":
            return int(self.config.fifo_capacity)
        return self.profile.max_degree * self.config.passes


@lru_cache(maxsize=32)
def design_point(
    architecture: str = "pipelined",
    clock_mhz: float = 400.0,
    rate: str = "1/2",
    n: int = 2304,
) -> DesignPoint:
    """Build (and memoize) a design point of the paper's case study."""
    code = wimax_code(rate, n)
    profile = DecoderProfile.from_code(code, r_words=84 if code.z == 96 else None)
    if architecture == "pipelined":
        program = build_pipelined_program(profile)
    else:
        program = build_perlayer_program(profile)
    hls = PicoCompiler(clock_mhz=clock_mhz).compile(program)
    config = ArchConfig.from_hls(
        code, clock_mhz, architecture, early_termination=False
    )
    return DesignPoint(architecture, clock_mhz, code, profile, hls, config)


@lru_cache(maxsize=8)
def reference_frame(code: QCLDPCCode) -> Tuple[float, ...]:
    """A deterministic near-threshold LLR frame for activity runs."""
    rng = np.random.default_rng(_FRAME_SEED)
    encoder = RuEncoder(code)
    message = rng.integers(0, 2, encoder.k).astype(np.uint8)
    codeword = encoder.encode(message)
    channel = AwgnChannel.from_ebno(_FRAME_EBNO_DB, code.rate, seed=rng)
    return tuple(channel.llrs(codeword))
