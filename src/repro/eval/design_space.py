"""EXP-DSE — the design space of parallel decoder realizations.

The paper's abstract promises to "explore the design space of parallel
realizations of LDPC decoders using a high level synthesis
methodology".  Figs 3 and 8 show two one-dimensional slices; this
experiment sweeps the full grid — architecture x parallelism x target
clock — and reports every point's throughput, standard-cell area, and
power, plus the Pareto frontier (throughput up, area down) that an SoC
team would actually pick from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.arch import ArchConfig, PerLayerArch, TwoLayerPipelinedArch
from repro.codes import wimax_code
from repro.eval.designs import reference_frame
from repro.hls import PicoCompiler
from repro.hls.programs import (
    DecoderProfile,
    build_perlayer_program,
    build_pipelined_program,
)
from repro.power import SpyGlassEstimator
from repro.utils.tables import render_table


@dataclass
class DesignSpacePoint(object):
    """One (architecture, parallelism, clock) realization."""

    architecture: str
    parallelism: int
    clock_mhz: float
    cycles_per_iteration: float
    throughput_mbps: float
    std_cell_mm2: float
    power_mw: float
    pareto: bool = False

    @property
    def efficiency_mbps_per_mm2(self) -> float:
        """Throughput density — the HLS sales metric."""
        return self.throughput_mbps / self.std_cell_mm2


def run_design_space(
    parallelisms: Sequence[int] = (96, 48, 24),
    clocks: Sequence[float] = (200.0, 400.0),
    architectures: Sequence[str] = ("perlayer", "pipelined"),
) -> List[DesignSpacePoint]:
    """Sweep the grid and mark the Pareto-optimal points."""
    code = wimax_code("1/2", 2304)
    profile = DecoderProfile.from_code(code, r_words=84)
    llrs = reference_frame(code)
    estimator = SpyGlassEstimator()

    points: List[DesignSpacePoint] = []
    for arch in architectures:
        builder = (
            build_pipelined_program if arch == "pipelined" else build_perlayer_program
        )
        simulator = TwoLayerPipelinedArch if arch == "pipelined" else PerLayerArch
        for p in parallelisms:
            for clock in clocks:
                hls = PicoCompiler(clock_mhz=clock).compile(builder(profile, p))
                config = ArchConfig.from_hls(
                    code, clock, arch, parallelism=p, early_termination=False
                )
                result = simulator(config).decode(llrs)
                iters = max(result.decode.iterations, 1)
                q_depth = (
                    config.fifo_capacity
                    if arch == "pipelined"
                    else profile.max_degree * config.passes
                )
                power = estimator.estimate(hls, result.trace, q_depth)
                points.append(
                    DesignSpacePoint(
                        architecture=arch,
                        parallelism=p,
                        clock_mhz=clock,
                        cycles_per_iteration=result.cycles / iters,
                        throughput_mbps=result.throughput_mbps(code.k),
                        std_cell_mm2=hls.area().std_cell_mm2,
                        power_mw=power.with_gating.total_mw,
                    )
                )
    _mark_pareto(points)
    return points


def _mark_pareto(points: List[DesignSpacePoint]) -> None:
    """Mark points not dominated in (throughput up, area down)."""
    for a in points:
        a.pareto = not any(
            (b.throughput_mbps >= a.throughput_mbps)
            and (b.std_cell_mm2 <= a.std_cell_mm2)
            and (
                b.throughput_mbps > a.throughput_mbps
                or b.std_cell_mm2 < a.std_cell_mm2
            )
            for b in points
        )


def format_design_space(points: List[DesignSpacePoint]) -> str:
    """Render the grid with the Pareto frontier highlighted."""
    rows = []
    for p in sorted(points, key=lambda q: -q.throughput_mbps):
        rows.append(
            [
                p.architecture,
                p.parallelism,
                int(p.clock_mhz),
                f"{p.cycles_per_iteration:.0f}",
                f"{p.throughput_mbps:.0f}",
                f"{p.std_cell_mm2:.3f}",
                f"{p.power_mw:.0f}",
                f"{p.efficiency_mbps_per_mm2:.0f}",
                "*" if p.pareto else "",
            ]
        )
    return render_table(
        [
            "architecture",
            "cores",
            "MHz",
            "cyc/it",
            "Mbps",
            "std-cell mm^2",
            "mW",
            "Mbps/mm^2",
            "pareto",
        ],
        rows,
        title=(
            "Design space — parallel realizations of the (2304, 1/2) "
            "decoder (* = Pareto: throughput vs area)"
        ),
    )
