"""Fig 4 / Fig 6 reproduction: schedule timelines and core utilization.

The paper's motivating observation for the pipelined architecture:
"the core utilization is low (about 50%)" in the per-layer design,
because core2 idles while core1 scans a layer and vice versa.  The
pipelined schedule overlaps them.  This experiment renders both
timelines and reports the measured utilizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.eval.designs import design_point


@dataclass
class ScheduleResult(object):
    """Utilization figures plus rendered timelines."""

    perlayer_utilization: Dict[str, float]
    pipelined_utilization: Dict[str, float]
    perlayer_timeline: str
    pipelined_timeline: str


def run_schedules(clock_mhz: float = 400.0) -> ScheduleResult:
    """Simulate both schedules and extract utilization."""
    per = design_point("perlayer", clock_mhz).decode_reference_frame()
    pipe = design_point("pipelined", clock_mhz).decode_reference_frame()
    window = int(per.cycles_per_iteration)
    return ScheduleResult(
        perlayer_utilization=per.trace.activity(),
        pipelined_utilization=pipe.trace.activity(),
        perlayer_timeline=per.trace.render(max_cycles=window),
        pipelined_timeline=pipe.trace.render(
            max_cycles=int(pipe.cycles_per_iteration)
        ),
    )


def format_schedules(result: ScheduleResult) -> str:
    """Render the utilization comparison with both timelines."""
    lines = [
        "Fig 4 — per-layer schedule (first iteration window):",
        result.perlayer_timeline,
        "",
        "core utilization (paper: 'about 50%'): "
        + ", ".join(
            f"{unit}={frac:.0%}"
            for unit, frac in result.perlayer_utilization.items()
        ),
        "",
        "Fig 6 — two-layer pipelined schedule (first iteration window):",
        result.pipelined_timeline,
        "",
        "core utilization (pipelined overlap): "
        + ", ".join(
            f"{unit}={frac:.0%}"
            for unit, frac in result.pipelined_utilization.items()
        ),
    ]
    return "\n".join(lines)
