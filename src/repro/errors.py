"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CodeConstructionError(ReproError):
    """A parity-check matrix could not be built or failed validation."""


class EncodingError(ReproError):
    """Encoding failed (e.g. a non-encodable parity structure)."""


class DecodingError(ReproError):
    """Decoder misuse (bad shapes, invalid parameters)."""


class TransientDecodeError(DecodingError):
    """A decode failed for a transient cause (e.g. an injected fault or a
    corrupted engine state) and may succeed if retried on fresh state."""


class RegistryError(ReproError):
    """Code-registry misuse (bad registration, malformed entry)."""


class MalformedCodeIdError(RegistryError):
    """A registry id violates the wire-safe grammar (lowercase alnum
    plus ``._-``, must start alphanumeric, at most 64 chars) — such an
    id could not travel the net protocol's ``code_id`` field safely."""


class DuplicateCodeError(RegistryError):
    """A code was registered under an id the registry already holds."""


class FaultConfigError(ReproError):
    """Fault-injection misuse (unknown site, bad rate, bad bit index)."""


class HlsError(ReproError):
    """High-level-synthesis front-end or scheduling failure."""


class ScheduleError(HlsError):
    """No feasible schedule under the given resource/latency constraints."""


class ArchitectureError(ReproError):
    """Architectural simulation failure (hazard violation, bad config)."""


class ModelError(ReproError):
    """Technology / area / power model misuse."""


class ServeError(ReproError):
    """Base class for batched decode runtime (``repro.serve``) failures."""


class EngineFullError(ServeError):
    """A frame was admitted to a continuous-batching engine with no free slot."""


class QueueFullError(ServeError):
    """A bounded service queue rejected a frame (overload backpressure)."""


class ServeTimeoutError(ServeError):
    """A submit or result wait exceeded its deadline."""


class ServiceClosedError(ServeError):
    """A frame was submitted to a service that is shutting down or closed."""


class UnknownCodeError(ServeError):
    """A code id / code key names no registered code: raised by registry
    lookups and by :meth:`DecodeService.submit` routing, and carried
    across the wire as its own ERROR frame kind so remote clients see
    the same typed error a local caller would."""


class ShardDeadError(ServeError):
    """A frame was submitted to a shard whose worker has died (crashed out
    of its restart budget, or its thread is gone); nothing will drain it."""


class DeadlineExceededError(ServeTimeoutError):
    """A job's deadline expired while it was still waiting in a queue."""


class WorkerProcessError(ServeError):
    """A decode worker process died or misbehaved (killed, crashed, or
    returned a malformed result); the supervisor treats it like a worker
    crash: in-flight futures fail fast and the process is respawned."""


class NetProtocolError(ServeError):
    """A network frame violated the gateway protocol (bad magic, bad
    version, truncated or oversized payload, malformed body)."""


class FrameCorruptionError(NetProtocolError):
    """A protocol-v2 frame failed its CRC32C integrity check: the bytes
    on the wire are not the bytes the peer sent.  The frame is dropped
    before any of its contents are trusted — corruption is detected,
    never decoded."""


class ClientClosedError(ServeError):
    """A blocking client call was made after :meth:`DecodeClient.close`
    or after the client's private event-loop thread died; the call fails
    fast instead of hanging on a loop that will never answer."""


class CircuitOpenError(ServeError):
    """A request was refused locally because the endpoint's circuit
    breaker is open (too many consecutive failures); no bytes were sent.
    The breaker half-opens after its reset timeout and probes."""


class QuotaExceededError(ServeError):
    """A tenant exceeded its admission quota (token bucket empty or the
    tenant is unknown to the gateway); the request was refused before it
    reached a decode queue."""


class RemoteDecodeError(ServeError):
    """A gateway returned an error frame whose kind has no local typed
    equivalent; carries the remote exception name and message."""

    def __init__(self, kind: str = "", message: str = "") -> None:
        super().__init__(f"{kind}: {message}" if kind else message)
        self.kind = kind
        self.message = message


class GatewayClosedError(ServeError):
    """A request was sent to a gateway that is draining or closed, or
    the connection dropped before a result frame arrived."""
