"""Bit-level helpers shared across the coding and architecture models."""

from __future__ import annotations

import numpy as np


def hard_decision(llr: np.ndarray) -> np.ndarray:
    """Map LLRs to hard bits using the paper's convention.

    Positive LLR means "bit is 0" (sign(P) decision in Algorithm 1), so a
    bit is decided 1 exactly when its LLR is negative.  Zero LLRs resolve
    to 0, matching a hardware comparator on the sign bit of a two's
    complement value of zero.
    """
    llr = np.asarray(llr)
    return (llr < 0).astype(np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where the two bit vectors differ."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a ^ b))


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Little-endian bit decomposition of ``value`` into ``width`` bits."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (little-endian)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return int(sum(int(b) << i for i, b in enumerate(bits)))


def parity(bits: np.ndarray) -> int:
    """XOR reduction of a bit vector."""
    return int(np.bitwise_xor.reduce(np.asarray(bits, dtype=np.uint8)))
