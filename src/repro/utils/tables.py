"""Plain-text table rendering for the evaluation harness.

The paper reports its results as tables (Table I, Table II) and figure
series (Fig 8).  ``render_table`` produces aligned monospace tables that
the benchmark harness prints so paper-vs-measured comparisons read the
same way the paper does.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as an aligned monospace table string."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
