"""Streaming summary statistics for the serving runtime.

The metrics layer needs latency percentiles and running means without
keeping an unbounded sample store.  :class:`RollingReservoir` keeps the
most recent ``capacity`` observations (a sliding window, so percentiles
track current behaviour under long-running traffic) while the running
count/sum cover the full stream.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np


class RollingReservoir(object):
    """Sliding-window sample store with whole-stream count and mean.

    Parameters
    ----------
    capacity:
        Number of most-recent observations retained for percentile
        queries (the count and mean always cover every observation).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._window: deque = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._window.append(value)
        self._count += 1
        self._total += value

    @property
    def count(self) -> int:
        """Observations recorded over the whole stream."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over the whole stream (0.0 when empty)."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the retained window.

        Returns 0.0 when no observations have been recorded.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._window:
            return 0.0
        return float(np.percentile(np.fromiter(self._window, dtype=np.float64), q))

    def max(self) -> Optional[float]:
        """Largest retained observation (None when empty)."""
        if not self._window:
            return None
        return float(max(self._window))
