"""Small shared utilities (bit manipulation, RNG handling, tables)."""

from repro.utils.bitops import (
    hard_decision,
    hamming_distance,
    int_to_bits,
    bits_to_int,
    parity,
)
from repro.utils.rng import as_generator
from repro.utils.stats import RollingReservoir
from repro.utils.tables import render_table

__all__ = [
    "RollingReservoir",
    "hard_decision",
    "hamming_distance",
    "int_to_bits",
    "bits_to_int",
    "parity",
    "as_generator",
    "render_table",
]
