"""Run provenance for benchmark documents: schema version + commit.

Every ``--json`` bench payload (``serve-bench``, ``accel-bench``,
``faults-bench``) carries the same provenance header so the perf gate
and ``BENCH_history.jsonl`` can compare runs across commits:

* ``schema_version`` — bumped when a payload's shape changes
  incompatibly, so downstream tooling can refuse rather than misread;
* ``bench`` — which bench produced the document;
* ``commit`` — ``git describe --always --dirty`` of the working tree
  (``"unknown"`` outside a repository or without git installed).
"""

from __future__ import annotations

import os
import subprocess
from typing import Any, Dict

__all__ = ["BENCH_SCHEMA_VERSION", "bench_meta", "git_commit"]

#: Version of the bench JSON payload shape (see docs/PERFORMANCE.md).
BENCH_SCHEMA_VERSION = 1


def git_commit(cwd: str = "") -> str:
    """``git describe --always --dirty`` of the tree, or ``"unknown"``.

    Never raises: provenance must not break a bench run on a machine
    without git or outside a checkout.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    text = out.stdout.decode("utf-8", "replace").strip()
    return text or "unknown"


def bench_meta(bench: str) -> Dict[str, Any]:
    """The provenance header for one bench document."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "commit": git_commit(),
    }
