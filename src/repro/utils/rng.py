"""Uniform handling of random number generators.

Every stochastic entry point in the package accepts either ``None`` (fresh
default generator), an integer seed, or an existing
:class:`numpy.random.Generator`, and normalizes through this helper so
experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator for ``seed``.

    ``None`` gives a fresh OS-seeded generator, an ``int`` gives a
    deterministic generator, and an existing generator passes through
    unchanged (so callers can share one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
