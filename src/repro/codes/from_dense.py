"""Recover QC structure from a dense parity-check matrix.

The inverse of expansion: given a binary H and an expansion factor z,
detect whether every z x z block is a zero matrix or a weight-1
circulant, and rebuild the :class:`BaseMatrix` /
:class:`~repro.codes.qc.QCLDPCCode`.  Combined with the alist parser
this imports externally published QC-LDPC codes straight into the
layered decoder and the architecture models (whose addressing depends
on the block structure, not on how the matrix arrived).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codes.alist import read_alist
from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.codes.qc import QCLDPCCode
from repro.errors import CodeConstructionError


def detect_shift(block: np.ndarray) -> Optional[int]:
    """Shift of a z x z weight-1 circulant, or None.

    Returns ``ZERO_BLOCK`` for the all-zero block, the shift ``s`` when
    row ``r`` has its single 1 at column ``(r + s) mod z`` for every
    row, and ``None`` for anything else.
    """
    z = block.shape[0]
    if block.shape != (z, z):
        raise CodeConstructionError(f"block must be square, got {block.shape}")
    total = int(block.sum())
    if total == 0:
        return ZERO_BLOCK
    if total != z:
        return None
    cols = np.argmax(block, axis=1)
    if np.any(block.sum(axis=1) != 1) or np.any(block.sum(axis=0) != 1):
        return None
    shift = int(cols[0]) % z
    expected = (np.arange(z) + shift) % z
    if np.array_equal(cols, expected):
        return shift
    return None


def base_matrix_from_dense(
    h: np.ndarray, z: int, name: str = ""
) -> BaseMatrix:
    """Rebuild the prototype matrix of a block-structured dense H."""
    h = np.asarray(h, dtype=np.uint8)
    if h.ndim != 2:
        raise CodeConstructionError("H must be 2-D")
    m, n = h.shape
    if z < 1 or m % z or n % z:
        raise CodeConstructionError(
            f"dimensions {m} x {n} not divisible by z={z}"
        )
    mb, nb = m // z, n // z
    shifts = np.full((mb, nb), ZERO_BLOCK, dtype=np.int64)
    for i in range(mb):
        for j in range(nb):
            block = h[i * z : (i + 1) * z, j * z : (j + 1) * z]
            shift = detect_shift(block)
            if shift is None:
                raise CodeConstructionError(
                    f"block ({i}, {j}) is not a weight-1 circulant at z={z}"
                )
            shifts[i, j] = shift
    return BaseMatrix(shifts, z, name or f"from-dense z={z}")


def code_from_dense(h: np.ndarray, z: int, name: str = "") -> QCLDPCCode:
    """Dense H -> fully structured QCLDPCCode."""
    return QCLDPCCode(base_matrix_from_dense(h, z, name))


def code_from_alist(path, z: int, name: str = "") -> QCLDPCCode:
    """Load an alist file as a structured QC-LDPC code."""
    return code_from_dense(read_alist(path), z, name)


def infer_expansion_factor(h: np.ndarray, candidates=None) -> int:
    """Find the largest z for which H is block-structured.

    Tries divisors of the row count from largest to smallest; z = 1
    always succeeds (any binary matrix is trivially block-structured at
    z = 1), so a valid answer always exists.
    """
    h = np.asarray(h, dtype=np.uint8)
    m, n = h.shape
    if candidates is None:
        candidates = sorted(
            (z for z in range(1, m + 1) if m % z == 0 and n % z == 0),
            reverse=True,
        )
    for z in candidates:
        try:
            base_matrix_from_dense(h, z)
            return z
        except CodeConstructionError:
            continue
    raise CodeConstructionError("no expansion factor fits (not even 1?)")
