"""Prototype (base) matrices for block-structured LDPC codes.

A base matrix is an ``mb x nb`` integer array.  Entry ``-1`` denotes the
all-zero z x z block; an entry ``s >= 0`` denotes the identity matrix
cyclically right-shifted by ``s`` (row ``r`` of the block has its single 1
in column ``(r + s) mod z``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CodeConstructionError

ZERO_BLOCK = -1


def scale_shift(shift: int, z: int, z0: int, mode: str = "floor") -> int:
    """Scale a shift coefficient from expansion factor ``z0`` down to ``z``.

    IEEE 802.16e defines two scaling rules for deriving the shift values of
    the smaller code sizes from the ``z0 = 96`` table:

    * ``"floor"`` (all rates except 2/3A): ``floor(shift * z / z0)``;
    * ``"modulo"`` (rate 2/3A): ``shift mod z``.

    IEEE 802.11n publishes a separate table per block length, so no
    scaling is applied there.
    """
    if shift == ZERO_BLOCK:
        return ZERO_BLOCK
    if shift < 0:
        raise CodeConstructionError(f"invalid shift {shift}")
    if mode == "floor":
        return (shift * z) // z0
    if mode == "modulo":
        return shift % z
    raise CodeConstructionError(f"unknown scaling mode {mode!r}")


@dataclass(frozen=True)
class BaseMatrix:
    """An immutable prototype matrix with its native expansion factor.

    Parameters
    ----------
    shifts:
        ``mb x nb`` array of shift coefficients (``-1`` = zero block).
    z:
        Expansion factor the coefficients are expressed for.
    name:
        Human-readable identifier, e.g. ``"802.16e r1/2 z=96"``.
    """

    shifts: np.ndarray
    z: int
    name: str = ""

    def __post_init__(self) -> None:
        shifts = np.asarray(self.shifts, dtype=np.int64)
        if shifts.ndim != 2:
            raise CodeConstructionError("base matrix must be 2-D")
        if self.z < 1:
            raise CodeConstructionError(f"expansion factor {self.z} < 1")
        if np.any(shifts < ZERO_BLOCK) or np.any(shifts >= self.z):
            raise CodeConstructionError(
                f"shifts must lie in [-1, {self.z - 1}] for z={self.z}"
            )
        object.__setattr__(self, "shifts", shifts)

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def mb(self) -> int:
        """Number of block rows (= layers for layered decoding)."""
        return int(self.shifts.shape[0])

    @property
    def nb(self) -> int:
        """Number of block columns."""
        return int(self.shifts.shape[1])

    @property
    def n(self) -> int:
        """Expanded code length in bits."""
        return self.nb * self.z

    @property
    def m(self) -> int:
        """Expanded number of parity checks."""
        return self.mb * self.z

    @property
    def design_rate(self) -> float:
        """Design code rate (k/n assuming full-rank H)."""
        return (self.nb - self.mb) / self.nb

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def row_blocks(self, block_row: int) -> List[Tuple[int, int]]:
        """Non-zero ``(block_col, shift)`` pairs in a block row."""
        row = self.shifts[block_row]
        return [(int(j), int(s)) for j, s in enumerate(row) if s != ZERO_BLOCK]

    def col_blocks(self, block_col: int) -> List[Tuple[int, int]]:
        """Non-zero ``(block_row, shift)`` pairs in a block column."""
        col = self.shifts[:, block_col]
        return [(int(i), int(s)) for i, s in enumerate(col) if s != ZERO_BLOCK]

    def row_degrees(self) -> np.ndarray:
        """Block-row degrees (non-zero blocks per block row)."""
        return (self.shifts != ZERO_BLOCK).sum(axis=1)

    def col_degrees(self) -> np.ndarray:
        """Block-column degrees (non-zero blocks per block column)."""
        return (self.shifts != ZERO_BLOCK).sum(axis=0)

    def nnz_blocks(self) -> int:
        """Total number of non-zero circulant blocks."""
        return int(np.count_nonzero(self.shifts != ZERO_BLOCK))

    # ------------------------------------------------------------------
    # derivation / expansion
    # ------------------------------------------------------------------
    def scaled(self, z: int, mode: str = "floor", name: str = "") -> "BaseMatrix":
        """Derive the base matrix for a smaller expansion factor ``z``."""
        if z < 1 or z > self.z:
            raise CodeConstructionError(
                f"target z={z} must be in [1, {self.z}]"
            )
        scaled = np.array(
            [
                [scale_shift(int(s), z, self.z, mode) for s in row]
                for row in self.shifts
            ],
            dtype=np.int64,
        )
        return BaseMatrix(scaled, z, name or f"{self.name} scaled z={z}")

    def expand(self) -> np.ndarray:
        """Expand to the full binary parity-check matrix (dense uint8)."""
        z = self.z
        h = np.zeros((self.m, self.n), dtype=np.uint8)
        rows = np.arange(z)
        for i in range(self.mb):
            for j, s in self.row_blocks(i):
                h[i * z + rows, j * z + (rows + s) % z] = 1
        return h

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"BaseMatrix(name={self.name!r}, mb={self.mb}, nb={self.nb}, "
            f"z={self.z})"
        )


def base_matrix_from_rows(
    rows: Sequence[Sequence[int]], z: int, name: str = ""
) -> BaseMatrix:
    """Build a :class:`BaseMatrix` from a list-of-lists shift table."""
    return BaseMatrix(np.array(rows, dtype=np.int64), z, name)
