"""5G NR quasi-cyclic LDPC family (base graphs BG1/BG2), raptor-like.

3GPP TS 38.212 defines two base graphs: BG1 (46 x 68 blocks, kb = 22
systematic columns, rates ~1/3 .. 8/9 after rate matching) and BG2
(42 x 52 blocks, kb = 10, lower rates / short blocks).  Both share the
*raptor-like* structure this module reproduces:

* a **core** of 4 high-degree block rows over the ``kb`` systematic
  columns plus 4 core parity columns with the familiar dual-diagonal /
  special-column layout (encodable with the Richardson-Urbanke trick,
  exactly like WiMax/WiFi);
* an **extension** of single-parity-check rows: row ``4 + e`` connects a
  few earlier columns and closes on a fresh degree-1 parity column
  ``kb + 4 + e`` with a zero-shift identity, so each extension parity is
  one XOR accumulation — the incremental-redundancy bits HARQ
  retransmissions draw from.

Lifting sizes come from the standard's table: ``Z = a * 2^j`` with
``a in {2, 3, 5, 7, 9, 11, 13, 15}`` and ``j = 0..7``, capped at 384.
The master matrices here are built at ``z0 = 384`` and scaled to smaller
Z by ``s mod Z`` (the standard's ``V_{i,j} mod Z`` rule).

Fidelity note (same policy as the non-1/2 WiMax tables, see DESIGN.md):
these are *standard-like reconstructions* — block dimensions, the
raptor-like core/extension split, the degree-1 extension parities, and
the lifting-size grammar all match TS 38.212, but individual shift
values are generated (seeded, deterministic) rather than transcribed
from the 51-page standard tables.  Every structural property the
decoder, encoder, and rate-matching hooks rely on is enforced by the
test suite.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.codes.construction import make_base_matrix
from repro.codes.qc import QCLDPCCode
from repro.codes.rate_adapt import RateAdaptedCode, rate_match
from repro.encoder.ru import RuEncoder, rotate
from repro.errors import CodeConstructionError, EncodingError

__all__ = [
    "NR_BASE_GRAPHS",
    "NR_CORE_ROWS",
    "NR_LIFTING_SIZES",
    "NrEncoder",
    "nr_base_matrix",
    "nr_code",
    "nr_rate_match",
]

#: Base-graph shapes: bg -> (mb, nb, kb).
NR_BASE_GRAPHS: Dict[int, Tuple[int, int, int]] = {
    1: (46, 68, 22),
    2: (42, 52, 10),
}

#: Rows in the dual-diagonal core (both base graphs).
NR_CORE_ROWS = 4

#: Legal lifting sizes: a * 2^j, a in {2,3,5,7,9,11,13,15}, j = 0..7, <= 384.
NR_LIFTING_SIZES: Tuple[int, ...] = tuple(
    sorted(
        {
            a * (1 << j)
            for a in (2, 3, 5, 7, 9, 11, 13, 15)
            for j in range(8)
            if a * (1 << j) <= 384
        }
    )
)

_Z0 = 384
#: Deterministic construction seed (shared idiom with codes/wifi.py).
_CONSTRUCTION_SEED = 20260801

#: Total row degree of the generated core rows (data + parity part).
_CORE_ROW_DEGREE = {1: 13, 2: 8}

#: Earlier-column connections per extension row (plus its own identity).
_EXT_CONNECTIONS = 3

_MASTER_CACHE: Dict[int, BaseMatrix] = {}


def _build_master(bg: int) -> BaseMatrix:
    """The z0 = 384 master matrix for one base graph (cached)."""
    mb, nb, kb = NR_BASE_GRAPHS[bg]
    core = make_base_matrix(
        NR_CORE_ROWS,
        kb + NR_CORE_ROWS,
        _Z0,
        row_degree=_CORE_ROW_DEGREE[bg],
        seed=_CONSTRUCTION_SEED + bg,
        name=f"5G-NR BG{bg} core",
    )
    shifts = np.full((mb, nb), ZERO_BLOCK, dtype=np.int64)
    shifts[:NR_CORE_ROWS, : kb + NR_CORE_ROWS] = core.shifts

    rng = np.random.default_rng(_CONSTRUCTION_SEED + 100 * bg)
    for e in range(mb - NR_CORE_ROWS):
        row = NR_CORE_ROWS + e
        # One systematic column (keeps the extension check anchored to
        # information bits) plus distinct extras from the core span.
        chosen = {int(rng.integers(0, kb))}
        while len(chosen) < _EXT_CONNECTIONS:
            chosen.add(int(rng.integers(0, kb + NR_CORE_ROWS)))
        for j in sorted(chosen):
            shifts[row, j] = int(rng.integers(0, _Z0))
        # Degree-1 parity column: zero-shift identity closes the row.
        shifts[row, kb + NR_CORE_ROWS + e] = 0
    return BaseMatrix(shifts, _Z0, name=f"5G-NR BG{bg} z={_Z0}")


def nr_base_matrix(bg: int = 1, z: int = 384) -> BaseMatrix:
    """The NR prototype matrix for a base graph at lifting size ``z``.

    Parameters
    ----------
    bg:
        Base graph, 1 or 2.
    z:
        Lifting size, one of :data:`NR_LIFTING_SIZES`.  Code length is
        ``nb * z`` (68z for BG1, 52z for BG2).
    """
    if bg not in NR_BASE_GRAPHS:
        raise CodeConstructionError(f"unknown NR base graph {bg!r}; choose 1 or 2")
    if z not in NR_LIFTING_SIZES:
        raise CodeConstructionError(
            f"z={z} is not a legal NR lifting size (a*2^j, "
            f"a in {{2,3,5,7,9,11,13,15}}, j=0..7, <= 384)"
        )
    if bg not in _MASTER_CACHE:
        _MASTER_CACHE[bg] = _build_master(bg)
    master = _MASTER_CACHE[bg]
    if z == _Z0:
        return master
    return master.scaled(z, mode="modulo", name=f"5G-NR BG{bg} z={z}")


def nr_code(bg: int = 1, z: int = 384) -> QCLDPCCode:
    """Build an expanded NR LDPC code by base graph and lifting size."""
    return QCLDPCCode(nr_base_matrix(bg, z))


class NrEncoder(object):
    """Two-stage linear-time encoder for raptor-like NR codes.

    Stage 1 encodes the 4-row dual-diagonal core with the
    Richardson-Urbanke trick (the core sub-matrix has exactly the
    WiMax/WiFi parity layout); stage 2 accumulates each extension
    parity as the XOR of its row's earlier blocks — every extension row
    closes on a zero-shift identity over its own fresh column, so the
    parity is read off directly.  Interface-compatible with
    :class:`~repro.encoder.ru.RuEncoder` (``k``, ``encode``,
    ``extract_message``), so rate adaptation and traffic generators can
    use either transparently.
    """

    def __init__(self, code: QCLDPCCode) -> None:
        self.code = code
        base = code.base
        core_cols = None
        # Infer the core width: the first degree-1 column with a
        # zero-shift identity in row NR_CORE_ROWS marks the extension.
        if code.mb > NR_CORE_ROWS:
            for j in range(base.nb):
                col = base.col_blocks(j)
                if len(col) == 1 and col[0] == (NR_CORE_ROWS, 0):
                    core_cols = j
                    break
        if core_cols is None:
            raise EncodingError(
                f"code {code.name!r} lacks the raptor-like NR structure "
                "(no degree-1 extension parity column); use RuEncoder or "
                "SystematicEncoder instead"
            )
        self._core_cols = core_cols
        for e in range(code.mb - NR_CORE_ROWS):
            row = NR_CORE_ROWS + e
            own = base.shifts[row, core_cols + e]
            trailing = base.shifts[row, core_cols + e + 1 :]
            if own != 0 or np.any(trailing != ZERO_BLOCK):
                raise EncodingError(
                    f"code {code.name!r}: extension row {row} does not "
                    "close on a zero-shift identity over its own column"
                )
        core_base = BaseMatrix(
            base.shifts[:NR_CORE_ROWS, :core_cols].copy(),
            code.z,
            name=f"{code.name} core",
        )
        self._core_code = QCLDPCCode(core_base)
        self._core_encoder = RuEncoder(self._core_code)

    @property
    def k(self) -> int:
        """Number of message bits per codeword."""
        return self._core_encoder.k

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Map ``k`` message bits to an ``n``-bit systematic codeword."""
        code = self.code
        z = code.z
        codeword = np.zeros(code.n, dtype=np.uint8)
        core_n = self._core_cols * z
        codeword[:core_n] = self._core_encoder.encode(message)
        for e in range(code.mb - NR_CORE_ROWS):
            row = NR_CORE_ROWS + e
            own_col = self._core_cols + e
            parity = np.zeros(z, dtype=np.uint8)
            for j, s in code.base.row_blocks(row):
                if j == own_col:
                    continue
                parity ^= rotate(codeword[j * z : (j + 1) * z], s)
            codeword[own_col * z : (own_col + 1) * z] = parity
        if not code.is_codeword(codeword):
            raise EncodingError(
                f"encoding failed parity verification for code {code.name!r}"
            )
        return codeword

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the systematic message bits (the first k positions)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[: self.k].copy()


def nr_rate_match(code: QCLDPCCode, target_rate: float) -> RateAdaptedCode:
    """Rate-match an NR code via the shortening/puncturing hooks.

    Thin wrapper over :func:`repro.codes.rate_adapt.rate_match` that
    supplies the raptor-like :class:`NrEncoder` (the generic hook
    defaults to the dual-diagonal RU encoder, which NR codes lack).
    """
    return rate_match(code, target_rate, encoder=NrEncoder(code))
