"""Multi-standard code registry: the zoo behind `code_id` everywhere.

One namespace of wire-safe string ids covering every code family the
package implements — all six 802.16e (WiMax) rate classes, the full
802.11n (WiFi) rate x length grid, and the 5G NR BG1/BG2 quasi-cyclic
family — so the serving stack, the net protocol's ``code_id`` field,
benchmarks, and tests all name codes the same way.

Design points:

* **Lazy + memoized** — registering a code stores only a builder
  callable; the expanded :class:`~repro.codes.qc.QCLDPCCode` (and its
  encoder) is built on first :meth:`~CodeRegistry.get` and cached, so
  importing the registry costs nothing and a 25-code zoo does not
  expand 25 parity-check matrices up front.
* **Wire-safe ids** — ids must match ``[a-z0-9][a-z0-9._-]{0,63}``
  (:data:`CODE_ID_PATTERN`); malformed ids raise
  :class:`~repro.errors.MalformedCodeIdError` at registration, not
  after they have leaked onto the wire.
* **Typed failures** — duplicate registration raises
  :class:`~repro.errors.DuplicateCodeError`; unknown lookups raise
  :class:`~repro.errors.UnknownCodeError`, the same exception
  :class:`~repro.serve.pool.DecodeService` routing uses, so a bad id
  fails identically whether it hits the registry, the service, or the
  gateway.

The default registry (:func:`default_registry`) is a process-wide
singleton; tests that need isolation construct their own
:class:`CodeRegistry`.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.codes.qc import QCLDPCCode
from repro.errors import (
    DuplicateCodeError,
    MalformedCodeIdError,
    UnknownCodeError,
)

__all__ = [
    "CODE_ID_PATTERN",
    "CodeEntry",
    "CodeRegistry",
    "default_registry",
]

#: Grammar for wire-safe registry ids (the net protocol's ``code_id``).
CODE_ID_PATTERN = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

#: Display-rate slug map shared by the default entries.
_RATE_SLUGS = {
    "1/2": "r12",
    "2/3": "r23",
    "2/3A": "r23a",
    "2/3B": "r23b",
    "3/4": "r34",
    "3/4A": "r34a",
    "3/4B": "r34b",
    "5/6": "r56",
}


@dataclass(frozen=True)
class CodeEntry(object):
    """One registered code: identity, family metadata, lazy builders.

    Attributes
    ----------
    code_id:
        The wire-safe registry id.
    family:
        ``"wimax"``, ``"wifi"``, or ``"nr"`` (free-form for user codes).
    rate_label:
        Human-readable rate class (``"1/2"``, ``"bg1"``...).
    n:
        Code length in bits (known without building the code; the
        service uses it for rate-aware routing tables).
    builder:
        Zero-argument callable producing the expanded code.
    encoder_factory:
        Callable mapping the built code to an encoder with the
        ``k`` / ``encode`` / ``extract_message`` interface.
    """

    code_id: str
    family: str
    rate_label: str
    n: int
    builder: Callable[[], QCLDPCCode] = field(compare=False, repr=False)
    encoder_factory: Callable[[QCLDPCCode], Any] = field(
        compare=False, repr=False
    )


class CodeRegistry(object):
    """Thread-safe id -> code mapping with lazy construction."""

    def __init__(self) -> None:
        self._entries: Dict[str, CodeEntry] = {}
        self._codes: Dict[str, QCLDPCCode] = {}
        self._encoders: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        code_id: str,
        family: str,
        rate_label: str,
        n: int,
        builder: Callable[[], QCLDPCCode],
        encoder_factory: Optional[Callable[[QCLDPCCode], Any]] = None,
    ) -> CodeEntry:
        """Register a lazy code under a wire-safe id.

        Raises :class:`MalformedCodeIdError` for ids outside
        :data:`CODE_ID_PATTERN` and :class:`DuplicateCodeError` when the
        id is already taken.
        """
        if not isinstance(code_id, str) or not CODE_ID_PATTERN.match(code_id):
            raise MalformedCodeIdError(
                f"malformed code id {code_id!r}: must match "
                f"{CODE_ID_PATTERN.pattern}"
            )
        if encoder_factory is None:
            from repro.encoder.ru import RuEncoder

            encoder_factory = RuEncoder
        entry = CodeEntry(
            code_id=code_id,
            family=family,
            rate_label=rate_label,
            n=int(n),
            builder=builder,
            encoder_factory=encoder_factory,
        )
        with self._lock:
            if code_id in self._entries:
                raise DuplicateCodeError(
                    f"code id {code_id!r} is already registered "
                    f"(family {self._entries[code_id].family!r})"
                )
            self._entries[code_id] = entry
        return entry

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def entry(self, code_id: str) -> CodeEntry:
        """The registration record for an id (no code construction)."""
        try:
            return self._entries[code_id]
        except KeyError:
            raise UnknownCodeError(
                f"unknown code id {code_id!r}; registered: {self.ids()}"
            ) from None

    def get(self, code_id: str) -> QCLDPCCode:
        """The expanded code for an id (built once, then cached)."""
        entry = self.entry(code_id)
        with self._lock:
            code = self._codes.get(code_id)
        if code is not None:
            return code
        built = entry.builder()
        if built.n != entry.n:
            raise MalformedCodeIdError(
                f"code id {code_id!r}: builder produced n={built.n}, "
                f"registration promised n={entry.n}"
            )
        with self._lock:
            # first builder wins under a race; both built the same code
            code = self._codes.setdefault(code_id, built)
        return code

    def encoder(self, code_id: str) -> Any:
        """A memoized encoder for the id's code."""
        entry = self.entry(code_id)
        with self._lock:
            enc = self._encoders.get(code_id)
        if enc is not None:
            return enc
        built = entry.encoder_factory(self.get(code_id))
        with self._lock:
            enc = self._encoders.setdefault(code_id, built)
        return enc

    def ids(self) -> Tuple[str, ...]:
        """All registered ids, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, code_id: object) -> bool:
        return code_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CodeEntry]:
        return iter(self._entries[i] for i in self.ids())


# ---------------------------------------------------------------------------
# the default zoo
# ---------------------------------------------------------------------------

_default: Optional[CodeRegistry] = None
_default_lock = threading.Lock()

#: WiMax lengths registered beyond the 2304 full set (rate 1/2 only).
_WIMAX_EXTRA_LENGTHS = (576, 1152, 1728)

#: NR (bg, z) points in the default zoo.
_NR_POINTS = ((1, 16), (1, 32), (2, 16), (2, 32))


def _populate(registry: CodeRegistry) -> None:
    from repro.codes.nr import NR_BASE_GRAPHS, NrEncoder, nr_code
    from repro.codes.wifi import WIFI_BLOCK_LENGTHS, WIFI_RATES, wifi_code
    from repro.codes.wimax import WIMAX_RATES, wimax_code

    def _wimax(rate: str, n: int) -> None:
        registry.register(
            f"wimax-{_RATE_SLUGS[rate]}-{n}",
            family="wimax",
            rate_label=rate,
            n=n,
            builder=lambda rate=rate, n=n: wimax_code(rate, n),
        )

    # All six 802.16e rate classes at the paper's full length, plus a
    # length ladder on the case-study rate for routing diversity.
    for rate in WIMAX_RATES:
        _wimax(rate, 2304)
    for n in _WIMAX_EXTRA_LENGTHS:
        _wimax("1/2", n)

    for rate in WIFI_RATES:
        for n in WIFI_BLOCK_LENGTHS:
            registry.register(
                f"wifi-{_RATE_SLUGS[rate]}-{n}",
                family="wifi",
                rate_label=rate,
                n=n,
                builder=lambda rate=rate, n=n: wifi_code(rate, n),
            )

    for bg, z in _NR_POINTS:
        nb = NR_BASE_GRAPHS[bg][1]
        registry.register(
            f"nr-bg{bg}-z{z}",
            family="nr",
            rate_label=f"bg{bg}",
            n=nb * z,
            builder=lambda bg=bg, z=z: nr_code(bg, z),
            encoder_factory=NrEncoder,
        )


def default_registry() -> CodeRegistry:
    """The process-wide registry preloaded with the multi-standard zoo."""
    global _default
    with _default_lock:
        if _default is None:
            registry = CodeRegistry()
            _populate(registry)
            _default = registry
        return _default
