"""Structural validation of block-structured LDPC codes.

These checks encode the properties the paper's decoder architecture
relies on: weight-1 circulants (so the barrel shifter suffices for
message routing), the dual-diagonal parity part (so linear-time encoding
works), and 4-cycle freedom (so min-sum message passing is well behaved
over the first iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.codes.construction import _four_cycle_pairs
from repro.codes.qc import QCLDPCCode


@dataclass
class CodeReport:
    """Result of :func:`check_code`: per-property pass/fail plus notes."""

    circulant_weights: bool
    dual_diagonal: bool
    girth_at_least_6: bool
    column_degrees_ok: bool
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every structural property holds."""
        return (
            self.circulant_weights
            and self.dual_diagonal
            and self.girth_at_least_6
            and self.column_degrees_ok
        )


def circulant_weights_ok(code: QCLDPCCode) -> bool:
    """Every non-zero block of the expanded H has row/column weight 1."""
    h = code.parity_check_matrix
    z = code.z
    for i in range(code.mb):
        for j in range(code.nb):
            block = h[i * z : (i + 1) * z, j * z : (j + 1) * z]
            weight = int(block.sum())
            if code.base.shifts[i, j] == ZERO_BLOCK:
                if weight != 0:
                    return False
            else:
                if weight != z:
                    return False
                if np.any(block.sum(axis=0) != 1) or np.any(block.sum(axis=1) != 1):
                    return False
    return True


def is_dual_diagonal(base: BaseMatrix) -> bool:
    """Check the WiMax/WiFi parity-part structure.

    Requires: a special column at ``kb`` with exactly three entries —
    equal shifts in the first and last block rows (so they cancel when
    all block rows are summed) plus one interior entry of any shift —
    followed by ``mb - 1`` dual-diagonal zero-shift columns.
    """
    mb, nb = base.mb, base.nb
    kb = nb - mb
    shifts = base.shifts

    special = shifts[:, kb]
    nz = np.flatnonzero(special != ZERO_BLOCK)
    if len(nz) != 3:
        return False
    top, mid, bot = (int(r) for r in nz)
    if top != 0 or bot != mb - 1:
        return False
    if special[top] != special[bot]:
        return False

    for i in range(mb - 1):
        col = shifts[:, kb + 1 + i]
        nz = np.flatnonzero(col != ZERO_BLOCK)
        if list(nz) != [i, i + 1]:
            return False
        if col[i] != 0 or col[i + 1] != 0:
            return False
    return True


def girth_lower_bound_ok(base: BaseMatrix) -> bool:
    """True iff the expanded Tanner graph has no 4-cycles (girth >= 6)."""
    return not any(True for _ in _four_cycle_pairs(base.shifts, base.z))


def column_degrees_ok(base: BaseMatrix, minimum: int = 2) -> bool:
    """All systematic block columns participate in >= ``minimum`` layers.

    Degree-1 systematic variables receive only one check message and
    effectively never correct; the last dual-diagonal parity column is
    exempt (it legitimately has degree 1 in this family).
    """
    degrees = base.col_degrees()
    return bool(np.all(degrees[: base.nb - 1] >= minimum)) and degrees[-1] >= 1


def check_code(code: QCLDPCCode) -> CodeReport:
    """Run every structural check and return a :class:`CodeReport`."""
    report = CodeReport(
        circulant_weights=circulant_weights_ok(code),
        dual_diagonal=is_dual_diagonal(code.base),
        girth_at_least_6=girth_lower_bound_ok(code.base),
        column_degrees_ok=column_degrees_ok(code.base),
    )
    if not report.circulant_weights:
        report.notes.append("some block is not a weight-1 circulant")
    if not report.dual_diagonal:
        report.notes.append("parity part is not dual-diagonal encodable")
    if not report.girth_at_least_6:
        report.notes.append("expanded graph contains 4-cycles")
    if not report.column_degrees_ok:
        report.notes.append("a systematic block column has degree < 2")
    return report
