"""Rate adaptation: shortening and puncturing of QC-LDPC codes.

WiMax/WiFi systems adapt the effective code rate without new matrices:

* **shortening** — fix the last ``s`` systematic bits to zero at the
  encoder and give them infinite (maximum) LLRs at the decoder.  The
  effective rate drops: ``(k - s) / (n - s)``;
* **puncturing** — skip transmitting ``p`` chosen parity bits; the
  decoder sees erasures (zero LLRs) there.  The effective rate rises:
  ``k / (n - p)``.

Both integrate with every decoder in the package because they act
purely on the LLR vector; the parity-check matrix never changes — which
is exactly why hardware (the paper's flexible decoder included) gets
them for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.encoder.ru import RuEncoder
from repro.errors import CodeConstructionError

#: LLR magnitude representing a known (shortened) zero bit.
_KNOWN_LLR = 64.0


@dataclass(frozen=True)
class RateAdaptedCode(object):
    """A mother code plus a shortening/puncturing pattern.

    Attributes
    ----------
    code:
        The mother QC-LDPC code (unchanged).
    shortened:
        Number of trailing systematic bits fixed to zero.
    punctured:
        Indices of codeword positions not transmitted.
    encoder:
        Optional mother-code encoder used by :meth:`encode` when no
        per-call encoder is given.  Families without the dual-diagonal
        parity layout (5G NR's raptor-like codes) attach their own here;
        dual-diagonal codes fall back to :class:`RuEncoder`.
    """

    code: QCLDPCCode
    shortened: int = 0
    punctured: tuple = ()
    encoder: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        k = self.code.k
        if not 0 <= self.shortened < k:
            raise CodeConstructionError(
                f"shortened {self.shortened} out of range [0, {k})"
            )
        punct = tuple(sorted(int(i) for i in self.punctured))
        for i in punct:
            if not 0 <= i < self.code.n:
                raise CodeConstructionError(f"punctured index {i} out of range")
            if i < k:
                raise CodeConstructionError(
                    f"puncturing systematic bit {i}; puncture parity only"
                )
        if len(set(punct)) != len(punct):
            raise CodeConstructionError("duplicate punctured indices")
        object.__setattr__(self, "punctured", punct)

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def payload_bits(self) -> int:
        """Information bits actually carried per frame."""
        return self.code.k - self.shortened

    @property
    def transmitted_bits(self) -> int:
        """Channel uses per frame."""
        return self.code.n - self.shortened - len(self.punctured)

    @property
    def effective_rate(self) -> float:
        """Payload over transmitted bits."""
        return self.payload_bits / self.transmitted_bits

    # ------------------------------------------------------------------
    # encode / channel mapping
    # ------------------------------------------------------------------
    def encode(self, message: np.ndarray, encoder: Optional[RuEncoder] = None):
        """Encode a shortened payload; returns the transmitted bits.

        The shortened positions are zero-filled before mother-code
        encoding and removed (with the punctured parity) from the
        output.
        """
        message = np.asarray(message, dtype=np.uint8)
        if message.shape != (self.payload_bits,):
            raise CodeConstructionError(
                f"payload length {message.shape} != ({self.payload_bits},)"
            )
        encoder = encoder or self.encoder or RuEncoder(self.code)
        full_message = np.concatenate(
            [message, np.zeros(self.shortened, dtype=np.uint8)]
        )
        codeword = encoder.encode(full_message)
        return codeword[self._transmit_mask()]

    def expand_llrs(self, received_llrs: np.ndarray) -> np.ndarray:
        """Map received LLRs back onto the mother code's n positions.

        Shortened bits get large positive LLRs (known zeros); punctured
        bits get zero LLRs (erasures).
        """
        received_llrs = np.asarray(received_llrs, dtype=np.float64)
        if received_llrs.shape != (self.transmitted_bits,):
            raise CodeConstructionError(
                f"received length {received_llrs.shape} != "
                f"({self.transmitted_bits},)"
            )
        llrs = np.zeros(self.code.n)
        llrs[self._transmit_mask()] = received_llrs
        k = self.code.k
        if self.shortened:
            llrs[k - self.shortened : k] = _KNOWN_LLR
        return llrs

    def extract_payload(self, decoded_bits: np.ndarray) -> np.ndarray:
        """Recover the shortened payload from decoded mother-code bits."""
        decoded_bits = np.asarray(decoded_bits, dtype=np.uint8)
        return decoded_bits[: self.payload_bits].copy()

    def _transmit_mask(self) -> np.ndarray:
        mask = np.ones(self.code.n, dtype=bool)
        k = self.code.k
        if self.shortened:
            mask[k - self.shortened : k] = False
        for i in self.punctured:
            mask[i] = False
        return mask


def shorten(code: QCLDPCCode, bits: int) -> RateAdaptedCode:
    """Shorten the last ``bits`` systematic bits (rate decreases)."""
    return RateAdaptedCode(code, shortened=bits)


def puncture(
    code: QCLDPCCode, bits: int, pattern: Optional[Sequence[int]] = None
) -> RateAdaptedCode:
    """Puncture ``bits`` parity positions (rate increases).

    The default pattern removes parity bits from the *end* of the
    codeword (the last dual-diagonal blocks), which are the least
    protected and the standard place to start.
    """
    if pattern is not None:
        return RateAdaptedCode(code, punctured=tuple(pattern))
    if bits < 0 or bits > code.m:
        raise CodeConstructionError(f"cannot puncture {bits} of {code.m} parity bits")
    return RateAdaptedCode(
        code, punctured=tuple(range(code.n - bits, code.n))
    )


def rate_match(
    code: QCLDPCCode,
    target_rate: float,
    encoder: Optional[Any] = None,
) -> RateAdaptedCode:
    """Hit a target effective rate with the mother code's H unchanged.

    Chooses the adaptation direction automatically: puncture trailing
    parity to raise the rate (``k / (n - p) = target``), shorten
    trailing systematic bits to lower it
    (``(k - s) / (n - s) = target``).  The returned pattern's
    :attr:`~RateAdaptedCode.effective_rate` is the closest integral
    solution.  ``encoder`` is attached to the result for families whose
    mother code is not RU-encodable (see :func:`repro.codes.nr.nr_rate_match`).
    """
    if not 0.0 < target_rate < 1.0:
        raise CodeConstructionError(
            f"target rate must be in (0, 1), got {target_rate}"
        )
    k, n = code.k, code.n
    if target_rate > code.rate:
        punctured = int(round(n - k / target_rate))
        if punctured >= code.m:
            raise CodeConstructionError(
                f"target rate {target_rate:.3f} needs {punctured} punctured "
                f"parity bits but the code only has {code.m}"
            )
        return RateAdaptedCode(
            code,
            punctured=tuple(range(n - punctured, n)),
            encoder=encoder,
        )
    shortened = int(round((k - target_rate * n) / (1.0 - target_rate)))
    if shortened >= k:
        raise CodeConstructionError(
            f"target rate {target_rate:.3f} would shorten all {k} "
            "systematic bits"
        )
    return RateAdaptedCode(code, shortened=max(shortened, 0), encoder=encoder)
