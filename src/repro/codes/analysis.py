"""Code analysis: degree distributions, density, and short cycles.

The standard structural diagnostics a coding engineer runs before
committing to a matrix:

* **degree distributions** — the edge-perspective lambda/rho polynomials
  density evolution operates on, plus node-perspective histograms;
* **density** — non-zero fraction of H (LDPC means *low*);
* **short-cycle census** — counts of length-4 and length-6 cycles in
  the expanded Tanner graph, computed at block level (cheap for QC
  codes and exact, since cycles in the expansion project to closed
  block-walks whose accumulated shift is zero mod z).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.codes.qc import QCLDPCCode


@dataclass
class DegreeDistributions(object):
    """Node- and edge-perspective degree distributions.

    ``lambda_poly`` / ``rho_poly`` map degree -> *edge fraction*
    (the density-evolution convention); ``variable_nodes`` /
    ``check_nodes`` map degree -> node count.
    """

    variable_nodes: Dict[int, int]
    check_nodes: Dict[int, int]
    lambda_poly: Dict[int, float]
    rho_poly: Dict[int, float]

    def mean_variable_degree(self) -> float:
        """Average variable-node degree."""
        total = sum(self.variable_nodes.values())
        edges = sum(d * c for d, c in self.variable_nodes.items())
        return edges / total if total else 0.0

    def mean_check_degree(self) -> float:
        """Average check-node degree."""
        total = sum(self.check_nodes.values())
        edges = sum(d * c for d, c in self.check_nodes.items())
        return edges / total if total else 0.0


def degree_distributions(code: QCLDPCCode) -> DegreeDistributions:
    """Compute node and edge degree distributions of a code."""
    var_degrees: Dict[int, int] = {}
    for adj in code.variable_adjacency:
        var_degrees[len(adj)] = var_degrees.get(len(adj), 0) + 1
    chk_degrees: Dict[int, int] = {}
    for adj in code.check_adjacency:
        chk_degrees[len(adj)] = chk_degrees.get(len(adj), 0) + 1

    edges = code.num_edges
    lam = {d: d * c / edges for d, c in var_degrees.items()}
    rho = {d: d * c / edges for d, c in chk_degrees.items()}
    return DegreeDistributions(var_degrees, chk_degrees, lam, rho)


def density(code: QCLDPCCode) -> float:
    """Fraction of non-zero entries in the expanded H."""
    return code.num_edges / (code.n * code.m)


def count_4_cycles(base: BaseMatrix) -> int:
    """Exact 4-cycle count of the expanded graph.

    A 4-cycle uses two block rows and two block columns where all four
    blocks are non-zero and ``s11 - s12 + s22 - s21 == 0 (mod z)``;
    each such block pattern contributes z expanded cycles.
    """
    shifts = base.shifts
    z = base.z
    count = 0
    for i1 in range(base.mb):
        for i2 in range(i1 + 1, base.mb):
            shared = np.flatnonzero(
                (shifts[i1] != ZERO_BLOCK) & (shifts[i2] != ZERO_BLOCK)
            )
            for a in range(len(shared)):
                for b in range(a + 1, len(shared)):
                    j1, j2 = int(shared[a]), int(shared[b])
                    delta = (
                        shifts[i1, j1]
                        - shifts[i1, j2]
                        + shifts[i2, j2]
                        - shifts[i2, j1]
                    ) % z
                    if delta == 0:
                        count += z
    return count


def count_6_cycles(base: BaseMatrix) -> int:
    """Exact 6-cycle count of the expanded graph.

    A 6-cycle alternates three block rows and three block columns with
    the six corner blocks non-zero; each hexagon contributes z expanded
    cycles when its accumulated shift is zero mod z.  With the row
    triple ordered (i1 < i2 < i3) and columns assigned to the row pairs
    (i1,i2), (i2,i3), (i3,i1), every cycle is generated exactly once —
    the reverse traversal maps back to the same assignment (validated
    against a brute-force networkx census in the tests).
    """
    shifts = base.shifts
    z = base.z
    mb, nb = base.mb, base.nb
    count = 0
    rows = range(mb)
    for i1 in rows:
        for i2 in range(i1 + 1, mb):
            for i3 in range(i2 + 1, mb):
                cols12 = np.flatnonzero(
                    (shifts[i1] != ZERO_BLOCK) & (shifts[i2] != ZERO_BLOCK)
                )
                cols23 = np.flatnonzero(
                    (shifts[i2] != ZERO_BLOCK) & (shifts[i3] != ZERO_BLOCK)
                )
                cols31 = np.flatnonzero(
                    (shifts[i3] != ZERO_BLOCK) & (shifts[i1] != ZERO_BLOCK)
                )
                for j1 in cols12:
                    for j2 in cols23:
                        if j2 == j1:
                            continue
                        for j3 in cols31:
                            if j3 == j1 or j3 == j2:
                                continue
                            delta = (
                                shifts[i1, int(j1)]
                                - shifts[i2, int(j1)]
                                + shifts[i2, int(j2)]
                                - shifts[i3, int(j2)]
                                + shifts[i3, int(j3)]
                                - shifts[i1, int(j3)]
                            ) % z
                            if delta == 0:
                                count += z
    return count


def girth(base: BaseMatrix, max_check: int = 6) -> int:
    """Girth of the expanded graph, checked up to ``max_check``.

    Returns 4 or 6 when cycles of that length exist, otherwise
    ``max_check + 2`` meaning "greater than max_check".
    """
    if count_4_cycles(base) > 0:
        return 4
    if max_check >= 6 and count_6_cycles(base) > 0:
        return 6
    return max_check + 2
