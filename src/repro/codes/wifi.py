"""IEEE 802.11n (WiFi) block-structured LDPC code family.

802.11n defines codes of length 648/1296/1944 (z = 27/54/81, always 24
block columns) at rates 1/2, 2/3, 3/4 and 5/6.  Table II of the paper
compares against a decoder for this family ([2], max length 1944).

Fidelity note (see DESIGN.md section 2): the rate-1/2, z = 81 prototype
is entered from the published standard.  The standard publishes a
separate table per block length; here the smaller rate-1/2 sizes are
derived by modulo-scaling the z = 81 table, and the higher-rate matrices
are deterministic structure-preserving constructions (correct block
dimensions, dual-diagonal parity part, row-degree profiles, girth >= 6
by construction) produced by :mod:`repro.codes.construction`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codes.base_matrix import BaseMatrix, base_matrix_from_rows
from repro.codes.construction import make_base_matrix
from repro.codes.qc import QCLDPCCode
from repro.errors import CodeConstructionError

#: Legal 802.11n codeword lengths and their expansion factors.
WIFI_BLOCK_LENGTHS: Dict[int, int] = {648: 27, 1296: 54, 1944: 81}

#: Rate name -> (mb, total row degree used for constructed matrices).
WIFI_RATES: Dict[str, Tuple[int, int]] = {
    "1/2": (12, 8),
    "2/3": (8, 11),
    "3/4": (6, 15),
    "5/6": (4, 20),
}

_NB = 24

# Published 802.11n rate-1/2 prototype for z = 81 (length 1944).
_RATE_1_2_Z81 = [
    [57, -1, -1, -1, 50, -1, 11, -1, 50, -1, 79, -1, 1, 0, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [3, -1, 28, -1, 0, -1, -1, -1, 55, 7, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [30, -1, -1, -1, 24, 37, -1, -1, 56, 14, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1, -1],
    [62, 53, -1, -1, 53, -1, -1, 3, 35, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1],
    [40, -1, -1, 20, 66, -1, -1, 22, 28, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1],
    [0, -1, -1, -1, 8, -1, 42, -1, 50, -1, -1, 8, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1],
    [69, 79, 79, -1, -1, -1, 56, -1, 52, -1, -1, -1, 0, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1],
    [65, -1, -1, -1, 38, 57, -1, -1, 72, -1, 27, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1],
    [64, -1, -1, -1, 14, 52, -1, -1, 30, -1, -1, 32, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1],
    [-1, 45, -1, 70, 0, -1, -1, -1, 77, 9, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1],
    [2, 56, -1, 57, 35, -1, -1, -1, -1, -1, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0],
    [24, -1, 61, -1, 60, -1, -1, 27, 51, -1, -1, 16, 1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0],
]

_CONSTRUCTION_SEED = 20091109  # SOCC 2009 — deterministic generated tables


def wifi_base_matrix(rate: str = "1/2", n: int = 1944) -> BaseMatrix:
    """The 802.11n prototype matrix for a rate at codeword length ``n``."""
    if n not in WIFI_BLOCK_LENGTHS:
        raise CodeConstructionError(
            f"802.11n length must be one of {sorted(WIFI_BLOCK_LENGTHS)}, got {n}"
        )
    if rate not in WIFI_RATES:
        raise CodeConstructionError(
            f"unknown 802.11n rate {rate!r}; choose from {sorted(WIFI_RATES)}"
        )
    z = WIFI_BLOCK_LENGTHS[n]
    if rate == "1/2":
        base = base_matrix_from_rows(_RATE_1_2_Z81, 81, name="802.11n r1/2 z=81")
        if z == 81:
            return base
        return base.scaled(z, mode="modulo", name=f"802.11n r1/2 z={z}")
    mb, degree = WIFI_RATES[rate]
    return make_base_matrix(
        mb,
        _NB,
        z,
        row_degree=degree,
        seed=_CONSTRUCTION_SEED + z + 1000 * mb,
        name=f"802.11n r{rate} z={z} (constructed)",
    )


def wifi_code(rate: str = "1/2", n: int = 1944) -> QCLDPCCode:
    """Build an 802.11n LDPC code by rate and codeword length."""
    return QCLDPCCode(wifi_base_matrix(rate, n))
