"""Programmatic construction of dual-diagonal QC-LDPC codes.

The WiMax/WiFi families share one parity structure (see Fig 2 of the
paper and the encoder in :mod:`repro.encoder.ru`):

* ``kb = nb - mb`` systematic block columns with free shift values;
* one *special* parity column with exactly three non-zero blocks — top
  row and bottom row with equal shifts, plus one interior row with shift
  zero;
* ``mb - 1`` dual-diagonal parity columns, column ``kb + 1 + i`` holding
  zero-shift identities in rows ``i`` and ``i + 1``.

This module generates matrices with that structure for arbitrary shapes
and degree profiles, with greedy 4-cycle avoidance, so tests and
experiments can run on code families that are independent of the
hand-entered standard tables.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.codes.qc import QCLDPCCode
from repro.errors import CodeConstructionError
from repro.utils.rng import SeedLike, as_generator

_MAX_SHIFT_TRIES = 64


def make_base_matrix(
    mb: int,
    nb: int,
    z: int,
    row_degree: Optional[int] = None,
    row_degrees: Optional[Sequence[int]] = None,
    seed: SeedLike = 0,
    avoid_4_cycles: bool = True,
    name: str = "",
) -> BaseMatrix:
    """Generate a dual-diagonal QC-LDPC prototype matrix.

    Parameters
    ----------
    mb, nb:
        Block dimensions; ``nb > mb >= 2`` required.
    z:
        Expansion factor.
    row_degree / row_degrees:
        Target total non-zero blocks per block row (including the parity
        part).  Provide either a single degree for all rows or one per
        row.  Defaults to a WiMax-like profile that uses about half of
        the data columns per row.
    seed:
        RNG seed for position and shift selection (deterministic).
    avoid_4_cycles:
        Resample shifts that close a length-4 cycle in the Tanner graph
        (best effort: gives girth >= 6 in practice for sparse profiles).
    """
    if mb < 2 or nb <= mb:
        raise CodeConstructionError(f"need nb > mb >= 2, got mb={mb}, nb={nb}")
    kb = nb - mb
    rng = as_generator(seed)

    degrees = _resolve_degrees(mb, kb, row_degree, row_degrees)
    shifts = np.full((mb, nb), ZERO_BLOCK, dtype=np.int64)

    # Parity part: special column + dual diagonal.
    mid = mb // 2
    special_shift = int(rng.integers(0, z)) if z > 1 else 0
    shifts[0, kb] = special_shift
    shifts[mid, kb] = 0
    shifts[mb - 1, kb] = special_shift
    for i in range(mb - 1):
        shifts[i, kb + 1 + i] = 0
        shifts[i + 1, kb + 1 + i] = 0

    # Data part positions: per-row sampling biased toward the currently
    # least-used columns so every data column ends with degree >= 2.
    parity_deg = (shifts != ZERO_BLOCK).sum(axis=1)
    col_use = np.zeros(kb, dtype=np.int64)
    for i in range(mb):
        want = degrees[i] - int(parity_deg[i])
        if want < 1 or want > kb:
            raise CodeConstructionError(
                f"row {i}: data degree {want} infeasible for kb={kb}"
            )
        order = np.lexsort((rng.random(kb), col_use))
        chosen = order[:want]
        col_use[chosen] += 1
        for j in chosen:
            shifts[i, int(j)] = int(rng.integers(0, z))

    if np.any(col_use == 0):
        # Re-home: move an entry from an over-used column in some row to
        # each empty column, keeping row degrees intact.
        for j in np.flatnonzero(col_use == 0):
            donor_col = int(np.argmax(col_use))
            donor_rows = np.flatnonzero(shifts[:, donor_col] != ZERO_BLOCK)
            row = int(donor_rows[0])
            shifts[row, int(j)] = shifts[row, donor_col]
            shifts[row, donor_col] = ZERO_BLOCK
            col_use[int(j)] += 1
            col_use[donor_col] -= 1

    base = BaseMatrix(shifts, z, name or f"random-qc mb={mb} nb={nb} z={z}")
    if avoid_4_cycles and z > 1:
        base = _break_4_cycles(base, rng)
    return base


def random_qc_code(
    mb: int,
    nb: int,
    z: int,
    row_degree: Optional[int] = None,
    seed: SeedLike = 0,
    name: str = "",
) -> QCLDPCCode:
    """Convenience wrapper: generated prototype -> expanded code."""
    base = make_base_matrix(mb, nb, z, row_degree=row_degree, seed=seed, name=name)
    return QCLDPCCode(base)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _resolve_degrees(
    mb: int,
    kb: int,
    row_degree: Optional[int],
    row_degrees: Optional[Sequence[int]],
) -> np.ndarray:
    if row_degrees is not None:
        degrees = np.asarray(row_degrees, dtype=np.int64)
        if degrees.shape != (mb,):
            raise CodeConstructionError(
                f"row_degrees must have length {mb}, got {degrees.shape}"
            )
        return degrees
    if row_degree is None:
        row_degree = max(3, kb // 2 + 2)
    return np.full(mb, int(row_degree), dtype=np.int64)


def _four_cycle_pairs(shifts: np.ndarray, z: int):
    """Yield (i1, i2, j1, j2) row pairs whose shared columns close a 4-cycle.

    Two circulant blocks pairs ((i1,j1),(i1,j2),(i2,j1),(i2,j2)), all
    non-zero, form a length-4 cycle in the expanded graph iff
    ``s(i1,j1) - s(i1,j2) + s(i2,j2) - s(i2,j1) == 0 (mod z)``.
    """
    mb, nb = shifts.shape
    for i1 in range(mb):
        for i2 in range(i1 + 1, mb):
            shared = np.flatnonzero(
                (shifts[i1] != ZERO_BLOCK) & (shifts[i2] != ZERO_BLOCK)
            )
            for a in range(len(shared)):
                for b in range(a + 1, len(shared)):
                    j1, j2 = int(shared[a]), int(shared[b])
                    delta = (
                        shifts[i1, j1]
                        - shifts[i1, j2]
                        + shifts[i2, j2]
                        - shifts[i2, j1]
                    ) % z
                    if delta == 0:
                        yield i1, i2, j1, j2


def _break_4_cycles(base: BaseMatrix, rng: np.random.Generator) -> BaseMatrix:
    """Resample data-part shifts until no 4-cycles remain (best effort)."""
    shifts = base.shifts.copy()
    z = base.z
    kb = base.nb - base.mb
    for _ in range(_MAX_SHIFT_TRIES):
        cycles = list(_four_cycle_pairs(shifts, z))
        if not cycles:
            break
        for i1, i2, j1, j2 in cycles:
            # Only perturb data-part entries; the parity structure is fixed.
            candidates = [
                (i, j)
                for (i, j) in ((i1, j1), (i1, j2), (i2, j1), (i2, j2))
                if j < kb
            ]
            if not candidates:
                continue
            i, j = candidates[int(rng.integers(0, len(candidates)))]
            shifts[i, j] = int(rng.integers(0, z))
    return BaseMatrix(shifts, z, base.name)
