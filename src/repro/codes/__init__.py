"""QC-LDPC code structures: base matrices, expansion, standard families.

The paper's decoder operates on *block-structured* (quasi-cyclic) LDPC
codes: the parity-check matrix H is an L x C array of z x z blocks, each
either zero or a cyclically shifted identity (Fig 2 of the paper).  This
package provides

* :class:`BaseMatrix` — the prototype (shift) matrix plus expansion;
* :class:`QCLDPCCode` — a fully expanded code with layer views, sparse
  row/column adjacency, and the metadata the architecture models need
  (block columns per layer, memory footprints);
* the IEEE 802.16e (WiMax) and IEEE 802.11n base-matrix tables, and the
  5G NR BG1/BG2 raptor-like family (:mod:`repro.codes.nr`);
* :class:`CodeRegistry` — the multi-standard code zoo mapping wire-safe
  string ids onto lazily built codes (:func:`default_registry`);
* a programmatic construction of valid dual-diagonal QC-LDPC codes;
* structural validation helpers.
"""

from repro.codes.base_matrix import BaseMatrix, scale_shift
from repro.codes.qc import QCLDPCCode
from repro.codes.wimax import (
    WIMAX_RATES,
    WIMAX_Z_FACTORS,
    wimax_base_matrix,
    wimax_code,
)
from repro.codes.wifi import (
    WIFI_BLOCK_LENGTHS,
    WIFI_RATES,
    wifi_base_matrix,
    wifi_code,
)
from repro.codes.nr import (
    NR_BASE_GRAPHS,
    NR_LIFTING_SIZES,
    NrEncoder,
    nr_base_matrix,
    nr_code,
    nr_rate_match,
)
from repro.codes.registry import (
    CodeEntry,
    CodeRegistry,
    default_registry,
)
from repro.codes.construction import random_qc_code, make_base_matrix
from repro.codes.alist import read_alist, to_alist, write_alist
from repro.codes.rate_adapt import RateAdaptedCode, puncture, rate_match, shorten
from repro.codes.from_dense import (
    code_from_alist,
    code_from_dense,
    infer_expansion_factor,
)
from repro.codes.analysis import (
    count_4_cycles,
    count_6_cycles,
    degree_distributions,
    density,
    girth,
)
from repro.codes.density_evolution import BecDensityEvolution
from repro.codes.validation import (
    check_code,
    circulant_weights_ok,
    girth_lower_bound_ok,
    is_dual_diagonal,
)

__all__ = [
    "BaseMatrix",
    "QCLDPCCode",
    "scale_shift",
    "WIMAX_RATES",
    "WIMAX_Z_FACTORS",
    "wimax_base_matrix",
    "wimax_code",
    "WIFI_BLOCK_LENGTHS",
    "WIFI_RATES",
    "wifi_base_matrix",
    "wifi_code",
    "NR_BASE_GRAPHS",
    "NR_LIFTING_SIZES",
    "NrEncoder",
    "nr_base_matrix",
    "nr_code",
    "nr_rate_match",
    "CodeEntry",
    "CodeRegistry",
    "default_registry",
    "random_qc_code",
    "make_base_matrix",
    "read_alist",
    "to_alist",
    "write_alist",
    "RateAdaptedCode",
    "puncture",
    "rate_match",
    "shorten",
    "code_from_alist",
    "code_from_dense",
    "infer_expansion_factor",
    "count_4_cycles",
    "count_6_cycles",
    "degree_distributions",
    "density",
    "girth",
    "BecDensityEvolution",
    "check_code",
    "circulant_weights_ok",
    "girth_lower_bound_ok",
    "is_dual_diagonal",
]
