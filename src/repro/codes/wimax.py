"""IEEE 802.16e (WiMax) block-structured LDPC code family.

The WiMax standard defines six rate classes (1/2, 2/3A, 2/3B, 3/4A, 3/4B,
5/6), each given as a 24-block-column prototype matrix at the maximum
expansion factor ``z0 = 96`` (code length 2304).  The 18 smaller code
lengths (576...2304 in steps of 96, ``z = 24...96`` in steps of 4) are
derived by scaling the shift coefficients: ``floor(s * z / 96)`` for all
rate classes except 2/3A, which uses ``s mod z``.

The rate-1/2 table below is the paper's case-study code: length 2304,
12 layers, 24 block columns, 76 non-zero blocks.  The largest per-rate
block count is 84 (rates 3/4A/3/4B), which is why the paper's R SRAM is
sized 84 x 768 bits (Table II).

Fidelity note (see DESIGN.md section 2): the rate-1/2 table is the
published standard table.  The other five rate classes are
*standard-like reconstructions* — they reproduce the standard's exact
structure (block dimensions, dual-diagonal parity part, special column
with matching top/bottom shifts, row-degree profile, 84-block maximum)
but individual data-part shift values may differ from the published
tables.  Every structural property the paper's evaluation depends on is
enforced by ``tests/test_codes_wimax.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codes.base_matrix import BaseMatrix, base_matrix_from_rows
from repro.codes.qc import QCLDPCCode
from repro.errors import CodeConstructionError

#: Rate classes defined by the standard, mapping to (numerator, denominator).
WIMAX_RATES: Dict[str, Tuple[int, int]] = {
    "1/2": (1, 2),
    "2/3A": (2, 3),
    "2/3B": (2, 3),
    "3/4A": (3, 4),
    "3/4B": (3, 4),
    "5/6": (5, 6),
}

#: Legal expansion factors: 24, 28, ..., 96.
WIMAX_Z_FACTORS = tuple(range(24, 97, 4))

_Z0 = 96

# ---------------------------------------------------------------------------
# Prototype tables at z0 = 96 (columns: 24; -1 denotes the zero block).
# ---------------------------------------------------------------------------

_RATE_1_2 = [
    [-1, 94, 73, -1, -1, -1, -1, -1, 55, 83, -1, -1, 7, 0, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [-1, 27, -1, -1, -1, 22, 79, 9, -1, -1, -1, 12, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1, -1, -1],
    [-1, -1, -1, 24, 22, 81, -1, 33, -1, -1, -1, 0, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1, -1],
    [61, -1, 47, -1, -1, -1, -1, -1, 65, 25, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1, -1],
    [-1, -1, 39, -1, -1, -1, 84, -1, -1, 41, 72, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1, -1],
    [-1, -1, -1, -1, 46, 40, -1, 82, -1, -1, -1, 79, 0, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1, -1],
    [-1, -1, 95, 53, -1, -1, -1, -1, -1, 14, 18, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1, -1],
    [-1, 11, 73, -1, -1, -1, 2, -1, -1, 47, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1, -1],
    [12, -1, -1, -1, 83, 24, -1, 43, -1, -1, -1, 51, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1, -1],
    [-1, -1, -1, -1, -1, 94, -1, 59, -1, -1, 70, 72, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, -1],
    [-1, -1, 7, 65, -1, -1, -1, -1, 39, 49, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0, 0],
    [43, -1, -1, -1, -1, 66, -1, 41, -1, -1, -1, 26, 7, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0],
]

_RATE_2_3A = [
    [3, 0, -1, -1, 2, 0, -1, 3, 7, -1, 1, 1, -1, -1, -1, -1, 1, 0, -1, -1, -1, -1, -1, -1],
    [-1, -1, 1, -1, 36, -1, -1, 34, 10, -1, -1, 18, 2, -1, 3, 0, -1, 0, 0, -1, -1, -1, -1, -1],
    [-1, -1, 12, 2, -1, 15, -1, 40, -1, 3, -1, 15, -1, 2, 13, -1, -1, -1, 0, 0, -1, -1, -1, -1],
    [-1, -1, 19, 24, -1, 3, 0, -1, 6, -1, 17, -1, -1, -1, 8, 39, -1, -1, -1, 0, 0, -1, -1, -1],
    [20, -1, 6, -1, -1, 10, 29, -1, -1, 28, -1, 14, -1, 38, -1, -1, 0, -1, -1, -1, 0, 0, -1, -1],
    [-1, -1, 10, -1, 28, 20, -1, -1, 8, -1, 36, -1, 9, -1, 21, 45, -1, -1, -1, -1, -1, 0, 0, -1],
    [35, 25, -1, 37, -1, 21, -1, -1, 5, -1, -1, 0, -1, 4, 20, -1, -1, -1, -1, -1, -1, -1, 0, 0],
    [-1, 6, 6, -1, -1, -1, 4, -1, 14, 30, -1, 3, 36, -1, 14, -1, 1, -1, -1, -1, -1, -1, -1, 0],
]

_RATE_2_3B = [
    [2, -1, 19, -1, 47, -1, 48, -1, 36, -1, 82, -1, 47, -1, 15, -1, 95, 0, -1, -1, -1, -1, -1, -1],
    [-1, 69, -1, 88, -1, 33, -1, 3, -1, 16, -1, 37, -1, 40, -1, 48, -1, 0, 0, -1, -1, -1, -1, -1],
    [10, -1, 86, -1, 62, -1, 28, -1, 85, -1, 16, -1, 34, -1, 73, -1, -1, -1, 0, 0, -1, -1, -1, -1],
    [-1, 28, -1, 32, -1, 81, -1, 27, -1, 88, -1, 5, -1, 56, -1, 37, -1, -1, -1, 0, 0, -1, -1, -1],
    [23, -1, 29, -1, 15, -1, 30, -1, 66, -1, 24, -1, 50, -1, 62, -1, -1, -1, -1, -1, 0, 0, -1, -1],
    [-1, 30, -1, 65, -1, 54, -1, 14, -1, 0, -1, 30, -1, 74, -1, 0, -1, -1, -1, -1, -1, 0, 0, -1],
    [32, -1, 0, -1, 15, -1, 56, -1, 85, -1, 5, -1, 6, -1, 52, -1, 0, -1, -1, -1, -1, -1, 0, 0],
    [-1, 0, -1, 47, -1, 13, -1, 61, -1, 84, -1, 55, -1, 78, -1, 41, 95, -1, -1, -1, -1, -1, -1, 0],
]

_RATE_3_4A = [
    [5, 38, 3, 93, -1, -1, -1, 30, 70, -1, 86, -1, 37, 38, 4, 11, -1, 46, 48, 0, -1, -1, -1, -1],
    [62, 94, 19, 84, -1, 92, 77, -1, 15, -1, -1, 92, -1, 45, 24, 32, 30, -1, -1, 0, 0, -1, -1, -1],
    [71, -1, 55, -1, 12, 66, 45, 79, -1, 78, -1, -1, 10, -1, 22, 55, 70, 82, -1, -1, 0, 0, -1, -1],
    [38, 61, -1, 66, 9, 73, 47, 64, -1, 39, -1, 43, -1, -1, -1, -1, 95, 32, 0, -1, -1, 0, 0, -1],
    [-1, -1, -1, -1, 32, 52, 55, 80, 95, 22, 6, 50, 24, 90, 44, 20, -1, -1, -1, -1, -1, -1, 0, 0],
    [-1, 63, 31, 88, 20, -1, -1, -1, 6, 40, 56, 16, 71, 53, -1, -1, 27, 26, 48, -1, -1, -1, -1, 0],
]

_RATE_3_4B = [
    [-1, 81, -1, 28, -1, -1, 14, 25, 18, -1, -1, 86, 29, 52, 78, 95, 22, 92, 0, 0, -1, -1, -1, -1],
    [42, -1, 14, 68, 32, -1, -1, -1, -1, 70, 43, 11, 36, 40, -1, 57, 38, 24, -1, 0, 0, -1, -1, -1],
    [-1, -1, 20, -1, -1, 63, 39, -1, 70, 67, -1, 38, 4, 72, 47, -1, 60, 5, 80, -1, 0, 0, -1, -1],
    [64, 2, -1, -1, 63, -1, -1, 3, 51, -1, 81, 15, 94, -1, 84, 36, 14, 19, -1, -1, -1, 0, 0, -1],
    [-1, 53, 60, 80, -1, 26, 75, -1, -1, -1, -1, 86, 77, 1, 3, 72, 60, 25, -1, -1, -1, -1, 0, 0],
    [77, -1, -1, -1, 15, 28, 35, -1, 72, 30, -1, 85, 84, 26, 64, 11, 89, -1, 0, -1, -1, -1, -1, 0],
]

# Rate 5/6 parity layout (kb = 20, mb = 4): special column 20 has its
# three entries at rows 0/1/3 with matching top/bottom shifts (80) and a
# zero-shift middle; columns 21-23 carry the dual diagonal.
_RATE_5_6 = [
    [1, 25, 55, -1, 47, 4, -1, 91, 84, 8, 86, 52, 82, 33, 5, 0, 36, 20, 4, 77, 80, 0, -1, -1],
    [-1, 6, -1, 36, 40, 47, 12, 79, 47, -1, 41, 21, 12, 71, 14, 72, 0, 44, 49, -1, 0, 0, 0, -1],
    [51, 81, 83, 4, 67, -1, 21, -1, 31, 24, 91, 61, 81, 9, 86, 78, 60, 88, 67, 15, -1, -1, 0, 0],
    [50, -1, 50, 15, -1, 36, 13, 10, 11, 20, 53, 90, 29, 92, 57, 30, 84, 92, 11, 66, 80, -1, -1, 0],
]

_TABLES = {
    "1/2": _RATE_1_2,
    "2/3A": _RATE_2_3A,
    "2/3B": _RATE_2_3B,
    "3/4A": _RATE_3_4A,
    "3/4B": _RATE_3_4B,
    "5/6": _RATE_5_6,
}

#: Scaling rule per rate class (IEEE 802.16e section 8.4.9.2.5).
_SCALING_MODE = {rate: ("modulo" if rate == "2/3A" else "floor") for rate in WIMAX_RATES}


def wimax_base_matrix(rate: str = "1/2", z: int = 96) -> BaseMatrix:
    """The WiMax prototype matrix for a rate class at expansion factor z.

    Parameters
    ----------
    rate:
        One of ``"1/2"``, ``"2/3A"``, ``"2/3B"``, ``"3/4A"``, ``"3/4B"``,
        ``"5/6"``.
    z:
        Expansion factor, one of :data:`WIMAX_Z_FACTORS` (24...96 step 4).
        Code length is ``24 * z``.
    """
    if rate not in _TABLES:
        raise CodeConstructionError(
            f"unknown WiMax rate {rate!r}; choose from {sorted(_TABLES)}"
        )
    if z not in WIMAX_Z_FACTORS:
        raise CodeConstructionError(
            f"z={z} is not a legal WiMax expansion factor {WIMAX_Z_FACTORS}"
        )
    base = base_matrix_from_rows(
        _TABLES[rate], _Z0, name=f"802.16e r{rate} z={_Z0}"
    )
    if z == _Z0:
        return base
    return base.scaled(z, mode=_SCALING_MODE[rate], name=f"802.16e r{rate} z={z}")


def wimax_code(rate: str = "1/2", n: int = 2304) -> QCLDPCCode:
    """Build a WiMax LDPC code by rate class and code length.

    ``n`` must be a multiple of 24 with ``n / 24`` a legal expansion
    factor.  The default is the paper's case study: the (2304, rate 1/2)
    code with z = 96.
    """
    if n % 24 != 0:
        raise CodeConstructionError(f"WiMax code length {n} not a multiple of 24")
    z = n // 24
    return QCLDPCCode(wimax_base_matrix(rate, z))


def wimax_max_r_words(z: int = 96) -> int:
    """R-memory depth needed to support every WiMax rate class.

    The paper sizes the R SRAM at 84 words: the largest non-zero block
    count over the six rate classes (reached by rate 3/4B).
    """
    return max(
        wimax_base_matrix(rate, z).nnz_blocks() for rate in WIMAX_RATES
    )
