"""MacKay *alist* import/export for parity-check matrices.

The alist format is the de-facto interchange format for LDPC matrices
(MacKay's database, aff3ct, GNU Radio all speak it).  Supporting it
lets this package's codes flow to other tools and lets externally
published matrices be decoded here.

Format (1-based indices, 0-padded ragged rows):

```
n m
max_col_degree max_row_degree
<col degrees ...>
<row degrees ...>
<n lines: check indices per variable, padded with 0>
<m lines: variable indices per check, padded with 0>
```
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.errors import CodeConstructionError

PathLike = Union[str, Path]


def write_alist(code: QCLDPCCode, path: PathLike) -> None:
    """Export a code's expanded H to an alist file."""
    Path(path).write_text(to_alist(code))


def to_alist(code: QCLDPCCode) -> str:
    """Render a code's expanded H in alist format."""
    var_adj = code.variable_adjacency
    chk_adj = code.check_adjacency
    col_degrees = [len(a) for a in var_adj]
    row_degrees = [len(a) for a in chk_adj]
    max_col = max(col_degrees)
    max_row = max(row_degrees)

    lines = [
        f"{code.n} {code.m}",
        f"{max_col} {max_row}",
        " ".join(str(d) for d in col_degrees),
        " ".join(str(d) for d in row_degrees),
    ]
    for adj in var_adj:
        entries = [str(int(x) + 1) for x in sorted(adj)]
        entries += ["0"] * (max_col - len(entries))
        lines.append(" ".join(entries))
    for adj in chk_adj:
        entries = [str(int(x) + 1) for x in sorted(adj)]
        entries += ["0"] * (max_row - len(entries))
        lines.append(" ".join(entries))
    return "\n".join(lines) + "\n"


def read_alist(path: PathLike) -> np.ndarray:
    """Parse an alist file into a dense binary parity-check matrix."""
    return parse_alist(Path(path).read_text())


def parse_alist(text: str) -> np.ndarray:
    """Parse alist text into a dense binary parity-check matrix."""
    tokens = text.split()
    if len(tokens) < 4:
        raise CodeConstructionError("alist: truncated header")
    pos = 0

    def take(count: int) -> List[int]:
        nonlocal pos
        if pos + count > len(tokens):
            raise CodeConstructionError("alist: truncated body")
        out = [int(t) for t in tokens[pos : pos + count]]
        pos += count
        return out

    n, m = take(2)
    if n < 1 or m < 1:
        raise CodeConstructionError(f"alist: bad dimensions {n} x {m}")
    max_col, max_row = take(2)
    col_degrees = take(n)
    row_degrees = take(m)
    if max(col_degrees) > max_col or max(row_degrees) > max_row:
        raise CodeConstructionError("alist: degree exceeds declared maximum")

    h = np.zeros((m, n), dtype=np.uint8)
    for col in range(n):
        entries = take(max_col)
        checks = [e for e in entries if e != 0]
        if len(checks) != col_degrees[col]:
            raise CodeConstructionError(
                f"alist: column {col} degree mismatch"
            )
        for check in checks:
            if not 1 <= check <= m:
                raise CodeConstructionError(
                    f"alist: check index {check} out of range"
                )
            h[check - 1, col] = 1
    # Row section is redundant; use it as a consistency check.
    for row in range(m):
        entries = take(max_row)
        variables = sorted(e for e in entries if e != 0)
        expected = sorted(int(v) + 1 for v in np.flatnonzero(h[row]))
        if variables != expected:
            raise CodeConstructionError(
                f"alist: row {row} disagrees with column section"
            )
    return h


def roundtrip_ok(code: QCLDPCCode) -> bool:
    """True iff export -> import reproduces the expanded H exactly."""
    return bool(
        np.array_equal(parse_alist(to_alist(code)), code.parity_check_matrix)
    )
