"""Expanded quasi-cyclic LDPC codes with layer-oriented views.

:class:`QCLDPCCode` is the central object of the algorithm substrate.  It
wraps a :class:`~repro.codes.base_matrix.BaseMatrix` and precomputes the
index structures that both the vectorized numpy decoder and the
cycle-accurate architecture models consume:

* per-layer ``(block_col, shift)`` lists (a *layer* is one block row —
  the unit of the paper's layered Algorithm 1);
* per-layer gather/scatter index matrices mapping each non-zero block's
  z lanes to absolute variable indices;
* flat check-node adjacency (for the flooding baseline decoder).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from repro.codes.base_matrix import BaseMatrix, ZERO_BLOCK
from repro.errors import CodeConstructionError


@dataclass(frozen=True)
class LayerView(object):
    """Precomputed index structure for one layer (block row).

    Attributes
    ----------
    block_cols:
        1-D array of the non-zero block-column indices of this layer.
    shifts:
        Matching circulant shifts (same length as ``block_cols``).
    var_idx:
        ``(degree, z)`` array; ``var_idx[k, r]`` is the absolute variable
        index read by check row ``r`` of the layer through its ``k``-th
        non-zero block.  Row ``r`` of a block with shift ``s`` connects to
        column ``(r + s) mod z`` of that block.
    """

    block_cols: np.ndarray
    shifts: np.ndarray
    var_idx: np.ndarray

    @property
    def degree(self) -> int:
        """Check-node degree (non-zero blocks in this layer)."""
        return int(self.block_cols.shape[0])


class QCLDPCCode(object):
    """A fully expanded quasi-cyclic LDPC code.

    Parameters
    ----------
    base:
        Prototype matrix with its expansion factor.
    name:
        Optional display name (defaults to the base matrix name).
    """

    def __init__(self, base: BaseMatrix, name: str = "") -> None:
        self.base = base
        self.name = name or base.name
        self.z = base.z
        self.mb = base.mb
        self.nb = base.nb
        self.n = base.n
        self.m = base.m
        self.k = self.n - self.m
        self._layers = self._build_layers()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_layers(self) -> List[LayerView]:
        z = self.z
        lanes = np.arange(z)
        layers = []
        for i in range(self.mb):
            blocks = self.base.row_blocks(i)
            if not blocks:
                raise CodeConstructionError(f"layer {i} is empty")
            cols = np.array([j for j, _ in blocks], dtype=np.int64)
            shifts = np.array([s for _, s in blocks], dtype=np.int64)
            var_idx = cols[:, None] * z + (lanes[None, :] + shifts[:, None]) % z
            layers.append(LayerView(cols, shifts, var_idx))
        return layers

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Design code rate k/n."""
        return self.k / self.n

    @property
    def num_layers(self) -> int:
        """Number of layers (block rows) processed per iteration."""
        return self.mb

    @property
    def layers(self) -> Sequence[LayerView]:
        """Layer views in natural (top-to-bottom) order."""
        return self._layers

    def layer(self, index: int) -> LayerView:
        """The :class:`LayerView` for block row ``index``."""
        return self._layers[index]

    @cached_property
    def nnz_blocks(self) -> int:
        """Total non-zero circulant blocks (R-memory words needed)."""
        return self.base.nnz_blocks()

    @cached_property
    def num_edges(self) -> int:
        """Edges in the Tanner graph (= nnz entries of expanded H)."""
        return self.nnz_blocks * self.z

    @cached_property
    def max_layer_degree(self) -> int:
        """Largest check-node degree over all layers."""
        return max(layer.degree for layer in self._layers)

    # ------------------------------------------------------------------
    # dense / adjacency exports
    # ------------------------------------------------------------------
    @cached_property
    def parity_check_matrix(self) -> np.ndarray:
        """The expanded binary H (dense ``uint8``; built lazily)."""
        return self.base.expand()

    @cached_property
    def check_adjacency(self) -> List[np.ndarray]:
        """Per expanded check row, the array of its variable indices.

        Used by the flooding baseline decoder; row ``m`` of the expanded H
        is check ``m = i*z + r`` where ``i`` is the layer and ``r`` the
        lane within the layer.
        """
        adjacency: List[np.ndarray] = []
        for layer in self._layers:
            for r in range(self.z):
                adjacency.append(layer.var_idx[:, r].copy())
        return adjacency

    @cached_property
    def variable_adjacency(self) -> List[np.ndarray]:
        """Per variable node, the array of its check indices."""
        buckets: List[List[int]] = [[] for _ in range(self.n)]
        for m, vs in enumerate(self.check_adjacency):
            for v in vs:
                buckets[int(v)].append(m)
        return [np.array(b, dtype=np.int64) for b in buckets]

    # ------------------------------------------------------------------
    # syndrome / codeword checks
    # ------------------------------------------------------------------
    def syndrome(self, bits: np.ndarray) -> np.ndarray:
        """Compute H x^T over GF(2) without materializing dense H.

        Returns an ``m``-long 0/1 vector ordered layer-major (layer ``i``
        lane ``r`` at position ``i*z + r``).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.n,):
            raise CodeConstructionError(
                f"codeword length {bits.shape} != ({self.n},)"
            )
        syn = np.empty(self.m, dtype=np.uint8)
        for i, layer in enumerate(self._layers):
            # XOR across the layer's blocks, one lane per check row.
            vals = bits[layer.var_idx]  # (degree, z)
            syn[i * self.z : (i + 1) * self.z] = np.bitwise_xor.reduce(vals, axis=0)
        return syn

    def is_codeword(self, bits: np.ndarray) -> bool:
        """True iff all parity checks are satisfied."""
        return not np.any(self.syndrome(bits))

    # ------------------------------------------------------------------
    # memory sizing (consumed by the architecture models)
    # ------------------------------------------------------------------
    def p_memory_words(self) -> int:
        """P-SRAM depth: one word (z LLRs) per block column."""
        return self.nb

    def r_memory_words(self) -> int:
        """R-SRAM depth: one word (z messages) per non-zero block."""
        return self.nnz_blocks

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"QCLDPCCode(name={self.name!r}, n={self.n}, k={self.k}, "
            f"z={self.z}, layers={self.mb})"
        )
