"""Density evolution on the binary erasure channel (BEC).

The asymptotic tool behind every LDPC design decision: given the
edge-perspective degree distributions lambda/rho (from
:mod:`repro.codes.analysis`), iterate the erasure fixed point

    x_{l+1} = eps * lambda(1 - rho(1 - x_l))

and find the *threshold* — the largest channel erasure probability
``eps`` for which the erasure fraction converges to zero.  A code
ensemble decodes reliably (as n grows) below its threshold and fails
above it; the classic calibration point is the regular (3,6) ensemble
at eps* ~= 0.4294.

The BEC is the analytically clean proxy for the AWGN waterfall the
evaluation measures: a code family whose BEC threshold is close to
capacity (1 - rate) has a correspondingly tight AWGN waterfall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.codes.analysis import degree_distributions
from repro.codes.qc import QCLDPCCode
from repro.errors import ReproError


def _poly_eval(poly: Dict[int, float], x: float) -> float:
    """Evaluate sum_d poly[d] * x^(d-1) (edge-perspective convention)."""
    return sum(frac * x ** (d - 1) for d, frac in poly.items())


@dataclass
class DensityEvolutionResult(object):
    """Outcome of one fixed-point run at a given erasure probability."""

    epsilon: float
    converged: bool
    iterations: int
    final_erasure: float


class BecDensityEvolution(object):
    """Erasure-channel density evolution for a degree-distribution pair.

    Parameters
    ----------
    lambda_poly / rho_poly:
        Edge-perspective distributions (degree -> edge fraction).
    """

    def __init__(
        self, lambda_poly: Dict[int, float], rho_poly: Dict[int, float]
    ) -> None:
        for name, poly in (("lambda", lambda_poly), ("rho", rho_poly)):
            total = sum(poly.values())
            if abs(total - 1.0) > 1e-6:
                raise ReproError(
                    f"{name} edge fractions sum to {total}, expected 1"
                )
        self.lambda_poly = dict(lambda_poly)
        self.rho_poly = dict(rho_poly)

    @classmethod
    def for_code(cls, code: QCLDPCCode) -> "BecDensityEvolution":
        """Build from a concrete code's measured degree distributions."""
        dist = degree_distributions(code)
        return cls(dist.lambda_poly, dist.rho_poly)

    @classmethod
    def regular(cls, dv: int, dc: int) -> "BecDensityEvolution":
        """The regular (dv, dc) ensemble."""
        return cls({dv: 1.0}, {dc: 1.0})

    # ------------------------------------------------------------------
    # fixed point
    # ------------------------------------------------------------------
    def evolve(
        self,
        epsilon: float,
        max_iterations: int = 2000,
        target: float = 1e-10,
    ) -> DensityEvolutionResult:
        """Iterate the erasure fixed point at channel erasure ``epsilon``."""
        if not 0.0 <= epsilon <= 1.0:
            raise ReproError(f"epsilon {epsilon} outside [0, 1]")
        x = epsilon
        for iteration in range(1, max_iterations + 1):
            x_next = epsilon * _poly_eval(
                self.lambda_poly, 1.0 - _poly_eval(self.rho_poly, 1.0 - x)
            )
            if x_next < target:
                return DensityEvolutionResult(epsilon, True, iteration, x_next)
            if abs(x_next - x) < 1e-14:
                return DensityEvolutionResult(epsilon, False, iteration, x_next)
            x = x_next
        return DensityEvolutionResult(epsilon, x < target, max_iterations, x)

    def threshold(self, tolerance: float = 1e-4) -> float:
        """Bisect for the decoding threshold eps*."""
        lo, hi = 0.0, 1.0
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            if self.evolve(mid).converged:
                lo = mid
            else:
                hi = mid
        return lo

    def capacity_gap(self, rate: float) -> float:
        """Distance from the Shannon limit: (1 - rate) - threshold."""
        if not 0.0 < rate < 1.0:
            raise ReproError(f"rate {rate} outside (0, 1)")
        return (1.0 - rate) - self.threshold()
