"""Channel-adaptive HARQ-like client session over the gateway.

Link adaptation in miniature: a client watches a (simulated) channel
whose SNR sweeps the band with seeded jitter, and picks a code from the
registry zoo per frame — robust low-rate codes when the channel is bad,
aggressive high-rate codes when it is good — exactly the way an
802.16e/802.11n/NR modem renegotiates its MCS between HARQ rounds.
Because the gateway routes on the wire protocol's ``code_id`` field
(shard groups keyed by registry id, see
:meth:`~repro.serve.pool.DecodeService.from_registry`), the switch is a
pure client-side decision: the same TCP connection carries frames for
every rung of the ladder, mid-stream.

The session is self-verifying.  Every frame sent is also decoded
locally through :func:`~repro.decoder.api.decode_many` on the
wire-quantized LLRs (so both sides see byte-identical inputs), and the
report counts any payload mismatch between the remote and local bits —
the acceptance bar is zero.

Usage::

    ladder = (
        HarqRung("wimax-r12-576", min_snr_db=-1e9),
        HarqRung("wifi-r23-648", min_snr_db=3.0),
        HarqRung("wimax-r56-2304", min_snr_db=4.5),
    )
    report = run_harq_session(host, port, HarqConfig(ladder=ladder))
    assert report.mismatches == 0 and report.switches >= 1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.awgn import AwgnChannel
from repro.decoder.api import decode_many
from repro.errors import ServeError
from repro.net.client import DecodeClient
from repro.net.protocol import pack_llrs, unpack_llrs

__all__ = ["HarqRung", "HarqConfig", "HarqCodeStats", "HarqReport",
           "run_harq_session", "default_ladder"]


@dataclass(frozen=True)
class HarqRung(object):
    """One rung of the adaptation ladder.

    ``min_snr_db`` is the lowest simulated Eb/N0 at which this rung's
    code is selectable; the session always picks the highest eligible
    rung, so ordering rungs by ascending threshold orders them from
    most robust to most aggressive.
    """

    code_id: str
    min_snr_db: float


def default_ladder() -> Tuple[HarqRung, ...]:
    """A three-code ladder spanning the zoo's standards.

    Rate 1/2 WiMAX as the floor (always eligible), rate-2/3 802.11n in
    the middle, rate-5/6 WiMAX at the top — three different block
    lengths, so the switch also exercises rate-aware shard routing.
    """
    return (
        HarqRung("wimax-r12-576", min_snr_db=-1e9),
        HarqRung("wifi-r23-648", min_snr_db=3.2),
        HarqRung("wimax-r56-2304", min_snr_db=4.6),
    )


@dataclass(frozen=True)
class HarqConfig(object):
    """Parameters of one simulated session (all deterministic per seed)."""

    ladder: Tuple[HarqRung, ...] = field(default_factory=default_ladder)
    frames: int = 48
    seed: int = 2026
    snr_min_db: float = 1.5
    snr_max_db: float = 6.0
    snr_jitter_db: float = 0.3
    max_iterations: int = 10
    tenant: str = "harq"
    request_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if len(self.ladder) < 2:
            raise ServeError(
                f"HARQ ladder needs >= 2 rungs to switch, got "
                f"{len(self.ladder)}"
            )
        if self.frames < 2:
            raise ServeError(f"frames must be >= 2, got {self.frames}")
        if self.snr_min_db >= self.snr_max_db:
            raise ServeError(
                f"snr band is empty: [{self.snr_min_db}, {self.snr_max_db}]"
            )
        if not any(r.min_snr_db <= self.snr_min_db for r in self.ladder):
            raise ServeError(
                "no rung is eligible at snr_min_db; give the most robust "
                "rung a min_snr_db at or below it"
            )

    def snr_at(self, frame: int, rng: np.random.Generator) -> float:
        """Simulated Eb/N0 for frame ``frame``.

        A triangular sweep across the whole band (bad channel at the
        session's edges, good in the middle) plus seeded jitter — so
        every rung whose threshold lies inside the band is visited in
        every session, while the exact switch points stay seed-
        dependent.  The jitter draw happens unconditionally to keep
        the rng stream aligned across configs.
        """
        t = frame / (self.frames - 1)
        sweep = 1.0 - abs(2.0 * t - 1.0)
        snr = self.snr_min_db + (self.snr_max_db - self.snr_min_db) * sweep
        snr += float(rng.uniform(-self.snr_jitter_db, self.snr_jitter_db))
        return min(max(snr, self.snr_min_db), self.snr_max_db)


@dataclass
class HarqCodeStats(object):
    """Per-code outcome of a session."""

    code_id: str
    frames: int = 0
    converged: int = 0
    mismatches: int = 0
    iterations_total: int = 0

    @property
    def fer(self) -> float:
        """Frame error rate (non-converged fraction) for this code."""
        return 1.0 - self.converged / self.frames if self.frames else 0.0

    @property
    def mean_iterations(self) -> float:
        return self.iterations_total / self.frames if self.frames else 0.0


@dataclass
class HarqReport(object):
    """What one session did, and whether the wire path was faithful."""

    frames: int
    switches: int
    mismatches: int
    code_sequence: Tuple[str, ...]
    snr_trace_db: Tuple[float, ...]
    per_code: Dict[str, HarqCodeStats]

    @property
    def codes_used(self) -> Tuple[str, ...]:
        """Distinct codes in first-use order."""
        seen: List[str] = []
        for cid in self.code_sequence:
            if cid not in seen:
                seen.append(cid)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "frames": self.frames,
            "switches": self.switches,
            "mismatches": self.mismatches,
            "codes_used": list(self.codes_used),
            "per_code": {
                cid: {
                    "frames": s.frames,
                    "converged": s.converged,
                    "fer": round(s.fer, 6),
                    "mean_iterations": round(s.mean_iterations, 3),
                    "mismatches": s.mismatches,
                }
                for cid, s in sorted(self.per_code.items())
            },
        }


def _select_rung(ladder: Tuple[HarqRung, ...], snr_db: float) -> HarqRung:
    """Highest (most aggressive) rung whose threshold the channel meets."""
    best: Optional[HarqRung] = None
    for rung in ladder:
        if rung.min_snr_db <= snr_db:
            best = rung
    if best is None:  # __post_init__ guarantees this cannot happen mid-walk
        best = ladder[0]
    return best


def run_harq_session(
    host: str,
    port: int,
    config: Optional[HarqConfig] = None,
    registry: Optional[object] = None,
    log: Optional[object] = None,
) -> HarqReport:
    """Run one channel-adaptive session against a live gateway.

    The gateway must host every code on the ladder (use
    :meth:`DecodeService.from_registry` with the same ids).  Each frame
    is encoded with the registry's encoder for the selected code,
    passed through an AWGN channel at the walk's current Eb/N0,
    wire-quantized, sent with a per-request ``code_id``, and then
    re-decoded locally; remote and local bits must agree frame by
    frame (``report.mismatches`` counts the exceptions).

    ``log`` may be an :class:`~repro.obs.log.EventLog`: every rung
    change is stamped as a ``harq.switch`` record labelled with the
    session's tenant and both code ids, so ``repro logs --tenant X``
    (or ``--code-id Y``) correlates rate adaptation with the gateway
    incidents it causes.
    """
    config = config or HarqConfig()
    if registry is None:
        from repro.codes.registry import default_registry

        registry = default_registry()

    codes = {r.code_id: registry.get(r.code_id) for r in config.ladder}
    encoders = {r.code_id: registry.encoder(r.code_id) for r in config.ladder}

    rng = np.random.default_rng(config.seed)
    snr_trace: List[float] = []
    code_sequence: List[str] = []
    # (code_id, wire llrs, remote bits, remote iterations) per frame
    sent: List[Tuple[str, np.ndarray, np.ndarray, int]] = []
    stats = {cid: HarqCodeStats(code_id=cid) for cid in codes}

    with DecodeClient(host, port, tenant=config.tenant) as client:
        for i in range(config.frames):
            snr_db = config.snr_at(i, rng)
            rung = _select_rung(config.ladder, snr_db)
            if (
                log is not None and code_sequence
                and code_sequence[-1] != rung.code_id
            ):
                log.info(
                    "harq.switch",
                    tenant=config.tenant,
                    code_id=rung.code_id,
                    from_code=code_sequence[-1],
                    frame=i,
                    snr_db=round(snr_db, 2),
                )
            code = codes[rung.code_id]
            encoder = encoders[rung.code_id]
            message = rng.integers(0, 2, encoder.k).astype(np.uint8)
            codeword = encoder.encode(message)
            channel = AwgnChannel.from_ebno(snr_db, code.rate, seed=rng)
            llrs = unpack_llrs(*pack_llrs(channel.llrs(codeword)))

            result = client.decode(
                llrs, code_id=rung.code_id,
                timeout=config.request_timeout_s,
            )

            code_sequence.append(rung.code_id)
            snr_trace.append(snr_db)
            sent.append((rung.code_id, llrs, result.bits,
                         int(result.iterations)))
            st = stats[rung.code_id]
            st.frames += 1
            st.converged += int(result.converged)
            st.iterations_total += int(result.iterations)

    # self-verification: decode the exact wire payloads locally, per code
    for cid, code in codes.items():
        frames = [(llrs, bits, its) for c, llrs, bits, its in sent if c == cid]
        if not frames:
            continue
        batch = decode_many(
            code,
            np.stack([f[0] for f in frames]),
            max_iterations=config.max_iterations,
        )
        for i, (_, remote_bits, remote_its) in enumerate(frames):
            if (
                remote_its != int(batch.iterations[i])
                or not np.array_equal(remote_bits, batch.bits[i])
            ):
                stats[cid].mismatches += 1

    switches = sum(
        1 for a, b in zip(code_sequence, code_sequence[1:]) if a != b
    )
    return HarqReport(
        frames=len(code_sequence),
        switches=switches,
        mismatches=sum(s.mismatches for s in stats.values()),
        code_sequence=tuple(code_sequence),
        snr_trace_db=tuple(snr_trace),
        per_code=stats,
    )
