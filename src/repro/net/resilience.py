"""Client-side resilience: retry, hedging, circuit breaking, liveness.

:class:`ResilientDecodeClient` wraps one or more gateway endpoints and
turns the raw per-connection :class:`~repro.net.client.AsyncDecodeClient`
into something that survives a hostile wire:

* **Reconnect** — a dead connection is replaced lazily on the next
  request; every reconnect backs off exponentially (capped, jittered)
  so a flapping gateway is not hammered.
* **Bounded retries with idempotency** — each logical job gets one
  client-generated idempotency key, reused verbatim across retries and
  hedges, so the gateway's dedup window guarantees the job never
  decodes twice however many times its frames cross the wire.  Retries
  are bounded by :class:`RetryPolicy` and only typed-retryable failures
  (connection loss, timeouts, backpressure, frame corruption) are
  retried — quota exhaustion is the caller's problem.
* **Circuit breaking** — each endpoint has a :class:`CircuitBreaker`;
  consecutive failures open it, opening redirects traffic to the other
  endpoints, and a half-open probe closes it once the endpoint heals.
  When *every* endpoint is open the client fails fast with
  :class:`~repro.errors.CircuitOpenError` instead of queueing doomed
  work.
* **Hedging** — when more than one endpoint exists and the primary
  attempt has not answered within ``hedge_delay_s``, the same job
  (same idempotency key) is raced on another endpoint; first answer
  wins, the loser is cancelled.
* **Dead-peer detection** — an optional heartbeat task PINGs every
  connected endpoint on a cadence; ``heartbeat_misses`` consecutive
  unanswered pings tear the connection down so the next request
  reconnects instead of waiting on a half-open TCP session.

The client is asyncio-native and deterministic under test: backoff
jitter comes from a seeded generator and idempotency keys from a
counter under a caller-chosen tag.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import uuid
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import (
    CircuitOpenError,
    GatewayClosedError,
    NetProtocolError,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    ServeTimeoutError,
    ShardDeadError,
)
from repro.net.admission import GOLD
from repro.net.client import AsyncDecodeClient, RemoteResult
from repro.obs.trace import TraceContext, new_trace_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

__all__ = [
    "CircuitBreaker",
    "ResilientDecodeClient",
    "RetryPolicy",
    "RETRYABLE_ERRORS",
]

#: Failures worth retrying elsewhere/later.  Everything transport- or
#: capacity-shaped retries; semantic refusals (quota) do not.
RETRYABLE_ERRORS = (
    GatewayClosedError,
    ServeTimeoutError,
    QueueFullError,
    NetProtocolError,  # includes FrameCorruptionError
    ShardDeadError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy(object):
    """Capped exponential backoff with jitter.

    Attempt ``k`` (1-based) sleeps ``base_delay_s * 2**(k-1)`` capped at
    ``max_delay_s``, then shrunk by up to ``jitter`` (fraction) so a
    fleet of clients does not reconnect in lockstep.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def delay_s(self, attempt: int, rng: "np.random.Generator") -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        return raw * (1.0 - self.jitter * float(rng.random()))


class CircuitBreaker(object):
    """Per-endpoint closed / open / half-open breaker.

    ``failure_threshold`` *consecutive* failures open the circuit;
    while open, :meth:`allow` refuses instantly.  After
    ``reset_timeout_s`` one probe request is let through (half-open):
    success closes the circuit, failure re-opens it for another full
    timeout.  The clock is injectable so tests need no real sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (time-aware)."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """May a request be sent to this endpoint right now?"""
        state = self.state
        if state == "closed":
            return True
        if state == "half_open":
            if self._probing:
                return False  # one probe at a time
            self._state = "half_open"
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """The endpoint answered: close the circuit."""
        self._state = "closed"
        self._failures = 0
        self._probing = False

    def record_failure(self) -> None:
        """The endpoint failed: count toward (re)opening."""
        self._probing = False
        if self._state == "half_open":
            self._state = "open"
            self._opened_at = self._clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = "open"
            self._opened_at = self._clock()

    def to_dict(self) -> dict:
        return {"state": self.state, "failures": self._failures}


class _Endpoint(object):
    """One gateway address with its connection + breaker."""

    __slots__ = ("host", "port", "breaker", "client", "lock", "missed")

    def __init__(self, host: str, port: int,
                 breaker: CircuitBreaker) -> None:
        self.host = host
        self.port = port
        self.breaker = breaker
        self.client: Optional[AsyncDecodeClient] = None
        self.lock = asyncio.Lock()
        self.missed = 0

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"


class ResilientDecodeClient(object):
    """Retrying, hedging, breaker-guarded client over N gateways.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` pairs of (replica) gateways; one is fine.
    retry:
        The :class:`RetryPolicy`; ``max_attempts`` bounds wire attempts
        per logical job (hedges count as attempts).
    hedge_delay_s:
        When set and 2+ endpoints exist, an attempt that has not
        answered within this many seconds is raced on another endpoint
        with the same idempotency key.
    request_timeout_s:
        Per-attempt decode timeout (feeds the retry loop, not the
        caller's overall deadline).
    heartbeat_s / heartbeat_misses:
        When set, a background task PINGs each live connection every
        ``heartbeat_s``; ``heartbeat_misses`` consecutive failures tear
        the connection down (next request reconnects).
    breaker_failures / breaker_reset_s:
        Circuit-breaker tuning, per endpoint.
    seed / tag:
        Determinism knobs: backoff jitter RNG seed and the idempotency
        key prefix (keys are ``"{tag}-{n}"``).  The default tag is a
        fresh random token per client instance — two clients of the
        same tenant must never share a key space, or one would replay
        the other's cached results from the gateway's dedup window.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`.  When set,
        every logical job opens a ``client.job`` span under a fresh
        distributed trace id and each wire attempt (retries and hedges
        alike) becomes a sibling ``client.attempt`` span labelled with
        the shared idempotency key — so one Chrome trace shows the
        whole race, not just the winning attempt.  The recorder is
        also handed to every underlying connection, whose
        ``client.request`` spans parent under the attempt spans.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        retry: Optional[RetryPolicy] = None,
        hedge_delay_s: Optional[float] = None,
        request_timeout_s: float = 30.0,
        heartbeat_s: Optional[float] = None,
        heartbeat_misses: int = 3,
        breaker_failures: int = 5,
        breaker_reset_s: float = 2.0,
        seed: int = 0,
        tag: Optional[str] = None,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        if not endpoints:
            raise ValueError("ResilientDecodeClient needs >= 1 endpoint")
        self.tenant = tenant
        self.code_id = code_id
        self.priority = priority
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge_delay_s = hedge_delay_s
        self.request_timeout_s = request_timeout_s
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        self._rng = np.random.default_rng(seed)
        self.recorder = recorder
        self._tag = tag if tag is not None else uuid.uuid4().hex[:12]
        self._key_seq = itertools.count(1)
        self._endpoints: List[_Endpoint] = [
            _Endpoint(h, p, CircuitBreaker(breaker_failures,
                                           breaker_reset_s))
            for h, p in endpoints
        ]
        self._rr = itertools.count()
        self._closed = False
        self.stats: Dict[str, int] = {
            "jobs": 0,
            "requests_sent": 0,
            "retries": 0,
            "hedges": 0,
            "reconnects": 0,
            "breaker_refusals": 0,
            "dead_peers": 0,
        }
        self._heartbeat_task: Optional["asyncio.Task"] = None
        if heartbeat_s is not None:
            self._heartbeat_task = asyncio.ensure_future(
                self._heartbeat_loop()
            )

    async def __aenter__(self) -> "ResilientDecodeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # endpoint management
    # ------------------------------------------------------------------
    async def _client_for(self, ep: _Endpoint) -> AsyncDecodeClient:
        """The live connection for ``ep``, (re)connecting if needed."""
        async with ep.lock:
            if ep.client is None or ep.client.closed:
                if ep.client is not None:
                    await ep.client.close()
                    self.stats["reconnects"] += 1
                # strict handshake: a garbled HELLO is a failed attempt
                # (retried), never a silent downgrade to CRC-less v1
                ep.client = await AsyncDecodeClient.connect(
                    ep.host, ep.port,
                    tenant=self.tenant, code_id=self.code_id,
                    priority=self.priority, fallback_to_v1=False,
                    recorder=self.recorder,
                )
                ep.missed = 0
            return ep.client

    def _pick(self, exclude: Optional[_Endpoint] = None) -> Optional[_Endpoint]:
        """Next breaker-approved endpoint (round robin), else None."""
        n = len(self._endpoints)
        start = next(self._rr)
        for i in range(n):
            ep = self._endpoints[(start + i) % n]
            if ep is exclude and n > 1:
                continue
            if ep.breaker.allow():
                return ep
        return None

    async def _drop(self, ep: _Endpoint) -> None:
        """Tear down ``ep``'s connection (next request reconnects)."""
        async with ep.lock:
            client, ep.client = ep.client, None
            ep.missed = 0
        if client is not None:
            await client.close()

    # ------------------------------------------------------------------
    # the decode path
    # ------------------------------------------------------------------
    async def _attempt(
        self,
        ep: _Endpoint,
        llrs: np.ndarray,
        key: str,
        code_id: Optional[str],
        priority: Optional[int],
        trace: Optional[TraceContext] = None,
        attempt: int = 1,
        hedge: bool = False,
    ) -> RemoteResult:
        """One wire attempt on one endpoint; updates its breaker.

        With a trace context, the attempt is its own ``client.attempt``
        span (a sibling of any hedge racing it, all sharing the
        idempotency ``key`` label) and the wire hop parents under it.
        """
        rec = self.recorder
        tracing = (
            rec is not None and rec.enabled
            and trace is not None and bool(trace.trace_id)
        )
        span_id = rec.allocate_span_id() if tracing else 0
        wire_trace = (
            TraceContext(trace.trace_id, span_id) if tracing else None
        )
        t0 = time.perf_counter()

        def span(ok: bool, **extra: object) -> None:
            if tracing:
                rec.complete(
                    "client.attempt", t0,
                    span_id=span_id, parent_id=trace.span_id,
                    trace=trace.trace_id, key=key, attempt=attempt,
                    endpoint=ep.name, hedge=hedge, ok=ok, **extra
                )

        try:
            client = await self._client_for(ep)
            self.stats["requests_sent"] += 1
            result = await client.decode(
                llrs, code_id=code_id, priority=priority,
                timeout=self.request_timeout_s, idempotency_key=key,
                trace=wire_trace,
            )
        except asyncio.CancelledError:
            span(False, error="cancelled")
            raise
        except RETRYABLE_ERRORS as exc:
            span(False, error=type(exc).__name__)
            ep.breaker.record_failure()
            if isinstance(exc, (GatewayClosedError, ConnectionError,
                                OSError, NetProtocolError)):
                await self._drop(ep)
            raise
        except QuotaExceededError as exc:
            # a healthy endpoint refusing on quota is not a failure
            span(False, error=type(exc).__name__)
            ep.breaker.record_success()
            raise
        span(True)
        ep.breaker.record_success()
        return result

    async def decode(
        self,
        llrs: np.ndarray,
        code_id: Optional[str] = None,
        priority: Optional[int] = None,
        idempotency_key: Optional[str] = None,
    ) -> RemoteResult:
        """Decode one frame with retries/hedging across the endpoints.

        Raises :class:`~repro.errors.CircuitOpenError` when every
        endpoint's breaker refuses, :class:`~repro.errors.ServeError`
        (the last typed failure) when the retry budget runs out, and
        terminal errors (quota) immediately.
        """
        if self._closed:
            raise GatewayClosedError("resilient client is closed")
        self.stats["jobs"] += 1
        key = idempotency_key or f"{self._tag}-{next(self._key_seq)}"
        llrs = np.asarray(llrs, dtype=np.float64)
        rec = self.recorder
        recording = rec is not None and rec.enabled
        trace: Optional[TraceContext] = None
        job_span = 0
        if recording:
            job_span = rec.allocate_span_id()
            trace = TraceContext(new_trace_id(), job_span)
        t0 = time.perf_counter()

        def job_done(ok: bool, attempts: int, **extra: object) -> None:
            if recording:
                rec.complete(
                    "client.job", t0,
                    span_id=job_span, parent_id=None,
                    trace=trace.trace_id, key=key,
                    tenant=self.tenant, attempts=attempts, ok=ok,
                    **extra
                )

        last_exc: Optional[Exception] = None
        attempt = 0
        while attempt < self.retry.max_attempts:
            attempt += 1
            ep = self._pick()
            if ep is None:
                self.stats["breaker_refusals"] += 1
                job_done(False, attempt - 1, error="CircuitOpenError")
                raise CircuitOpenError(
                    "all gateway endpoints have open circuit breakers"
                )
            if attempt > 1:
                self.stats["retries"] += 1
            try:
                result = await self._attempt_hedged(
                    ep, llrs, key, code_id, priority,
                    trace=trace, attempt=attempt,
                )
            except asyncio.CancelledError:
                job_done(False, attempt, error="cancelled")
                raise
            except QuotaExceededError as exc:
                job_done(False, attempt, error=type(exc).__name__)
                raise
            except RETRYABLE_ERRORS as exc:
                last_exc = exc
                if attempt < self.retry.max_attempts:
                    await asyncio.sleep(
                        self.retry.delay_s(attempt, self._rng)
                    )
            else:
                job_done(True, attempt)
                return result
        job_done(False, attempt,
                 error=type(last_exc).__name__ if last_exc else "unknown")
        if isinstance(last_exc, ServeError):
            raise last_exc
        raise GatewayClosedError(
            f"decode failed after {self.retry.max_attempts} attempts: "
            f"{last_exc}"
        )

    async def _attempt_hedged(
        self,
        ep: _Endpoint,
        llrs: np.ndarray,
        key: str,
        code_id: Optional[str],
        priority: Optional[int],
        trace: Optional[TraceContext] = None,
        attempt: int = 1,
    ) -> RemoteResult:
        """Primary attempt on ``ep``; hedge elsewhere if it dawdles."""
        primary = asyncio.ensure_future(
            self._attempt(ep, llrs, key, code_id, priority,
                          trace=trace, attempt=attempt)
        )
        if self.hedge_delay_s is None or len(self._endpoints) < 2:
            return await primary
        done, _pending = await asyncio.wait(
            {primary}, timeout=self.hedge_delay_s
        )
        if done:
            return primary.result()  # raises the attempt's error, if any
        other = self._pick(exclude=ep)
        if other is None:
            return await primary
        self.stats["hedges"] += 1
        hedge = asyncio.ensure_future(
            self._attempt(other, llrs, key, code_id, priority,
                          trace=trace, attempt=attempt, hedge=True)
        )
        racers = {primary, hedge}
        result: Optional[RemoteResult] = None
        last_exc: Optional[BaseException] = None
        try:
            while racers and result is None:
                done, racers = await asyncio.wait(
                    racers, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    if exc is None:
                        result = task.result()
                    else:
                        last_exc = exc
        finally:
            for task in racers:
                task.cancel()
            if racers:
                await asyncio.gather(*racers, return_exceptions=True)
        if result is not None:
            return result
        assert last_exc is not None
        raise last_exc

    async def ping(self, timeout: float = 5.0) -> Dict[str, float]:
        """PING every reachable endpoint; returns ``{name: rtt_s}``."""
        out: Dict[str, float] = {}
        for ep in self._endpoints:
            try:
                client = await self._client_for(ep)
                out[ep.name] = await client.ping(timeout)
            except Exception:
                continue
        return out

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        interval = float(self.heartbeat_s or 0.0)
        try:
            while not self._closed:
                await asyncio.sleep(interval)
                for ep in self._endpoints:
                    client = ep.client
                    if client is None or client.closed:
                        continue
                    try:
                        await client.ping(timeout=interval)
                        ep.missed = 0
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        ep.missed += 1
                        if ep.missed >= self.heartbeat_misses:
                            self.stats["dead_peers"] += 1
                            ep.breaker.record_failure()
                            await self._drop(ep)
        except asyncio.CancelledError:
            raise

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Close every connection and stop the heartbeat. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):
                pass
        for ep in self._endpoints:
            if ep.client is not None:
                await ep.client.close()
                ep.client = None

    def to_dict(self) -> dict:
        """Stats + per-endpoint breaker states (for soak reports)."""
        amplification = (
            self.stats["requests_sent"] / self.stats["jobs"]
            if self.stats["jobs"] else 0.0
        )
        return {
            "stats": dict(self.stats),
            "amplification": amplification,
            "endpoints": {
                ep.name: ep.breaker.to_dict() for ep in self._endpoints
            },
        }
