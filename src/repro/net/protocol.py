"""Framed wire protocol of the decode gateway (versions 1 and 2).

One frame = a 4-byte big-endian length prefix, a fixed 12-byte header
(magic ``RN``, version, message type, job id), and a type-specific body:

========  ====  =======================================================
type      id    body
========  ====  =======================================================
REQUEST   1     *(FLAG_TRACE: u64 trace id | u64 parent span id)* |
                u8 priority | u16-len tenant | u16-len code id |
                *(v2 only: u16-len idempotency key)* |
                f32 scale | u32 count | ``count`` int8 LLR samples
RESULT    2     *(FLAG_TRACE: u64 trace id | u64 parent span id)* |
                u8 converged | u16 iterations | u32 bit count |
                packed bits (``numpy.packbits``, big-endian within byte)
ERROR     3     *(FLAG_TRACE: u64 trace id | u64 parent span id)* |
                u16-len error kind | u32-len message
PING      4     (empty)
PONG      5     (empty)
HELLO     6     u8 proposed/negotiated version | u32 feature flags
========  ====  =======================================================

Strings are UTF-8.  LLRs travel as **packed int8**: the sender computes
``scale = max(|llr|) / 127`` and quantizes ``round(llr / scale)``; the
receiver reconstructs ``i8 * scale``.  The dequantized vector is the
*canonical* frame both sides agree on — the soak harness feeds exactly
it to :func:`repro.decoder.decode_many` when checking the gateway path
for payload mismatches, so quantization can never masquerade as a
transport bug.

**Protocol v2 — frame integrity.**  A version-2 frame carries a 4-byte
CRC32C trailer inside the length-prefixed payload, computed over header
plus body.  :func:`decode_frame` verifies it before trusting a single
body byte and raises :class:`~repro.errors.FrameCorruptionError` (a
``NetProtocolError``) on mismatch: truncation and bit corruption are
*detected*, never decoded.  v2 is negotiated per connection with a
HELLO handshake — the client proposes its highest version plus feature
flags, the gateway answers with the agreed pair; HELLO itself is always
v1-encoded so the handshake needs no prior agreement, and a peer that
never says HELLO simply keeps speaking v1 (full backwards
compatibility).  v2 REQUEST frames additionally carry an optional
client-generated *idempotency key* so a retried job can be deduplicated
server-side instead of decoded twice.

**Trace context (``FLAG_TRACE``).**  When both sides advertise
:data:`FLAG_TRACE` in HELLO, every REQUEST/RESULT/ERROR body begins
with a 16-byte trace context — u64 trace id, u64 parent span id
(:class:`~repro.obs.trace.TraceContext`) — letting the gateway adopt
the client's span tree and the client join the gateway's reply spans
under one distributed trace id.  ``(0, 0)`` means "this hop carries no
context" and decodes as ``None``.  The field exists *only* on
connections that negotiated the flag, so v1 peers and v2 peers without
``FLAG_TRACE`` see byte-identical frames to previous builds; because
it sits inside the CRC32C-protected v2 payload, a corrupted trace
field fails the CRC check before any parsing can go wrong.

Malformed input raises :class:`~repro.errors.NetProtocolError` (a
member of the typed ``ServeError`` family); error frames round-trip the
server-side exception *class name* so the client re-raises the same
typed error (:data:`ERROR_TYPES`), falling back to
:class:`~repro.errors.RemoteDecodeError` for unknown kinds.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple, Type, Union

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    FrameCorruptionError,
    GatewayClosedError,
    NetProtocolError,
    QueueFullError,
    QuotaExceededError,
    RemoteDecodeError,
    ServeError,
    ServeTimeoutError,
    ServiceClosedError,
    ShardDeadError,
    UnknownCodeError,
)
from repro.net.crc import crc32c
from repro.obs.trace import NULL_TRACE, TraceContext

__all__ = [
    "CLIENT_FLAGS",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_TYPES",
    "FLAG_CRC32C",
    "FLAG_HEARTBEAT",
    "FLAG_IDEMPOTENCY",
    "FLAG_TRACE",
    "MAGIC",
    "NULL_TRACE",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_PONG",
    "MSG_REQUEST",
    "MSG_RESULT",
    "SUPPORTED_VERSIONS",
    "V1",
    "V2",
    "VERSION",
    "ErrorFrame",
    "FrameReader",
    "Hello",
    "Ping",
    "Pong",
    "Request",
    "Result",
    "TraceContext",
    "decode_frame",
    "encode_error",
    "encode_hello",
    "encode_ping",
    "encode_pong",
    "encode_request",
    "encode_result",
    "error_to_exception",
    "pack_llrs",
    "read_frame",
    "read_raw",
    "unpack_llrs",
    "write_frame",
]

MAGIC = b"RN"

#: Wire protocol versions.  ``VERSION`` is the highest this build
#: speaks; a connection's effective version is HELLO-negotiated and
#: defaults to :data:`V1` for peers that never negotiate.
V1 = 1
V2 = 2
VERSION = V2
SUPPORTED_VERSIONS = (V1, V2)

MSG_REQUEST = 1
MSG_RESULT = 2
MSG_ERROR = 3
MSG_PING = 4
MSG_PONG = 5
MSG_HELLO = 6

#: HELLO feature flags.  CRC32C is implied by v2 but advertised anyway
#: so the capability set stays explicit on the wire.
FLAG_CRC32C = 0x1
FLAG_HEARTBEAT = 0x2
FLAG_IDEMPOTENCY = 0x4
FLAG_TRACE = 0x8

#: Everything this build's clients know how to speak.
CLIENT_FLAGS = FLAG_CRC32C | FLAG_HEARTBEAT | FLAG_IDEMPOTENCY | FLAG_TRACE

#: Frames larger than this are refused outright (a 1 MiB frame holds a
#: ~1M-sample LLR vector — far beyond any supported code length).
DEFAULT_MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">2sBBQ")  # magic, version, msg type, job id
_CRC = struct.Struct(">I")
_TRACE = struct.Struct(">QQ")  # trace id, parent span id (FLAG_TRACE)

#: Error kinds a gateway may ship that re-raise as their local type.
ERROR_TYPES: "dict[str, Type[ServeError]]" = {
    cls.__name__: cls
    for cls in (
        DeadlineExceededError,
        FrameCorruptionError,
        GatewayClosedError,
        NetProtocolError,
        QueueFullError,
        QuotaExceededError,
        ServeError,
        ServeTimeoutError,
        ServiceClosedError,
        ShardDeadError,
        UnknownCodeError,
    )
}


# ----------------------------------------------------------------------
# frame dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request(object):
    """One decode request: who is asking, for which code, with what."""

    job_id: int
    tenant: str
    code_id: str
    priority: int
    llrs_i8: np.ndarray
    scale: float
    version: int = V1
    idempotency_key: str = ""
    trace: Optional[TraceContext] = None

    def llrs(self) -> np.ndarray:
        """The canonical dequantized LLR vector both sides agree on."""
        return unpack_llrs(self.llrs_i8, self.scale)


@dataclass(frozen=True)
class Result(object):
    """One decoded frame streaming back to the client."""

    job_id: int
    converged: bool
    iterations: int
    bits: np.ndarray
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class ErrorFrame(object):
    """A typed failure for one job (``job_id == 0``: the connection)."""

    job_id: int
    kind: str
    message: str
    trace: Optional[TraceContext] = None

    def to_exception(self) -> ServeError:
        """The local typed exception this frame re-raises as."""
        return error_to_exception(self.kind, self.message)


@dataclass(frozen=True)
class Ping(object):
    """Liveness probe."""

    job_id: int


@dataclass(frozen=True)
class Pong(object):
    """Liveness probe response (echoes the ping's job id)."""

    job_id: int


@dataclass(frozen=True)
class Hello(object):
    """Version/feature negotiation (proposed by clients, answered by
    gateways; always itself encoded at v1)."""

    version: int
    flags: int
    job_id: int = 0


Frame = Union[Request, Result, ErrorFrame, Ping, Pong, Hello]


def error_to_exception(kind: str, message: str) -> ServeError:
    """Map a wire error kind back onto the typed ``ServeError`` family."""
    cls = ERROR_TYPES.get(kind)
    if cls is RemoteDecodeError or cls is None:
        return RemoteDecodeError(kind, message)
    return cls(message)


# ----------------------------------------------------------------------
# LLR packing
# ----------------------------------------------------------------------
def pack_llrs(llrs: np.ndarray) -> Tuple[np.ndarray, float]:
    """Quantize a float LLR vector to wire int8 + scale.

    ``scale`` is chosen so the largest magnitude maps to ±127; an
    all-zero vector uses scale 1.0.  Returns ``(int8 array, scale)``.
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.ndim != 1:
        raise NetProtocolError(f"LLR vector must be 1-D, got shape {llrs.shape}")
    peak = float(np.max(np.abs(llrs))) if llrs.size else 0.0
    scale = peak / 127.0 if peak > 0 else 1.0
    i8 = np.clip(np.rint(llrs / scale), -127, 127).astype(np.int8)
    return i8, scale


def unpack_llrs(i8: np.ndarray, scale: float) -> np.ndarray:
    """Reconstruct the canonical float LLR vector from wire form."""
    return np.asarray(i8, dtype=np.float64) * float(scale)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _frame(msg_type: int, job_id: int, body: bytes, version: int = V1) -> bytes:
    if version not in SUPPORTED_VERSIONS:
        raise NetProtocolError(
            f"cannot encode protocol version {version} (speak "
            f"{SUPPORTED_VERSIONS})"
        )
    payload = _HEADER.pack(MAGIC, version, msg_type, job_id) + body
    if version >= V2:
        payload += _CRC.pack(crc32c(payload))
    return struct.pack(">I", len(payload)) + payload


def _trace_prefix(trace: Optional[TraceContext], version: int) -> bytes:
    """The body prefix for a FLAG_TRACE connection (empty when None).

    ``trace=None`` means the connection never negotiated the flag —
    no field at all, byte-stable with pre-trace builds.  A connection
    that *did* negotiate it must always pass a context (use
    :data:`~repro.obs.trace.NULL_TRACE` when there is nothing to
    propagate) because the receiver parses the field unconditionally.
    """
    if trace is None:
        return b""
    if version < V2:
        raise NetProtocolError(
            "trace context needs protocol v2 (the v1 bodies have no "
            "field for it)"
        )
    return _TRACE.pack(trace.trace_id, trace.span_id)


def encode_request(
    job_id: int,
    tenant: str,
    code_id: str,
    priority: int,
    llrs: Optional[np.ndarray] = None,
    llrs_i8: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
    version: int = V1,
    idempotency_key: str = "",
    trace: Optional[TraceContext] = None,
) -> bytes:
    """Encode a REQUEST frame.

    Pass either float ``llrs`` (packed here) or a pre-packed
    ``(llrs_i8, scale)`` pair — callers that need the exact wire payload
    for a later reference decode pack once and pass the pair.  An
    ``idempotency_key`` (v2 only) marks retries of one logical job so
    the gateway's dedup window can replay instead of re-decoding.
    ``trace`` (v2, ``FLAG_TRACE`` connections only) prefixes the body
    with the 16-byte trace context; pass it on *every* frame of such a
    connection (:data:`~repro.obs.trace.NULL_TRACE` when untraced).
    """
    if llrs_i8 is None:
        if llrs is None:
            raise NetProtocolError("encode_request needs llrs or llrs_i8")
        llrs_i8, scale = pack_llrs(llrs)
    if scale is None:
        raise NetProtocolError("llrs_i8 requires an explicit scale")
    if not 0 <= priority <= 255:
        raise NetProtocolError(f"priority must fit a u8, got {priority}")
    if idempotency_key and version < V2:
        raise NetProtocolError(
            "idempotency keys need protocol v2 (the v1 REQUEST body has "
            "no field for them)"
        )
    tenant_b = tenant.encode("utf-8")
    code_b = code_id.encode("utf-8")
    idem_b = idempotency_key.encode("utf-8")
    if len(tenant_b) > 0xFFFF or len(code_b) > 0xFFFF or len(idem_b) > 0xFFFF:
        raise NetProtocolError(
            "tenant/code id/idempotency key too long for a u16 length"
        )
    i8 = np.ascontiguousarray(llrs_i8, dtype=np.int8)
    body = _trace_prefix(trace, version)
    body += struct.pack(">BH", priority, len(tenant_b)) + tenant_b
    body += struct.pack(">H", len(code_b)) + code_b
    if version >= V2:
        body += struct.pack(">H", len(idem_b)) + idem_b
    body += struct.pack(">fI", float(scale), i8.size) + i8.tobytes()
    return _frame(MSG_REQUEST, job_id, body, version=version)


def encode_result(
    job_id: int, converged: bool, iterations: int, bits: np.ndarray,
    version: int = V1, trace: Optional[TraceContext] = None,
) -> bytes:
    """Encode a RESULT frame (bits are packed 8-per-byte)."""
    bits = np.asarray(bits).astype(np.uint8).ravel()
    packed = np.packbits(bits)
    body = _trace_prefix(trace, version)
    body += struct.pack(
        ">BHI", 1 if converged else 0, iterations, bits.size
    ) + packed.tobytes()
    return _frame(MSG_RESULT, job_id, body, version=version)


def encode_error(
    job_id: int, exc: BaseException, version: int = V1,
    trace: Optional[TraceContext] = None,
) -> bytes:
    """Encode an ERROR frame from an exception (kind = class name)."""
    kind_b = type(exc).__name__.encode("utf-8")[:0xFFFF]
    msg_b = str(exc).encode("utf-8")[: 1 << 16]
    body = _trace_prefix(trace, version)
    body += struct.pack(">H", len(kind_b)) + kind_b
    body += struct.pack(">I", len(msg_b)) + msg_b
    return _frame(MSG_ERROR, job_id, body, version=version)


def encode_ping(job_id: int = 0, version: int = V1) -> bytes:
    """Encode a PING frame."""
    return _frame(MSG_PING, job_id, b"", version=version)


def encode_pong(job_id: int = 0, version: int = V1) -> bytes:
    """Encode a PONG frame."""
    return _frame(MSG_PONG, job_id, b"", version=version)


def encode_hello(
    flags: int = CLIENT_FLAGS, version: int = VERSION, job_id: int = 0
) -> bytes:
    """Encode a HELLO frame (always wire-encoded at v1 so negotiation
    itself needs no prior agreement)."""
    body = struct.pack(">BI", version, flags)
    return _frame(MSG_HELLO, job_id, body, version=V1)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
class _Cursor(object):
    """Bounds-checked reader over one frame payload."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise NetProtocolError(
                f"truncated frame body: wanted {count} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : self.pos + count]
        self.pos += count
        return out

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))


_REQ_HEAD = struct.Struct(">BH")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_F32_U32 = struct.Struct(">fI")
_RES_HEAD = struct.Struct(">BHI")
_HELLO_BODY = struct.Struct(">BI")


def decode_frame(payload: bytes, trace: bool = False) -> Frame:
    """Parse one frame payload (header + body, length prefix stripped).

    v2 frames are CRC32C-verified before any body byte is trusted;
    mismatch raises :class:`~repro.errors.FrameCorruptionError`.
    REQUEST/RESULT declared element counts must agree exactly with the
    payload length — disagreement is a typed protocol error, not a
    struct-unpack accident.

    ``trace=True`` (connections that negotiated ``FLAG_TRACE``) reads
    the 16-byte trace context off REQUEST/RESULT/ERROR bodies; a
    ``(0, 0)`` context decodes as ``None``.  The flag is connection
    state, not frame state — the CRC has already vouched for the bytes
    by the time the field is read, so a flipped trace byte can only
    surface as :class:`~repro.errors.FrameCorruptionError`, never as a
    silently mis-parsed body.
    """
    if len(payload) < _HEADER.size:
        raise NetProtocolError(
            f"frame shorter than the {_HEADER.size}-byte header: "
            f"{len(payload)} bytes"
        )
    magic, version, msg_type, job_id = _HEADER.unpack(payload[: _HEADER.size])
    if magic != MAGIC:
        raise NetProtocolError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version not in SUPPORTED_VERSIONS:
        raise NetProtocolError(
            f"unsupported protocol version {version} (speak "
            f"{SUPPORTED_VERSIONS})"
        )
    if version >= V2:
        if len(payload) < _HEADER.size + _CRC.size:
            raise FrameCorruptionError(
                f"v2 frame too short to carry its CRC32C trailer: "
                f"{len(payload)} bytes"
            )
        body_end = len(payload) - _CRC.size
        (stated,) = _CRC.unpack(payload[body_end:])
        actual = crc32c(payload[:body_end])
        if stated != actual:
            raise FrameCorruptionError(
                f"CRC32C mismatch on {len(payload)}-byte frame: trailer "
                f"says 0x{stated:08x}, payload hashes to 0x{actual:08x}"
            )
        cur = _Cursor(payload[_HEADER.size : body_end])
    else:
        cur = _Cursor(payload[_HEADER.size :])
    trace_ctx: Optional[TraceContext] = None
    if (
        trace
        and version >= V2
        and msg_type in (MSG_REQUEST, MSG_RESULT, MSG_ERROR)
    ):
        trace_id, parent_span = cur.unpack(_TRACE)
        if trace_id or parent_span:
            trace_ctx = TraceContext(trace_id, parent_span)
    if msg_type == MSG_REQUEST:
        priority, tenant_len = cur.unpack(_REQ_HEAD)
        tenant = cur.take(tenant_len).decode("utf-8", "replace")
        (code_len,) = cur.unpack(_U16)
        code_id = cur.take(code_len).decode("utf-8", "replace")
        idem = ""
        if version >= V2:
            (idem_len,) = cur.unpack(_U16)
            idem = cur.take(idem_len).decode("utf-8", "replace")
        scale, count = cur.unpack(_F32_U32)
        if count != cur.remaining:
            raise NetProtocolError(
                f"REQUEST declares {count} LLR samples but the payload "
                f"carries {cur.remaining} bytes"
            )
        i8 = np.frombuffer(cur.take(count), dtype=np.int8)
        return Request(
            job_id=job_id, tenant=tenant, code_id=code_id,
            priority=priority, llrs_i8=i8, scale=scale,
            version=version, idempotency_key=idem, trace=trace_ctx,
        )
    if msg_type == MSG_RESULT:
        converged, iterations, bit_count = cur.unpack(_RES_HEAD)
        expected = (bit_count + 7) // 8
        if expected != cur.remaining:
            raise NetProtocolError(
                f"RESULT declares {bit_count} bits ({expected} packed "
                f"bytes) but the payload carries {cur.remaining} bytes"
            )
        packed = np.frombuffer(cur.take(expected), dtype=np.uint8)
        bits = np.unpackbits(packed)[:bit_count]
        return Result(
            job_id=job_id, converged=bool(converged),
            iterations=iterations, bits=bits, trace=trace_ctx,
        )
    if msg_type == MSG_ERROR:
        (kind_len,) = cur.unpack(_U16)
        kind = cur.take(kind_len).decode("utf-8", "replace")
        (msg_len,) = cur.unpack(_U32)
        message = cur.take(msg_len).decode("utf-8", "replace")
        return ErrorFrame(
            job_id=job_id, kind=kind, message=message, trace=trace_ctx,
        )
    if msg_type == MSG_PING:
        return Ping(job_id=job_id)
    if msg_type == MSG_PONG:
        return Pong(job_id=job_id)
    if msg_type == MSG_HELLO:
        hello_version, flags = cur.unpack(_HELLO_BODY)
        return Hello(version=hello_version, flags=flags, job_id=job_id)
    raise NetProtocolError(f"unknown message type {msg_type}")


# ----------------------------------------------------------------------
# incremental frame assembly (sans-io)
# ----------------------------------------------------------------------
class FrameReader(object):
    """Incremental frame assembler over an arbitrary byte stream.

    Push bytes in with :meth:`feed` as they arrive — in any chunking,
    down to one byte at a time — and get back complete frame payloads
    (length prefix stripped, ready for :func:`decode_frame`).  The
    reader enforces the frame-size cap and checks the magic as soon as
    the first header bytes of each frame are buffered, so a stream that
    has lost sync (garbage where a header should be) fails immediately
    instead of waiting for a bogus length count to fill.

    This is the sans-io core shared by byte-level tests and the chaos
    proxy's frame-aware fault injection; the asyncio paths
    (:func:`read_raw`) keep their ``readexactly`` implementation.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_bytes = max_bytes
        self._buf = bytearray()
        self._eof = False

    @property
    def buffered(self) -> int:
        """Bytes fed but not yet returned as part of a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[bytes]:
        """Buffer ``data``; return every frame payload it completes."""
        if self._eof:
            raise NetProtocolError("feed() after feed_eof()")
        self._buf.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buf) < 4:
                break
            (length,) = struct.unpack_from(">I", self._buf)
            if length > self.max_bytes:
                raise NetProtocolError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_bytes}-byte limit"
                )
            if length >= 2 and len(self._buf) >= 6:
                magic = bytes(self._buf[4:6])
                if magic != MAGIC:
                    raise NetProtocolError(
                        f"bad magic {magic!r} mid-stream (want {MAGIC!r}); "
                        f"the stream has lost frame sync"
                    )
            if len(self._buf) < 4 + length:
                break
            frames.append(bytes(self._buf[4 : 4 + length]))
            del self._buf[: 4 + length]
        return frames

    def feed_eof(self) -> None:
        """Signal end of stream; raises if it lands inside a frame."""
        self._eof = True
        if self._buf:
            where = (
                "inside a length prefix" if len(self._buf) < 4
                else "inside a frame"
            )
            raise NetProtocolError(
                f"connection closed {where} with {len(self._buf)} "
                f"buffered bytes"
            )


# ----------------------------------------------------------------------
# stream I/O
# ----------------------------------------------------------------------
async def read_raw(
    reader: "asyncio.StreamReader",
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[bytes]:
    """Read one frame payload off a stream; None on clean EOF.

    EOF in the middle of a frame and an oversized length prefix raise
    :class:`NetProtocolError`.  The returned payload excludes the
    4-byte length prefix and is ready for :func:`decode_frame` (which
    performs the v2 CRC check).
    """
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        raise NetProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from None
    (length,) = struct.unpack(">I", prefix)
    if length > max_bytes:
        raise NetProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise NetProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from None


async def read_frame(
    reader: "asyncio.StreamReader",
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    trace: bool = False,
) -> Optional[Frame]:
    """Read and parse one frame; None on clean EOF between frames.

    ``trace`` mirrors :func:`decode_frame`'s parameter — pass the
    connection's negotiated ``FLAG_TRACE`` state.
    """
    payload = await read_raw(reader, max_bytes)
    if payload is None:
        return None
    return decode_frame(payload, trace=trace)


def write_frame(writer: "asyncio.StreamWriter", frame_bytes: bytes) -> None:
    """Queue one already-encoded frame on a stream writer."""
    writer.write(frame_bytes)
