"""Per-tenant gateway metrics, published into the shared registry.

:class:`NetMetrics` is the :class:`~repro.serve.metrics.ServeMetrics`
counterpart for the network layer: a thin facade of ``net_*``
instruments over a :class:`~repro.obs.metrics.MetricsRegistry`.  Hand
it the *same* registry the decode service publishes into and one
snapshot/SLO evaluation covers the whole path — wire to queue to
kernel; the autoscaler and ``repro obs-report`` then see gateway and
engine pressure side by side.

Everything request-scoped is labelled by tenant (and rejections by
reason, errors by exception kind), so a noisy neighbour is visible as
*that tenant's* series, not a blur in a global total.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["NetMetrics"]

#: Request latency buckets: wire round-trips sit above kernel latency.
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class NetMetrics(object):
    """Thread-safe gateway instruments (``net_*`` namespace)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._connections = reg.gauge(
            "net_connections", "currently open client connections")
        self._connections_total = reg.counter(
            "net_connections_total", "client connections ever accepted")
        self._requests = reg.counter(
            "net_requests_total", "decode requests received",
            label_names=("tenant",))
        self._rejected = reg.counter(
            "net_rejected_total", "requests refused before decode",
            label_names=("tenant", "reason"))
        self._results = reg.counter(
            "net_results_total", "result frames returned",
            label_names=("tenant",))
        self._errors = reg.counter(
            "net_errors_total", "error frames returned",
            label_names=("tenant", "kind"))
        self._shed = reg.counter(
            "net_shed_total", "requests admitted with a reduced budget",
            label_names=("tenant",))
        self._latency = reg.histogram(
            "net_request_latency_seconds",
            "request receipt to result frame write",
            label_names=("tenant",), buckets=_LATENCY_BUCKETS)
        self._phases = reg.histogram(
            "net_request_seconds",
            "per-request RED latency split by gateway phase "
            "(total/admission/queue_wait/decode/respond)",
            label_names=("tenant", "code_id", "phase"),
            buckets=_LATENCY_BUCKETS)
        self._bytes_in = reg.counter(
            "net_bytes_in_total", "payload bytes received")
        self._bytes_out = reg.counter(
            "net_bytes_out_total", "payload bytes sent")
        self._autoscale = reg.counter(
            "net_autoscale_total", "autoscaler scaling actions",
            label_names=("direction",))
        self._hello = reg.counter(
            "net_hello_total", "HELLO handshakes by negotiated version",
            label_names=("version",))
        self._crc_corrupt = reg.counter(
            "net_crc_corrupt_total",
            "frames rejected by the CRC32C integrity check")
        self._dedup_hits = reg.counter(
            "net_dedup_hits_total",
            "requests answered from the idempotency window",
            label_names=("outcome",))
        self._dead_peers = reg.counter(
            "net_dead_peer_total",
            "connections closed by heartbeat dead-peer detection")

    # ------------------------------------------------------------------
    # recording hooks
    # ------------------------------------------------------------------
    def conn_opened(self) -> None:
        """A client connection was accepted."""
        self._connections.inc()
        self._connections_total.inc()

    def conn_closed(self) -> None:
        """A client connection finished (cleanly or not)."""
        self._connections.dec()

    def request(self, tenant: str) -> None:
        """A request frame arrived for ``tenant``."""
        self._requests.inc(tenant=tenant)

    def rejected(self, tenant: str, reason: str) -> None:
        """A request was refused (``quota``/``backpressure``/``drain``...)."""
        self._rejected.inc(tenant=tenant, reason=reason)

    def result(self, tenant: str, latency_s: float) -> None:
        """A result frame went back to ``tenant`` after ``latency_s``."""
        self._results.inc(tenant=tenant)
        self._latency.observe(latency_s, tenant=tenant)

    def error(self, tenant: str, kind: str) -> None:
        """An error frame went back to ``tenant``."""
        self._errors.inc(tenant=tenant, kind=kind)

    def phase(
        self, tenant: str, code_id: str, phase: str, seconds: float
    ) -> None:
        """One waterfall segment of a request (RED duration metric).

        ``phase="total"`` is observed for every request (successes,
        rejections, errors alike); the split phases (``admission`` /
        ``queue_wait`` / ``decode`` / ``respond``) only for requests
        that actually decoded, so per-phase p99s are not diluted by
        fail-fast rejections.
        """
        self._phases.observe(
            seconds, tenant=tenant, code_id=code_id, phase=phase
        )

    def shed(self, tenant: str) -> None:
        """A request was admitted with a reduced iteration budget."""
        self._shed.inc(tenant=tenant)

    def bytes_in(self, count: int) -> None:
        """``count`` frame bytes read off the wire."""
        self._bytes_in.inc(count)

    def bytes_out(self, count: int) -> None:
        """``count`` frame bytes written to the wire."""
        self._bytes_out.inc(count)

    def autoscaled(self, direction: str) -> None:
        """The autoscaler acted (direction ``"up"``/``"down"``/``"replace"``)."""
        self._autoscale.inc(direction=direction)

    def hello(self, version: int) -> None:
        """A HELLO handshake settled on protocol ``version``."""
        self._hello.inc(version=str(version))

    def crc_corrupt(self) -> None:
        """A frame failed its CRC32C check and was dropped."""
        self._crc_corrupt.inc()

    def dedup_hit(self, outcome: str) -> None:
        """A request joined the idempotency window (``cached``/``joined``)."""
        self._dedup_hits.inc(outcome=outcome)

    def dead_peer(self) -> None:
        """A connection was closed after missing its heartbeat budget."""
        self._dead_peers.inc()

    # ------------------------------------------------------------------
    # queries (tests / reports)
    # ------------------------------------------------------------------
    def requests(self, tenant: str) -> int:
        """Requests received from ``tenant``."""
        return int(self._requests.value(tenant=tenant))

    def results(self, tenant: str) -> int:
        """Results returned to ``tenant``."""
        return int(self._results.value(tenant=tenant))

    def rejections(self, tenant: str, reason: str) -> int:
        """Rejections of ``tenant`` for ``reason``."""
        return int(self._rejected.value(tenant=tenant, reason=reason))
