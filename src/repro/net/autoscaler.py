"""SLO-driven shard autoscaling for the decode service.

The :class:`Autoscaler` is a small control loop over the elastic pool
API (:meth:`~repro.serve.pool.DecodeService.add_shard` /
:meth:`~repro.serve.pool.DecodeService.remove_shard`): it watches the
service's SLO report (``health().slo``) and routed queue fill, and
trades replicas for latency within ``[min_shards, max_shards]``.

Stability mechanics, in order of precedence:

* **Dead-shard replacement** — a struck-out replica is swapped for a
  fresh one immediately (add first, remove second, so the group never
  loses routability), bypassing cooldown: capacity repair is not a
  scaling decision.
* **Cooldown** — after any scale action, no further action for
  ``cooldown_s``; a scale-up needs time to absorb queue backlog before
  its effect is measurable.
* **Hysteresis** — scale *up* on a single bad evaluation (fill at or
  above ``scale_up_fill``, or a failing SLO report); scale *down* only
  after ``shrink_after`` consecutive calm evaluations (fill at or
  below ``scale_down_fill`` and SLO not failing).  Growing is cheap
  and urgent; shrinking is neither.

:meth:`evaluate` is one synchronous decision step (exactly testable
with an injected clock); :meth:`start` runs it on a daemon thread every
``interval_s``.  Every action lands in ``decisions``, the
``net_autoscale_total`` counter, and the event log.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ServeError, ServeTimeoutError
from repro.net.metrics import NetMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.serve.pool import DecodeService

__all__ = ["Autoscaler"]

_EVENT_LEVELS = {
    "scale.up": "info",
    "scale.down": "info",
    "scale.replace": "warning",
    "scale.limit": "debug",
}


class Autoscaler(object):
    """Grow/shrink one shard group between bounds, driven by SLO + fill.

    Parameters
    ----------
    service:
        The elastic :class:`~repro.serve.pool.DecodeService`.
    group:
        Shard group to scale; optional when the service has one group.
    min_shards / max_shards:
        Inclusive replica bounds.
    interval_s:
        Evaluation period of the background loop (:meth:`start`).
    cooldown_s:
        Minimum seconds between scale actions.
    shrink_after:
        Consecutive calm evaluations required before scaling down.
    scale_up_fill / scale_down_fill:
        Queue-fill thresholds (0..1) triggering growth / eligibility
        for shrink.  A failing SLO report also triggers growth.
    drain_timeout_s:
        Bound on waiting for a shrinking shard to drain.
    metrics / log:
        Optional :class:`NetMetrics` (for ``net_autoscale_total``) and
        :class:`~repro.obs.log.EventLog`.
    clock:
        Injectable monotonic clock (cooldown arithmetic in tests).
    """

    def __init__(
        self,
        service: "DecodeService",
        group: Optional[str] = None,
        min_shards: int = 1,
        max_shards: int = 4,
        interval_s: float = 1.0,
        cooldown_s: float = 5.0,
        shrink_after: int = 3,
        scale_up_fill: float = 0.5,
        scale_down_fill: float = 0.1,
        drain_timeout_s: float = 30.0,
        metrics: Optional[NetMetrics] = None,
        log: "Optional[EventLog]" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if group is None:
            groups = list(service.groups)
            if len(groups) != 1:
                raise ServeError(
                    f"service has {len(groups)} groups; pass one of {groups}"
                )
            group = groups[0]
        elif service.group_size(group) == 0:
            raise ServeError(f"unknown shard group {group!r}")
        if min_shards < 1 or max_shards < min_shards:
            raise ServeError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{min_shards} / {max_shards}"
            )
        if shrink_after < 1:
            raise ServeError(f"shrink_after must be >= 1, got {shrink_after}")
        if not 0.0 <= scale_down_fill < scale_up_fill <= 1.0:
            raise ServeError(
                "need 0 <= scale_down_fill < scale_up_fill <= 1, got "
                f"{scale_down_fill} / {scale_up_fill}"
            )
        self.service = service
        self.group = group
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.interval_s = interval_s
        self.cooldown_s = cooldown_s
        self.shrink_after = shrink_after
        self.scale_up_fill = scale_up_fill
        self.scale_down_fill = scale_down_fill
        self.drain_timeout_s = drain_timeout_s
        self.metrics = metrics
        self.log = log
        self._clock = clock
        self._last_action = -float("inf")
        self._calm_streak = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Every action taken: dicts with action/fill/replicas/at keys.
        self.decisions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def count(self, action: str) -> int:
        """How many times ``action`` (``"up"``/``"down"``/``"replace"``)
        has been taken."""
        return sum(1 for d in self.decisions if d["action"] == action)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (``repro top`` / soak reports)."""
        return {
            "group": self.group,
            "replicas": self.service.group_size(self.group),
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "counts": {
                action: self.count(action)
                for action in ("up", "down", "replace")
            },
            "decisions": list(self.decisions[-20:]),
        }

    # ------------------------------------------------------------------
    # the decision step
    # ------------------------------------------------------------------
    def evaluate(self) -> Optional[str]:
        """Run one control-loop step; returns the action taken (if any).

        Precedence: replace dead replicas, then scale up, then scale
        down.  Returns ``"replace"``, ``"up"``, ``"down"``, or None.
        """
        health = self.service.health()
        if health.closed:
            return None
        dead = [
            s.key for s in health.shards.values()
            if s.group == self.group and not s.healthy
        ]
        if dead:
            return self._replace(dead[0])
        fill = self.service.queue_fill(self.group)
        slo = health.slo
        slo_failing = slo is not None and slo.status == "fail"
        replicas = self.service.group_size(self.group)
        now = self._clock()
        cooled = now - self._last_action >= self.cooldown_s
        if fill >= self.scale_up_fill or slo_failing:
            self._calm_streak = 0
            if replicas >= self.max_shards:
                self._event("scale.limit", at="max", replicas=replicas,
                            fill=round(fill, 3))
                return None
            if not cooled:
                return None
            return self._scale_up(fill, slo_failing)
        if fill <= self.scale_down_fill and not slo_failing:
            self._calm_streak += 1
            if (
                self._calm_streak >= self.shrink_after
                and replicas > self.min_shards
                and cooled
            ):
                return self._scale_down(fill)
            return None
        self._calm_streak = 0
        return None

    # ------------------------------------------------------------------
    # background loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run :meth:`evaluate` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"autoscaler-{self.group}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (idempotent; joins the thread)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(10.0, self.drain_timeout_s))
            self._thread = None

    def __enter__(self) -> "Autoscaler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.evaluate()
            except ServeError:
                pass  # service closing under us mid-step; next tick decides
            self._stop.wait(self.interval_s)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _replace(self, dead_key: str) -> Optional[str]:
        try:
            added = self.service.add_shard(self.group)
            self.service.remove_shard(key=dead_key, drain=False)
        except ServeError:
            return None  # raced close/removal; next tick re-evaluates
        self._record("replace", 1.0, removed=dead_key, added=added)
        return "replace"

    def _scale_up(self, fill: float, slo_failing: bool) -> Optional[str]:
        try:
            added = self.service.add_shard(self.group)
        except ServeError:
            return None
        self._last_action = self._clock()
        self._calm_streak = 0
        self._record("up", fill, added=added, slo_failing=slo_failing)
        return "up"

    def _scale_down(self, fill: float) -> Optional[str]:
        try:
            removed = self.service.remove_shard(
                group=self.group, drain=True, timeout=self.drain_timeout_s
            )
        except (ServeError, ServeTimeoutError):
            return None
        self._last_action = self._clock()
        self._calm_streak = 0
        self._record("down", fill, removed=removed)
        return "down"

    def _record(self, action: str, fill: float, **extra: object) -> None:
        replicas = self.service.group_size(self.group)
        self.decisions.append(
            {
                "action": action,
                "fill": round(fill, 4),
                "replicas": replicas,
                "at": self._clock(),
            }
        )
        if self.metrics is not None:
            self.metrics.autoscaled(action)
        # code_id mirrors group so `repro logs --code-id` isolates the
        # scaling history of one code alongside its request incidents
        self._event(f"scale.{action}", group=self.group,
                    code_id=self.group, replicas=replicas,
                    fill=round(fill, 3), **extra)

    def _event(self, name: str, **fields: object) -> None:
        if self.log is not None:
            self.log.log(_EVENT_LEVELS.get(name, "info"), name, **fields)
