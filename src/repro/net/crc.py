"""CRC32C (Castagnoli) — the frame-integrity checksum of protocol v2.

The gateway protocol guards every v2 frame with a CRC32C trailer so a
flipped bit or a torn write on the wire is *detected*, never decoded
(see :mod:`repro.net.protocol`).  CRC32C is chosen over the zlib CRC32
(IEEE) for its better burst-error detection and because it is what the
storage/network world standardized on (iSCSI, ext4, TCP offload) — a
deliberate echo of the paper's hardware framing, where datapath parity
is cheap and always on.

This is a pure-python table-driven implementation (the container bakes
no ``crc32c`` wheel and zlib's polynomial is the wrong one).  It is
slicing-by-4 over the reflected polynomial ``0x82F63B78``: ~4x fewer
loop iterations than byte-at-a-time, which keeps the cost well under
the decode time for protocol-sized frames (a 2.4 KiB REQUEST hashes in
well under a millisecond).
"""

from __future__ import annotations

__all__ = ["CRC32C_POLY", "crc32c"]

#: Reflected Castagnoli polynomial.
CRC32C_POLY = 0x82F63B78


def _build_tables() -> "tuple[list[int], ...]":
    table0 = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ CRC32C_POLY if c & 1 else c >> 1
        table0.append(c)
    tables = [table0]
    for k in range(1, 4):
        prev = tables[k - 1]
        tables.append([table0[prev[i] & 0xFF] ^ (prev[i] >> 8)
                       for i in range(256)])
    return tuple(tables)


_T0, _T1, _T2, _T3 = _build_tables()


def crc32c(data: "bytes | bytearray | memoryview", crc: int = 0) -> int:
    """CRC32C of ``data``, continuing from a previous ``crc`` (default 0).

    ``crc32c(b + c) == crc32c(c, crc32c(b))``, so frames can be hashed
    incrementally.  Returns an unsigned 32-bit integer.
    """
    c = ~crc & 0xFFFFFFFF
    view = memoryview(data)
    n = len(view)
    word_end = n - (n % 4)
    i = 0
    while i < word_end:
        c ^= view[i] | (view[i + 1] << 8) | (view[i + 2] << 16) \
            | (view[i + 3] << 24)
        c = _T3[c & 0xFF] ^ _T2[(c >> 8) & 0xFF] \
            ^ _T1[(c >> 16) & 0xFF] ^ _T0[(c >> 24) & 0xFF]
        i += 4
    while i < n:
        c = _T0[(c ^ view[i]) & 0xFF] ^ (c >> 8)
        i += 1
    return ~c & 0xFFFFFFFF
