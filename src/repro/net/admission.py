"""Multi-tenant admission: token-bucket quotas and priority classes.

The gateway's front door decides, per request, one of three outcomes —
*admit at full budget*, *admit degraded*, or *refuse* — before the frame
touches a decode queue.  Ghanaatian et al.'s unrolled decoder makes the
case numerically: once the kernel retires a frame in nanoseconds, the
front door is the bottleneck, and fairness must be enforced there.

Two mechanisms compose:

* **Token buckets** (:class:`TokenBucket`) meter each tenant's request
  rate against its purchased quota; an empty bucket refuses with
  :class:`~repro.errors.QuotaExceededError` — the request never costs a
  queue slot.
* **Priority classes** (:data:`GOLD`/:data:`SILVER`/:data:`BRONZE`)
  bias how early a tenant's frames are degraded under load: the
  controller adds a per-class *fill bias* to the observed queue fill
  before consulting the service's shared
  :class:`~repro.serve.shedding.StepShedPolicy`, so bronze traffic
  sees a "fuller" queue and loses iteration budget first, while gold
  keeps the full budget until the queue is genuinely deep.  The result
  feeds ``DecodeService.submit(iteration_budget=...)``, which takes the
  tighter of this and the in-process shed budget.

Clocks are injectable so quota behaviour is exactly testable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.errors import QuotaExceededError, ServeError
from repro.serve.shedding import LoadShedPolicy, StepShedPolicy

__all__ = [
    "BRONZE",
    "GOLD",
    "PRIORITY_FILL_BIAS",
    "AdmissionController",
    "AdmissionDecision",
    "SILVER",
    "TenantPolicy",
    "TokenBucket",
]

#: Priority classes: lower is better.  The wire carries them as a u8.
GOLD = 0
SILVER = 1
BRONZE = 2

#: Fill bias per priority class: added to the observed queue fill before
#: the shed policy is consulted, so lower classes degrade earlier.  With
#: the stock :class:`StepShedPolicy` steps (0.75/0.90/1.0) bronze starts
#: shedding at 40 % real fill, silver at 60 %, gold at the true 75 %.
PRIORITY_FILL_BIAS: Dict[int, float] = {GOLD: 0.0, SILVER: 0.15, BRONZE: 0.35}


class TokenBucket(object):
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    The bucket starts full.  :meth:`try_acquire` is non-blocking —
    admission either happens now or is refused now; the gateway never
    parks a connection waiting for quota.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ServeError(f"token rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ServeError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; False otherwise."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens


@dataclass(frozen=True)
class TenantPolicy(object):
    """One tenant's contract with the gateway.

    Attributes
    ----------
    rate / burst:
        Token-bucket parameters: sustained requests/s and the burst the
        tenant may front-load.
    priority:
        The tenant's best (lowest) priority class; per-request priority
        can self-demote below it but never exceed it.
    """

    rate: float
    burst: float
    priority: int = GOLD

    def __post_init__(self) -> None:
        if self.priority < 0 or self.priority > 255:
            raise ServeError(
                f"priority class must fit a u8, got {self.priority}"
            )


@dataclass(frozen=True)
class AdmissionDecision(object):
    """Outcome of one admitted request.

    ``iteration_budget`` is None when the frame keeps the full budget;
    ``shed`` is True when the class bias (not raw fill alone) cost it
    iterations.
    """

    tenant: str
    priority: int
    iteration_budget: Optional[int]
    fill: float
    biased_fill: float

    @property
    def shed(self) -> bool:
        """True when the frame was admitted with a reduced budget."""
        return self.iteration_budget is not None


class AdmissionController(object):
    """Per-tenant quota + priority gate in front of a decode service.

    Parameters
    ----------
    tenants:
        ``{tenant id: TenantPolicy}``.  Unknown tenants are refused
        unless a ``default_policy`` is supplied (then they get a private
        bucket with that policy on first sight).
    max_iterations:
        The service's full iteration budget (the shed policy's scale).
    shed_policy:
        Policy mapping (biased) fill to budget; defaults to the stock
        :class:`StepShedPolicy`, matching the in-process service.
    clock:
        Injectable monotonic clock shared by every bucket.
    """

    def __init__(
        self,
        tenants: Mapping[str, TenantPolicy],
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        shed_policy: Optional[LoadShedPolicy] = None,
        default_policy: Optional[TenantPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policies: Dict[str, TenantPolicy] = dict(tenants)
        self.max_iterations = int(max_iterations)
        self.shed_policy = (
            shed_policy if shed_policy is not None else StepShedPolicy()
        )
        self.default_policy = default_policy
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(p.rate, p.burst, clock)
            for name, p in self.policies.items()
        }

    @property
    def tenants(self) -> Dict[str, TenantPolicy]:
        """Known tenant policies (a copy; includes default-admitted ones)."""
        with self._lock:
            return dict(self.policies)

    def available(self, tenant: str) -> float:
        """Tokens currently available to ``tenant`` (0.0 if unknown)."""
        with self._lock:
            bucket = self._buckets.get(tenant)
        return bucket.available if bucket is not None else 0.0

    def _resolve(self, tenant: str) -> "tuple[TenantPolicy, TokenBucket]":
        with self._lock:
            policy = self.policies.get(tenant)
            if policy is None:
                if self.default_policy is None:
                    raise QuotaExceededError(
                        f"unknown tenant {tenant!r} and no default policy"
                    )
                policy = self.default_policy
                self.policies[tenant] = policy
                self._buckets[tenant] = TokenBucket(
                    policy.rate, policy.burst, self._clock
                )
            return policy, self._buckets[tenant]

    def admit(
        self, tenant: str, fill: float, priority: Optional[int] = None
    ) -> AdmissionDecision:
        """Admit one request or raise :class:`QuotaExceededError`.

        ``fill`` is the routed shard group's current queue fill (from
        :meth:`~repro.serve.pool.DecodeService.queue_fill`);
        ``priority`` is the request's wished class, clamped to never be
        better than the tenant's contracted class.
        """
        policy, bucket = self._resolve(tenant)
        if not bucket.try_acquire():
            raise QuotaExceededError(
                f"tenant {tenant!r} is out of quota "
                f"(rate {policy.rate:g}/s, burst {policy.burst:g})"
            )
        effective = (
            policy.priority if priority is None
            else max(policy.priority, int(priority))
        )
        bias = PRIORITY_FILL_BIAS.get(
            effective, max(PRIORITY_FILL_BIAS.values())
        )
        biased = min(1.0, max(0.0, float(fill)) + bias)
        budget = self.shed_policy.budget(biased, self.max_iterations)
        return AdmissionDecision(
            tenant=tenant,
            priority=effective,
            iteration_budget=None if budget >= self.max_iterations else budget,
            fill=float(fill),
            biased_fill=biased,
        )
