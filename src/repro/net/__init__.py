"""repro.net: the network face of the decode service.

The paper's decoder is scaled up in three layers here: the decoder
kernels (``repro.decoder`` / ``repro.accel``), the continuous-batching
shard pool (``repro.serve``), and — this package — a framed asyncio TCP
gateway with multi-tenant admission control and SLO-driven autoscaling.

* :mod:`repro.net.protocol` — the length-prefixed wire format (packed
  int8 LLR payloads, streaming result frames, typed error transport).
* :mod:`repro.net.admission` — per-tenant token buckets plus priority
  classes (:data:`GOLD`/:data:`SILVER`/:data:`BRONZE`) mapped onto the
  serve layer's step-shed iteration budgets.
* :mod:`repro.net.gateway` — :class:`DecodeGateway`, the asyncio server
  bridging connections onto :class:`~repro.serve.pool.DecodeService`.
* :mod:`repro.net.client` — :class:`AsyncDecodeClient` (asyncio) and
  :class:`DecodeClient` (blocking).
* :mod:`repro.net.autoscaler` — :class:`Autoscaler`, the control loop
  growing/shrinking shards off ``health().slo`` and queue fill.
* :mod:`repro.net.resilience` — :class:`ResilientDecodeClient` with
  retries, hedging, circuit breakers, and heartbeat liveness.
* :mod:`repro.net.dedup` — :class:`DedupWindow`, the gateway-side
  idempotency window that makes retries decode-once.
* :mod:`repro.net.crc` — the CRC32C used by protocol v2 frame
  integrity.
* :mod:`repro.net.soak` — :func:`run_net_soak`, the self-verifying
  diurnal-traffic soak harness behind ``repro net-soak`` (with
  ``--chaos`` it drives everything through :mod:`repro.chaos` proxies;
  with ``trace=True`` it verifies every request's distributed span
  chain).
* :mod:`repro.net.console` — the ``repro top`` live ops console and
  the JSON status endpoint (:class:`ObsEndpoint`) a gateway serves it
  from.
"""

from repro.net.admission import (
    BRONZE,
    GOLD,
    SILVER,
    AdmissionController,
    AdmissionDecision,
    TenantPolicy,
    TokenBucket,
)
from repro.net.autoscaler import Autoscaler
from repro.net.client import AsyncDecodeClient, DecodeClient, RemoteResult
from repro.net.console import (
    ObsEndpoint,
    build_status,
    fetch_status,
    render_top,
    run_top,
)
from repro.net.crc import crc32c
from repro.net.dedup import DedupWindow
from repro.net.gateway import DecodeGateway
from repro.net.harq import (
    HarqCodeStats,
    HarqConfig,
    HarqReport,
    HarqRung,
    default_ladder,
    run_harq_session,
)
from repro.net.metrics import NetMetrics
from repro.net.protocol import (
    CLIENT_FLAGS,
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_CRC32C,
    FLAG_HEARTBEAT,
    FLAG_IDEMPOTENCY,
    FLAG_TRACE,
    MAGIC,
    SUPPORTED_VERSIONS,
    V1,
    V2,
    VERSION,
    ErrorFrame,
    FrameReader,
    Hello,
    Ping,
    Pong,
    Request,
    Result,
    decode_frame,
    encode_error,
    encode_hello,
    encode_ping,
    encode_pong,
    encode_request,
    encode_result,
    pack_llrs,
    read_frame,
    read_raw,
    unpack_llrs,
    write_frame,
)
from repro.net.resilience import (
    CircuitBreaker,
    ResilientDecodeClient,
    RetryPolicy,
)
from repro.net.soak import SoakConfig, run_net_soak

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsyncDecodeClient",
    "Autoscaler",
    "BRONZE",
    "build_status",
    "CircuitBreaker",
    "CLIENT_FLAGS",
    "crc32c",
    "decode_frame",
    "DecodeClient",
    "DecodeGateway",
    "DedupWindow",
    "default_ladder",
    "DEFAULT_MAX_FRAME_BYTES",
    "encode_error",
    "encode_hello",
    "encode_ping",
    "encode_pong",
    "encode_request",
    "encode_result",
    "ErrorFrame",
    "fetch_status",
    "FLAG_CRC32C",
    "FLAG_HEARTBEAT",
    "FLAG_IDEMPOTENCY",
    "FLAG_TRACE",
    "FrameReader",
    "GOLD",
    "HarqCodeStats",
    "HarqConfig",
    "HarqReport",
    "HarqRung",
    "Hello",
    "MAGIC",
    "NetMetrics",
    "ObsEndpoint",
    "pack_llrs",
    "Ping",
    "Pong",
    "read_frame",
    "read_raw",
    "RemoteResult",
    "render_top",
    "Request",
    "ResilientDecodeClient",
    "Result",
    "RetryPolicy",
    "run_harq_session",
    "run_net_soak",
    "run_top",
    "SILVER",
    "SoakConfig",
    "SUPPORTED_VERSIONS",
    "TenantPolicy",
    "TokenBucket",
    "unpack_llrs",
    "V1",
    "V2",
    "VERSION",
    "write_frame",
]
