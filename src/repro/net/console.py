"""Live ops console for a running gateway: ``repro top`` + its endpoint.

Two halves:

* :class:`ObsEndpoint` — a tiny asyncio TCP server a gateway process
  attaches next to its serving port (``repro net-serve --obs-port``).
  Each connection receives one JSON status document and is closed:
  no framing, no protocol negotiation, ``curl``-able with netcat.  The
  document bundles everything the observability layer already knows —
  the shared :class:`~repro.obs.metrics.MetricsRegistry` snapshot, a
  Prometheus text rendition, per-tenant RED rollups computed from the
  exact ``net_*``/``serve_*`` counters, shard health, dedup-window and
  autoscaler state, and a fresh gateway-SLO evaluation.
* :func:`run_top` — the client: fetch, render, repeat.  An ANSI
  alternate-screen live view by default; ``--once`` prints a single
  frame (``--json`` the raw document) so tests and scripts get the
  same numbers the human sees.

The RED rollups are *derived server-side from the counters at snapshot
time*, never re-aggregated client-side, so ``repro top --once --json``
agrees with ``repro obs-report`` and the Prometheus scrape to the last
increment.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.slo import default_gateway_slos
from repro.utils.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.net.autoscaler import Autoscaler
    from repro.net.gateway import DecodeGateway

__all__ = [
    "ObsEndpoint",
    "build_status",
    "fetch_status",
    "render_top",
    "run_top",
]

#: JSON document schema version (bump on breaking shape changes).
STATUS_SCHEMA = 1

_MAX_STATUS_BYTES = 8 * 1024 * 1024


def _tenants(registry_dict: Dict[str, Any]) -> List[str]:
    """Every tenant with at least one request counted."""
    inst = registry_dict.get("net_requests_total") or {}
    out = set()
    for series in inst.get("series", ()):
        tenant = series.get("labels", {}).get("tenant")
        if tenant is not None:
            out.add(tenant)
    return sorted(out)


def _counter_by(
    registry_dict: Dict[str, Any], metric: str, label: str
) -> Dict[str, float]:
    """``{label_value: summed_value}`` for one counter's series."""
    inst = registry_dict.get(metric) or {}
    out: Dict[str, float] = {}
    for series in inst.get("series", ()):
        key = series.get("labels", {}).get(label)
        if key is None:
            continue
        out[key] = out.get(key, 0.0) + float(series.get("value", 0.0))
    return out


def build_status(
    gateway: "DecodeGateway",
    autoscaler: "Optional[Autoscaler]" = None,
    slo_p99_latency_s: float = 1.0,
) -> Dict[str, Any]:
    """One JSON-ready status document for a live gateway.

    Reads the gateway's shared registry (so ``serve_*`` series ride
    along when the service publishes into the same one), then layers
    the derived views on top.  Cheap enough to call per connection.
    """
    registry = gateway.metrics.registry
    reg_dict = registry.to_dict()
    tenants = _tenants(reg_dict)

    latency = registry.get("net_request_latency_seconds")
    phases = registry.get("net_request_seconds")
    requests = _counter_by(reg_dict, "net_requests_total", "tenant")
    results = _counter_by(reg_dict, "net_results_total", "tenant")
    errors = _counter_by(reg_dict, "net_errors_total", "tenant")
    rejected = _counter_by(reg_dict, "net_rejected_total", "tenant")
    shed = _counter_by(reg_dict, "net_shed_total", "tenant")

    tenant_rows: Dict[str, Dict[str, Any]] = {}
    for tenant in tenants:
        row: Dict[str, Any] = {
            "requests": int(requests.get(tenant, 0)),
            "results": int(results.get(tenant, 0)),
            "errors": int(errors.get(tenant, 0)),
            "rejected": int(rejected.get(tenant, 0)),
            "shed": int(shed.get(tenant, 0)),
        }
        if latency is not None and latency.count(tenant=tenant):
            row["p50_s"] = latency.percentile(50.0, tenant=tenant)
            row["p99_s"] = latency.percentile(99.0, tenant=tenant)
        tenant_rows[tenant] = row

    # per-(tenant, code) request counts from the phase histogram's
    # "total" series — the only labelled view that splits by code
    codes: Dict[str, Dict[str, Any]] = {}
    if phases is not None:
        for key, state in phases.series():
            labels = dict(zip(phases.label_names, key))
            if labels.get("phase") != "total":
                continue
            code = labels.get("code_id", "default")
            entry = codes.setdefault(
                code, {"requests": 0, "tenants": set()}
            )
            entry["requests"] += state.count
            entry["tenants"].add(labels.get("tenant", ""))
        for entry in codes.values():
            entry["tenants"] = sorted(entry["tenants"])

    health = gateway.service.health()
    shards = {
        key: {
            "alive": sh.alive,
            "healthy": sh.healthy,
            "queue_depth": sh.queue_depth,
            "queue_capacity": sh.queue_capacity,
            "fill": round(sh.fill, 4),
            "in_flight": sh.in_flight,
            "restarts": sh.restarts,
            "strikes": sh.strikes,
            "group": sh.group,
        }
        for key, sh in health.shards.items()
    }

    slo_report = default_gateway_slos(
        p99_latency_s=slo_p99_latency_s, tenants=tenants
    ).evaluate(registry)

    status: Dict[str, Any] = {
        "schema_version": STATUS_SCHEMA,
        "ts": time.time(),
        "gateway": {
            "address": list(gateway.address),
            "closed": gateway.closed,
            "draining": gateway.draining,
        },
        "service": {"status": health.status, "closed": health.closed},
        "tenants": tenant_rows,
        "codes": codes,
        "shards": shards,
        "dedup": gateway.dedup.to_dict() if gateway.dedup else None,
        "autoscaler": autoscaler.to_dict() if autoscaler else None,
        "slo": slo_report.to_dict(),
        "metrics": reg_dict,
        "prometheus": registry.render_prometheus(),
    }
    if health.slo is not None:
        status["service"]["slo"] = health.slo.to_dict()
    return status


class ObsEndpoint(object):
    """One-shot JSON status server riding next to a gateway.

    Serves :func:`build_status` to every connection and closes it —
    the transport equivalent of a ``/statusz`` page.  Lifecycle mirrors
    :class:`~repro.net.gateway.DecodeGateway` (``start``/``close`` or
    ``async with``); binds ``port=0`` by default so tests read the
    OS-assigned port back from :attr:`address`.
    """

    def __init__(
        self,
        gateway: "DecodeGateway",
        host: str = "127.0.0.1",
        port: int = 0,
        autoscaler: "Optional[Autoscaler]" = None,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self.autoscaler = autoscaler
        self._server: "Optional[asyncio.base_events.Server]" = None

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        if self._server is None:
            raise ReproError("ObsEndpoint is not started")
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def start(self) -> "ObsEndpoint":
        import asyncio

        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ObsEndpoint":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def _handle(self, reader, writer) -> None:
        try:
            doc = build_status(self.gateway, autoscaler=self.autoscaler)
            writer.write(json.dumps(doc, sort_keys=True).encode("utf-8"))
            writer.write(b"\n")
            await writer.drain()
        except Exception:
            pass  # a half-closed scrape must never hurt the gateway
        finally:
            try:
                writer.close()
            except Exception:
                pass


def fetch_status(
    host: str, port: int, timeout: float = 5.0
) -> Dict[str, Any]:
    """Blocking fetch of one status document from an :class:`ObsEndpoint`."""
    chunks: List[bytes] = []
    total = 0
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            total += len(chunk)
            if total > _MAX_STATUS_BYTES:
                raise ReproError(
                    f"status document exceeds {_MAX_STATUS_BYTES} bytes"
                )
            chunks.append(chunk)
    raw = b"".join(chunks)
    if not raw.strip():
        raise ReproError(f"empty status from {host}:{port}")
    return json.loads(raw.decode("utf-8"))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_ms(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value) * 1e3:.2f}ms"


def render_top(status: Dict[str, Any]) -> str:
    """One status document as the console's text frame (no ANSI)."""
    parts: List[str] = []
    stamp = time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.localtime(status.get("ts", 0.0))
    )
    gw = status.get("gateway") or {}
    svc = status.get("service") or {}
    addr = gw.get("address")
    head = (
        f"repro top — gateway "
        f"{addr[0]}:{addr[1]}" if addr else "repro top — gateway (unbound)"
    )
    parts.append(
        f"{head}  service={svc.get('status', '?')}  {stamp}"
    )

    tenants = status.get("tenants") or {}
    if tenants:
        rows = []
        for tenant in sorted(tenants):
            row = tenants[tenant]
            rows.append([
                tenant,
                row.get("requests", 0),
                row.get("results", 0),
                row.get("errors", 0),
                row.get("rejected", 0),
                row.get("shed", 0),
                _fmt_ms(row.get("p50_s")),
                _fmt_ms(row.get("p99_s")),
            ])
        parts.append(render_table(
            ["tenant", "req", "ok", "err", "rej", "shed", "p50", "p99"],
            rows, title="tenants (RED)",
        ))

    codes = status.get("codes") or {}
    if codes:
        rows = [
            [code, codes[code].get("requests", 0),
             ",".join(codes[code].get("tenants", ()))]
            for code in sorted(codes)
        ]
        parts.append(render_table(
            ["code", "req", "tenants"], rows, title="codes",
        ))

    shards = status.get("shards") or {}
    if shards:
        rows = []
        for key in sorted(shards):
            sh = shards[key]
            state = "ok" if sh.get("healthy") else "DOWN"
            rows.append([
                key, state,
                f"{sh.get('queue_depth', 0)}/{sh.get('queue_capacity', 0)}",
                f"{100.0 * sh.get('fill', 0.0):.0f}%",
                sh.get("in_flight", 0),
                sh.get("restarts", 0),
                sh.get("strikes", 0),
            ])
        parts.append(render_table(
            ["shard", "state", "queue", "fill", "busy", "restarts",
             "strikes"],
            rows, title="shards",
        ))

    dedup = status.get("dedup")
    auto = status.get("autoscaler")
    line: List[str] = []
    if dedup:
        line.append(
            "dedup: entries={entries} hits={hits} joined={joined} "
            "misses={misses}".format(
                entries=dedup.get("entries", dedup.get("size", 0)),
                hits=dedup.get("hits", 0),
                joined=dedup.get("joined", 0),
                misses=dedup.get("misses", 0),
            )
        )
    if auto:
        counts = auto.get("counts") or {}
        line.append(
            f"autoscaler[{auto.get('group', '?')}]: "
            f"replicas={auto.get('replicas', '?')} "
            f"up={counts.get('up', 0)} down={counts.get('down', 0)} "
            f"replace={counts.get('replace', 0)}"
        )
    if line:
        parts.append("  ".join(line))

    slo = status.get("slo") or {}
    verdicts = slo.get("verdicts") or ()
    if verdicts:
        rows = [
            [v.get("name") or v.get("metric", "?"),
             ("%.6g" % v["observed"]) if v.get("observed") is not None
             else "-",
             f"{v.get('op', '?')} {v.get('threshold', '?')}",
             str(v.get("status", "?")).upper()]
            for v in verdicts
        ]
        parts.append(render_table(
            ["objective", "observed", "target", "status"], rows,
            title=f"gateway SLOs — {slo.get('status', '?')}",
        ))

    return "\n\n".join(parts)


def run_top(
    host: str,
    port: int,
    interval_s: float = 1.0,
    once: bool = False,
    as_json: bool = False,
    iterations: Optional[int] = None,
    out: Callable[[str], None] = None,
) -> Dict[str, Any]:
    """The ``repro top`` loop; returns the last status document.

    ``once`` fetches and prints a single frame; otherwise the terminal
    is switched to the ANSI alternate screen and redrawn every
    ``interval_s`` seconds until Ctrl-C (or ``iterations`` frames, for
    tests).  ``as_json`` prints the raw document instead of the
    rendered tables — the scriptable twin of the human view.
    """
    if out is None:
        out = lambda text: print(text)  # noqa: E731
    if once:
        status = fetch_status(host, port)
        out(json.dumps(status, indent=2, sort_keys=True) if as_json
            else render_top(status))
        return status

    status: Dict[str, Any] = {}
    use_ansi = sys.stdout.isatty()
    if use_ansi:
        sys.stdout.write("\x1b[?1049h")  # alternate screen
    try:
        frame = 0
        while True:
            status = fetch_status(host, port)
            body = (
                json.dumps(status, indent=2, sort_keys=True)
                if as_json else render_top(status)
            )
            if use_ansi:
                sys.stdout.write("\x1b[2J\x1b[H")
                sys.stdout.write(body + "\n")
                sys.stdout.flush()
            else:
                out(body)
            frame += 1
            if iterations is not None and frame >= iterations:
                return status
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return status
    finally:
        if use_ansi:
            sys.stdout.write("\x1b[?1049l")
            sys.stdout.flush()
