"""Synthetic diurnal-traffic soak harness for the network gateway.

One soak run is a complete, self-verifying exercise of the serving
stack's network story: a real TCP gateway in front of a real
:class:`~repro.serve.pool.DecodeService`, hundreds of concurrent client
connections spread over several tenants (one of them deliberately
under-quota'd), a load curve shaped like a day — quiet night, traffic
peak, quiet evening — a worker crash injected mid-peak, and an
:class:`~repro.net.autoscaler.Autoscaler` expected to both grow the
shard pool into the peak and shrink it afterwards.

The harness is *checked*, not just timed:

* every successfully decoded frame's bits are re-derived with
  :func:`repro.decoder.decode_many` on the **canonical dequantized
  LLRs** (exactly what travelled the wire), and any mismatch on a
  converged frame is a hard failure — the network path must be
  bit-exact with the in-process path;
* the run finishes with the service's SLO report attached, so a soak
  that "worked" while quietly violating its latency/crash/error
  objectives is visible as such;
* the autoscaler's decision log and the per-tenant admission counters
  are part of the report.

``repro net-soak`` runs it from the CLI; ``benchmarks/bench_net.py``
freezes its throughput as ``BENCH_net.json`` for the perf gate; the
acceptance test in ``tests/test_net_soak.py`` runs the 500-connection
configuration from the issue.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel import AwgnChannel
from repro.chaos import ChaosConfig, ChaosProxy
from repro.codes import wifi_code, wimax_code
from repro.codes.qc import QCLDPCCode
from repro.decoder import decode_many
from repro.encoder import RuEncoder
from repro.errors import (
    CircuitOpenError,
    GatewayClosedError,
    QuotaExceededError,
    ServeError,
)
from repro.net.admission import (
    BRONZE,
    GOLD,
    SILVER,
    AdmissionController,
    TenantPolicy,
)
from repro.net.autoscaler import Autoscaler
from repro.net.client import AsyncDecodeClient
from repro.net.dedup import DedupWindow
from repro.net.gateway import DecodeGateway
from repro.net.metrics import NetMetrics
from repro.net.protocol import pack_llrs, unpack_llrs
from repro.net.resilience import ResilientDecodeClient, RetryPolicy
from repro.obs.log import EventLog
from repro.obs.slo import default_serve_slos
from repro.obs.trace import TraceRecorder
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import DecodeService
from repro.utils.provenance import bench_meta

__all__ = ["SoakConfig", "run_net_soak"]

#: Default tenant mix: three paying classes plus a free tier whose tiny
#: bucket is guaranteed to exhaust during the peak.
DEFAULT_TENANTS: Dict[str, Dict[str, float]] = {
    "gold": {"share": 0.4, "rate": 1e6, "burst": 1e6, "priority": GOLD},
    "silver": {"share": 0.3, "rate": 1e6, "burst": 1e6, "priority": SILVER},
    "bronze": {"share": 0.2, "rate": 1e6, "burst": 1e6, "priority": BRONZE},
    "free": {"share": 0.1, "rate": 0.2, "burst": 2.0, "priority": BRONZE},
}

#: Diurnal load curve: (phase name, load fraction of peak, seconds).
DEFAULT_PHASES: Tuple[Tuple[str, float, float], ...] = (
    ("night", 0.15, 1.0),
    ("peak", 1.0, 2.5),
    ("evening", 0.08, 1.5),
)


@dataclass(frozen=True)
class SoakConfig(object):
    """Everything one soak run depends on (JSON-serializable, so the
    perf gate can re-run a committed baseline's exact configuration)."""

    family: str = "wimax"
    rate_class: str = "1/2"
    length: int = 576
    iterations: int = 10
    fixed: bool = False
    kernel: str = "fused"
    backend: str = "thread"
    batch: int = 8
    queue_capacity: int = 16
    connections: int = 60
    peak_frames_per_conn: int = 6
    phases: Tuple[Tuple[str, float, float], ...] = DEFAULT_PHASES
    tenants: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: {
            k: dict(v) for k, v in DEFAULT_TENANTS.items()
        }
    )
    ebno_db: float = 4.0
    seed: int = 0
    inject_crash: bool = True
    min_shards: int = 1
    max_shards: int = 3
    scale_up_fill: float = 0.25
    scale_down_fill: float = 0.05
    autoscale_interval_s: float = 0.1
    cooldown_s: float = 0.5
    shrink_after: int = 3
    shrink_wait_s: float = 10.0
    request_timeout_s: float = 60.0
    max_retries: int = 6
    slo_p99_s: float = 5.0
    slo_crash_rate: float = 0.05
    slo_error_rate: float = 0.15
    #: Distributed tracing: negotiate FLAG_TRACE on every client, so
    #: each request yields one client→gateway→shard span chain under a
    #: single trace id; the report gains a ``trace_verify`` block and
    #: the throughput mode is renamed ``*-traced`` (separate perf-gate
    #: baseline — tracing is measured overhead, not noise).
    trace: bool = False
    # --- chaos mode (``repro net-soak --chaos``) ---------------------
    # Chaos is asymmetric by design: only the first replica's proxy
    # corrupts/truncates/resets, so the circuit breaker has somewhere
    # clean to shift traffic and retry amplification stays bounded —
    # exactly how a real multi-AZ deployment degrades.
    chaos: bool = False
    replicas: int = 2
    chaos_corrupt_p: float = 1e-3
    chaos_truncate_p: float = 0.002
    chaos_latency_p: float = 0.05
    chaos_latency_s: float = 0.02
    chaos_reset_p: float = 0.002
    chaos_partial_p: float = 0.05
    partition_s: float = 0.5
    kill_gateway: bool = True
    hedge_delay_s: float = 1.0
    heartbeat_s: float = 0.5
    client_max_attempts: int = 6
    dedup_ttl_s: float = 30.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (phases become lists)."""
        return {
            "family": self.family,
            "rate_class": self.rate_class,
            "length": self.length,
            "iterations": self.iterations,
            "fixed": self.fixed,
            "kernel": self.kernel,
            "backend": self.backend,
            "batch": self.batch,
            "queue_capacity": self.queue_capacity,
            "connections": self.connections,
            "peak_frames_per_conn": self.peak_frames_per_conn,
            "phases": [list(p) for p in self.phases],
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
            "ebno_db": self.ebno_db,
            "seed": self.seed,
            "inject_crash": self.inject_crash,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "scale_up_fill": self.scale_up_fill,
            "scale_down_fill": self.scale_down_fill,
            "autoscale_interval_s": self.autoscale_interval_s,
            "cooldown_s": self.cooldown_s,
            "shrink_after": self.shrink_after,
            "shrink_wait_s": self.shrink_wait_s,
            "request_timeout_s": self.request_timeout_s,
            "max_retries": self.max_retries,
            "slo_p99_s": self.slo_p99_s,
            "slo_crash_rate": self.slo_crash_rate,
            "slo_error_rate": self.slo_error_rate,
            "trace": self.trace,
            "chaos": self.chaos,
            "replicas": self.replicas,
            "chaos_corrupt_p": self.chaos_corrupt_p,
            "chaos_truncate_p": self.chaos_truncate_p,
            "chaos_latency_p": self.chaos_latency_p,
            "chaos_latency_s": self.chaos_latency_s,
            "chaos_reset_p": self.chaos_reset_p,
            "chaos_partial_p": self.chaos_partial_p,
            "partition_s": self.partition_s,
            "kill_gateway": self.kill_gateway,
            "hedge_delay_s": self.hedge_delay_s,
            "heartbeat_s": self.heartbeat_s,
            "client_max_attempts": self.client_max_attempts,
            "dedup_ttl_s": self.dedup_ttl_s,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "SoakConfig":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs = {k: v for k, v in obj.items() if k in known}
        if "phases" in kwargs:
            kwargs["phases"] = tuple(
                (str(n), float(l), float(d)) for n, l, d in kwargs["phases"]
            )
        return cls(**kwargs)

    def build_code(self) -> QCLDPCCode:
        """The QC-LDPC code this soak decodes."""
        if self.family == "wifi":
            return wifi_code(self.rate_class, self.length)
        return wimax_code(self.rate_class, self.length)


class _TenantStats(object):
    """Per-tenant client-side accounting for one soak run."""

    __slots__ = ("ok", "quota_rejected", "retries", "failed", "dropped",
                 "unconverged")

    def __init__(self) -> None:
        self.ok = 0
        self.quota_rejected = 0
        self.retries = 0
        self.failed = 0
        self.dropped = 0
        self.unconverged = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _assign_tenants(cfg: SoakConfig) -> List[str]:
    """Tenant name per connection index, honouring the share mix."""
    names = list(cfg.tenants)
    counts = {
        name: int(round(cfg.tenants[name].get("share", 0.0) * cfg.connections))
        for name in names
    }
    for name in names:  # every configured tenant appears at least once
        if counts[name] == 0 and cfg.tenants[name].get("share", 0.0) > 0:
            counts[name] = 1
    # reconcile rounding drift by trimming the largest tenants first, so
    # the min-one-connection guarantee survives small connection counts
    total = sum(counts.values())
    while total > cfg.connections:
        biggest = max(names, key=lambda n: counts[n])
        if counts[biggest] <= 1:
            break
        counts[biggest] -= 1
        total -= 1
    while total < cfg.connections:
        counts[names[0]] += 1
        total += 1
    assignment: List[str] = []
    for name in names:
        assignment.extend([name] * counts[name])
    return assignment[: cfg.connections]


def _crash_at(cfg: SoakConfig) -> float:
    """Seconds into the run at which the worker crash is injected:
    the middle of the heaviest-load phase."""
    if not cfg.phases:
        return 0.0
    peak_idx = max(
        range(len(cfg.phases)), key=lambda i: cfg.phases[i][1]
    )
    before = sum(d for _n, _l, d in cfg.phases[:peak_idx])
    return before + cfg.phases[peak_idx][2] * 0.5


async def _send_one(
    client: AsyncDecodeClient,
    llrs: np.ndarray,
    cfg: SoakConfig,
    stats: _TenantStats,
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
) -> None:
    """One frame through the gateway, with typed-error retry."""
    for attempt in range(cfg.max_retries + 1):
        try:
            result = await client.decode(llrs, timeout=cfg.request_timeout_s)
        except QuotaExceededError:
            stats.quota_rejected += 1
            return
        except GatewayClosedError:
            stats.dropped += 1
            return
        except ServeError:
            # backpressure, a crashed shard, a drained replica: all
            # retryable — the typed family is the contract that lets a
            # client distinguish "try again" from "stop asking"
            stats.retries += 1
            await asyncio.sleep(0.05 * (attempt + 1))
            continue
        stats.ok += 1
        if result.converged:
            records.append((llrs, result.bits, True))
        else:
            stats.unconverged += 1
            records.append((llrs, result.bits, False))
        return
    stats.failed += 1


async def _connection_task(
    index: int,
    tenant: str,
    cfg: SoakConfig,
    host: str,
    port: int,
    encoder: RuEncoder,
    code: QCLDPCCode,
    stats: _TenantStats,
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
    latencies: List[float],
    recorder: Optional[TraceRecorder] = None,
) -> None:
    """One client connection living through the whole diurnal curve."""
    rng = np.random.default_rng(cfg.seed * 100003 + index)
    priority = int(cfg.tenants[tenant].get("priority", GOLD))
    client = await AsyncDecodeClient.connect(
        host, port, tenant=tenant, priority=priority, recorder=recorder
    )
    try:
        # stagger connection ramp-up so the accept loop is not a spike
        await asyncio.sleep((index % 97) / 97 * 0.25)
        for _phase, load, duration in cfg.phases:
            frames = int(round(cfg.peak_frames_per_conn * load))
            if frames == 0:
                await asyncio.sleep(duration)
                continue
            spacing = duration / frames
            for _ in range(frames):
                message = rng.integers(0, 2, encoder.k).astype(np.uint8)
                codeword = encoder.encode(message)
                channel = AwgnChannel.from_ebno(
                    cfg.ebno_db, code.rate, seed=rng
                )
                raw = channel.llrs(codeword)
                i8, scale = pack_llrs(raw)
                canonical = unpack_llrs(i8, scale)
                t0 = time.monotonic()
                await _send_one(client, canonical, cfg, stats, records)
                latencies.append(time.monotonic() - t0)
                await asyncio.sleep(spacing * (0.5 + rng.random() * 0.5))
    finally:
        await client.close()


async def _chaos_send_one(
    client: ResilientDecodeClient,
    llrs: np.ndarray,
    stats: _TenantStats,
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
) -> None:
    """One frame through the resilient client (retries live inside it)."""
    try:
        result = await client.decode(llrs)
    except QuotaExceededError:
        stats.quota_rejected += 1
        return
    except CircuitOpenError:
        # every endpoint's breaker open: shed locally, no wire traffic
        stats.dropped += 1
        return
    except ServeError:
        stats.failed += 1
        return
    stats.ok += 1
    if result.converged:
        records.append((llrs, result.bits, True))
    else:
        stats.unconverged += 1
        records.append((llrs, result.bits, False))


async def _chaos_connection_task(
    index: int,
    tenant: str,
    cfg: SoakConfig,
    endpoints: List[Tuple[str, int]],
    encoder: RuEncoder,
    code: QCLDPCCode,
    stats: _TenantStats,
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
    latencies: List[float],
    clients: List[ResilientDecodeClient],
    recorder: Optional[TraceRecorder] = None,
) -> None:
    """One resilient client living through the whole diurnal curve."""
    rng = np.random.default_rng(cfg.seed * 100003 + index)
    priority = int(cfg.tenants[tenant].get("priority", GOLD))
    client = ResilientDecodeClient(
        endpoints,
        tenant=tenant,
        priority=priority,
        recorder=recorder,
        retry=RetryPolicy(
            max_attempts=cfg.client_max_attempts,
            base_delay_s=0.05, max_delay_s=1.0,
        ),
        hedge_delay_s=cfg.hedge_delay_s if len(endpoints) > 1 else None,
        request_timeout_s=cfg.request_timeout_s,
        heartbeat_s=cfg.heartbeat_s,
        breaker_failures=4,
        breaker_reset_s=1.0,
        seed=cfg.seed * 7919 + index,
        tag=f"conn{index}",
    )
    clients.append(client)  # stats outlive the connection
    try:
        await asyncio.sleep((index % 97) / 97 * 0.25)
        for _phase, load, duration in cfg.phases:
            frames = int(round(cfg.peak_frames_per_conn * load))
            if frames == 0:
                await asyncio.sleep(duration)
                continue
            spacing = duration / frames
            for _ in range(frames):
                message = rng.integers(0, 2, encoder.k).astype(np.uint8)
                codeword = encoder.encode(message)
                channel = AwgnChannel.from_ebno(
                    cfg.ebno_db, code.rate, seed=rng
                )
                raw = channel.llrs(codeword)
                i8, scale = pack_llrs(raw)
                canonical = unpack_llrs(i8, scale)
                t0 = time.monotonic()
                await _chaos_send_one(client, canonical, stats, records)
                latencies.append(time.monotonic() - t0)
                await asyncio.sleep(spacing * (0.5 + rng.random() * 0.5))
    finally:
        await client.close()


def _phase_offset(cfg: SoakConfig, index: int, fraction: float) -> float:
    """Seconds into the run at ``fraction`` of phase ``index``."""
    phases = cfg.phases
    if not phases:
        return 0.0
    index = max(0, min(index, len(phases) - 1))
    before = sum(d for _n, _l, d in phases[:index])
    return before + phases[index][2] * fraction


async def _drive_chaos(
    cfg: SoakConfig,
    service: DecodeService,
    gateways: List[DecodeGateway],
    chaos_cfgs: List[ChaosConfig],
    scaler: Autoscaler,
    encoder: RuEncoder,
    code: QCLDPCCode,
    stats: Dict[str, _TenantStats],
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
    latencies: List[float],
    progress: Callable[[str], None],
    recorder: Optional[TraceRecorder] = None,
) -> Dict[str, Any]:
    """The chaos topology: clients -> chaos proxies -> gateway replicas.

    Only proxy 0 injects corruption/truncation/resets (see the config
    docstring); during the peak it is additionally partitioned for
    ``partition_s`` seconds, and in the final phase gateway replica N-1
    is killed without drain.  The resilient clients must ride all of it
    out with zero silent corruption and bounded retry amplification.
    """
    for gateway in gateways:
        await gateway.start()
    proxies = [
        ChaosProxy(gw.host, gw.port, chaos_cfg)
        for gw, chaos_cfg in zip(gateways, chaos_cfgs)
    ]
    for proxy in proxies:
        await proxy.start()
    endpoints = [proxy.address for proxy in proxies]
    progress(
        "chaos topology up: "
        + ", ".join(
            f"proxy {p.address[1]} -> gateway {g.address[1]}"
            for p, g in zip(proxies, gateways)
        )
    )
    scaler.start()
    crash_info: Dict[str, Any] = {"injected": False, "shard": None}
    chaos_info: Dict[str, Any] = {
        "partitioned": False, "gateway_killed": False,
    }

    async def _crash() -> None:
        await asyncio.sleep(_crash_at(cfg))
        try:
            shard = service.inject_worker_crash()
        except ServeError:
            return
        crash_info["injected"] = True
        crash_info["shard"] = shard
        progress(f"injected worker crash on shard {shard!r}")

    async def _partition() -> None:
        peak_idx = max(
            range(len(cfg.phases)), key=lambda i: cfg.phases[i][1]
        )
        await asyncio.sleep(_phase_offset(cfg, peak_idx, 0.25))
        proxies[0].partition()
        chaos_info["partitioned"] = True
        progress(f"partitioned proxy 0 for {cfg.partition_s}s (mid-peak)")
        await asyncio.sleep(cfg.partition_s)
        proxies[0].heal()
        progress("healed proxy 0")

    async def _kill_gateway() -> None:
        await asyncio.sleep(_phase_offset(cfg, len(cfg.phases) - 1, 0.25))
        victim = gateways[-1]
        await victim.close(drain=False)
        chaos_info["gateway_killed"] = True
        progress(f"killed gateway replica on port {victim.address[1]}")

    fault_tasks = [asyncio.ensure_future(_partition())]
    if cfg.inject_crash:
        fault_tasks.append(asyncio.ensure_future(_crash()))
    if cfg.kill_gateway and len(gateways) > 1:
        fault_tasks.append(asyncio.ensure_future(_kill_gateway()))

    assignment = _assign_tenants(cfg)
    clients: List[ResilientDecodeClient] = []
    t_start = time.monotonic()
    tasks = [
        asyncio.ensure_future(
            _chaos_connection_task(
                i, tenant, cfg, endpoints, encoder, code,
                stats[tenant], records, latencies, clients,
                recorder=recorder,
            )
        )
        for i, tenant in enumerate(assignment)
    ]
    await asyncio.gather(*tasks)
    traffic_s = time.monotonic() - t_start
    progress(
        f"chaos traffic done in {traffic_s:.1f}s "
        f"({sum(s.ok for s in stats.values())} frames decoded)"
    )
    for task in fault_tasks:
        task.cancel()
    await asyncio.gather(*fault_tasks, return_exceptions=True)
    deadline = time.monotonic() + cfg.shrink_wait_s
    while scaler.count("down") == 0 and time.monotonic() < deadline:
        await asyncio.sleep(0.2)
    for proxy in proxies:
        await proxy.close()
    for gateway in gateways:
        await gateway.close(drain=True)
    client_stats: Dict[str, int] = {
        "jobs": 0, "requests_sent": 0, "retries": 0, "hedges": 0,
        "reconnects": 0, "breaker_refusals": 0, "dead_peers": 0,
    }
    for client in clients:
        for key in client_stats:
            client_stats[key] += client.stats[key]
    return {
        "traffic_s": traffic_s,
        "crash": crash_info,
        "chaos": chaos_info,
        "clients": client_stats,
        "proxies": [proxy.injected() for proxy in proxies],
    }


async def _drive(
    cfg: SoakConfig,
    service: DecodeService,
    gateway: DecodeGateway,
    scaler: Autoscaler,
    encoder: RuEncoder,
    code: QCLDPCCode,
    stats: Dict[str, _TenantStats],
    records: List[Tuple[np.ndarray, np.ndarray, bool]],
    latencies: List[float],
    progress: Callable[[str], None],
    recorder: Optional[TraceRecorder] = None,
) -> Dict[str, Any]:
    host, port = await gateway.start()
    progress(f"gateway listening on {host}:{port}")
    scaler.start()
    crash_info: Dict[str, Any] = {"injected": False, "shard": None}

    async def _crash() -> None:
        await asyncio.sleep(_crash_at(cfg))
        try:
            shard = service.inject_worker_crash()
        except ServeError:
            return
        crash_info["injected"] = True
        crash_info["shard"] = shard
        progress(f"injected worker crash on shard {shard!r}")

    crash_task = (
        asyncio.ensure_future(_crash()) if cfg.inject_crash else None
    )
    assignment = _assign_tenants(cfg)
    t_start = time.monotonic()
    tasks = [
        asyncio.ensure_future(
            _connection_task(
                i, tenant, cfg, host, port, encoder, code,
                stats[tenant], records, latencies,
                recorder=recorder,
            )
        )
        for i, tenant in enumerate(assignment)
    ]
    await asyncio.gather(*tasks)
    traffic_s = time.monotonic() - t_start
    progress(
        f"traffic done in {traffic_s:.1f}s "
        f"({sum(s.ok for s in stats.values())} frames decoded)"
    )
    if crash_task is not None:
        crash_task.cancel()
        try:
            await crash_task
        except (asyncio.CancelledError, Exception):
            pass
    # idle tail: give the autoscaler the calm it needs to scale down
    deadline = time.monotonic() + cfg.shrink_wait_s
    while scaler.count("down") == 0 and time.monotonic() < deadline:
        await asyncio.sleep(0.2)
    await gateway.close(drain=True)
    return {"traffic_s": traffic_s, "crash": crash_info}


def _verify_trace_chains(recorder: TraceRecorder) -> Dict[str, Any]:
    """Audit the span chains of every successful request.

    Groups spans by their ``trace`` label and, for each trace whose
    client half reported success (``client.request``/``client.job``
    with ``ok=True``), demands the distributed story is complete: at
    least one ``gateway.request`` span joined the trace, and — unless
    the gateway answered from the dedup window — a ``job.decode`` span
    proves a shard actually decoded the frame.  A broken chain means
    trace propagation dropped context somewhere on the wire path.
    """
    by_trace: Dict[int, List[Any]] = {}
    for span in recorder.records():
        trace = span.label_dict.get("trace")
        if trace:
            by_trace.setdefault(int(trace), []).append(span)
    checked = 0
    broken: List[int] = []
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        client_ok = any(
            span.name in ("client.request", "client.job")
            and span.label_dict.get("ok")
            for span in group
        )
        if not client_ok:
            continue
        checked += 1
        names = {span.name for span in group}
        outcomes = {
            span.label_dict.get("outcome")
            for span in group if span.name == "gateway.request"
        }
        if not outcomes:
            broken.append(trace_id)
        elif "ok" in outcomes and "job.decode" not in names:
            broken.append(trace_id)
        elif "ok" not in outcomes and "dedup" not in outcomes:
            broken.append(trace_id)
    return {
        "traces": len(by_trace),
        "checked": checked,
        "broken": len(broken),
        "broken_ids": broken[:10],
        "ok": not broken,
    }


def run_net_soak(
    config: Optional[SoakConfig] = None,
    log_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    top_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one gateway soak; returns the full JSON-ready report.

    ``log_path`` tees the structured event log to a JSONL file (tail it
    live with ``repro logs --follow``); ``trace_path`` writes the
    Chrome trace; ``top_path`` writes the final ``repro top`` status
    document (the same JSON a live ``--obs-port`` endpoint would
    serve).  The report carries the standard provenance header
    (``bench: "net"``) plus throughput (``modes``), per-tenant
    admission stats, the autoscaler decision log, the final SLO report,
    and the decode-vs-reference verification outcome.  With
    ``config.trace`` the clients negotiate FLAG_TRACE and the report
    gains a ``trace_verify`` block proving every successful request
    left a complete client→gateway→decode span chain.
    """
    cfg = config if config is not None else SoakConfig()
    note = progress if progress is not None else (lambda _msg: None)
    code = cfg.build_code()
    encoder = RuEncoder(code)
    recorder = TraceRecorder()
    registry_metrics = ServeMetrics()
    log = EventLog(path=log_path, recorder=recorder, min_level="debug")
    monitor = default_serve_slos(
        p99_latency_s=cfg.slo_p99_s,
        crash_rate=cfg.slo_crash_rate,
        error_rate=cfg.slo_error_rate,
    )
    service = DecodeService(
        code,
        batch_size=cfg.batch,
        max_iterations=cfg.iterations,
        fixed=cfg.fixed,
        backend=cfg.backend,
        kernel=cfg.kernel,
        queue_capacity=cfg.queue_capacity,
        metrics=registry_metrics,
        recorder=recorder,
        log=log,
        slo=monitor,
    )
    net_metrics = NetMetrics(registry=registry_metrics.registry)
    admission = AdmissionController(
        {
            name: TenantPolicy(
                rate=float(spec.get("rate", 1e6)),
                burst=float(spec.get("burst", 1e6)),
                priority=int(spec.get("priority", GOLD)),
            )
            for name, spec in cfg.tenants.items()
        },
        max_iterations=cfg.iterations,
    )
    dedup = DedupWindow(ttl_s=cfg.dedup_ttl_s)
    if cfg.chaos:
        # replica gateways share the service, metrics, AND the dedup
        # window, so a hedge landing on replica 1 still joins replica
        # 0's in-flight decode
        gateways = [
            DecodeGateway(
                service, admission,
                metrics=net_metrics, log=log, recorder=recorder,
                dedup=dedup, heartbeat_interval_s=cfg.heartbeat_s,
            )
            for _ in range(max(1, cfg.replicas))
        ]
        gateway = gateways[0]
    else:
        gateway = DecodeGateway(
            service, admission,
            metrics=net_metrics, log=log, recorder=recorder,
        )
        gateways = [gateway]
    scaler = Autoscaler(
        service,
        min_shards=cfg.min_shards,
        max_shards=cfg.max_shards,
        interval_s=cfg.autoscale_interval_s,
        cooldown_s=cfg.cooldown_s,
        shrink_after=cfg.shrink_after,
        scale_up_fill=cfg.scale_up_fill,
        scale_down_fill=cfg.scale_down_fill,
        metrics=net_metrics,
        log=log,
    )
    stats = {name: _TenantStats() for name in cfg.tenants}
    records: List[Tuple[np.ndarray, np.ndarray, bool]] = []
    latencies: List[float] = []
    slo_report = None
    try:
        if cfg.chaos:
            hostile = ChaosConfig(
                seed=cfg.seed,
                corrupt_p=cfg.chaos_corrupt_p,
                truncate_p=cfg.chaos_truncate_p,
                reset_p=cfg.chaos_reset_p,
                latency_p=cfg.chaos_latency_p,
                latency_s=cfg.chaos_latency_s,
                partial_write_p=cfg.chaos_partial_p,
            )
            benign = ChaosConfig(
                seed=cfg.seed + 1,
                latency_p=cfg.chaos_latency_p,
                latency_s=cfg.chaos_latency_s,
                partial_write_p=cfg.chaos_partial_p,
            )
            chaos_cfgs = [hostile] + [benign] * (len(gateways) - 1)
            drive_out = asyncio.run(
                _drive_chaos(
                    cfg, service, gateways, chaos_cfgs, scaler, encoder,
                    code, stats, records, latencies, note,
                    recorder=recorder if cfg.trace else None,
                )
            )
        else:
            drive_out = asyncio.run(
                _drive(
                    cfg, service, gateway, scaler, encoder, code,
                    stats, records, latencies, note,
                    recorder=recorder if cfg.trace else None,
                )
            )
        scaler.stop()
        slo_report = service.health().slo
    finally:
        scaler.stop()
        service.close(wait=True)
        log.close()
    if trace_path:
        recorder.write_chrome_trace(trace_path)
    if top_path:
        from repro.net.console import build_status

        with open(top_path, "w") as handle:
            json.dump(
                build_status(gateway, autoscaler=scaler), handle,
                sort_keys=True,
            )

    # ------------------------------------------------------------------
    # verification: the wire path must agree with decode_many bit-exactly
    # ------------------------------------------------------------------
    converged_records = [r for r in records if r[2]]
    mismatches = 0
    if converged_records:
        llr_matrix = np.stack([r[0] for r in converged_records])
        reference = decode_many(
            code, llr_matrix,
            max_iterations=cfg.iterations, fixed=cfg.fixed,
        )
        for i, (_llrs, bits, _conv) in enumerate(converged_records):
            if not np.array_equal(reference.bits[i], bits):
                mismatches += 1

    total_ok = sum(s.ok for s in stats.values())
    traffic_s = drive_out["traffic_s"]
    fps = total_ok / traffic_s if traffic_s > 0 else 0.0
    lat = np.asarray(latencies, dtype=np.float64)
    snap = registry_metrics.snapshot()
    doc = bench_meta("net")
    doc.update(
        {
            "code": code.name,
            "n": code.n,
            "config": cfg.to_dict(),
            "modes": [
                {
                    "mode": (
                        ("net-chaos" if cfg.chaos else "net-gateway")
                        + ("-traced" if cfg.trace else "")
                    ),
                    "frames_per_s": fps,
                    "frames": total_ok,
                    "time_s": traffic_s,
                    "p50_latency_s": (
                        float(np.percentile(lat, 50)) if lat.size else 0.0
                    ),
                    "p99_latency_s": (
                        float(np.percentile(lat, 99)) if lat.size else 0.0
                    ),
                }
            ],
            "tenants": {name: s.to_dict() for name, s in stats.items()},
            "verify": {
                "decoded": total_ok,
                "checked": len(converged_records),
                "unconverged": sum(1 for r in records if not r[2]),
                "mismatches": mismatches,
            },
            "autoscaler": {
                "up": scaler.count("up"),
                "down": scaler.count("down"),
                "replace": scaler.count("replace"),
                "decisions": [dict(d) for d in scaler.decisions],
            },
            "crash": {
                "injected": bool(drive_out["crash"]["injected"]),
                "shard": drive_out["crash"]["shard"],
                "worker_crashes": snap.worker_crashes,
                "worker_restarts": snap.worker_restarts,
            },
            "trace_verify": (
                _verify_trace_chains(recorder) if cfg.trace else None
            ),
            "slo": slo_report.to_dict() if slo_report is not None else None,
            "serve": {
                "frames_in": snap.frames_in,
                "frames_out": snap.frames_out,
                "frames_errored": snap.frames_errored,
                "frames_rejected": snap.frames_rejected,
                "frames_shed": snap.frames_shed,
            },
        }
    )
    if cfg.chaos:
        client_stats = drive_out["clients"]
        jobs = client_stats["jobs"]
        doc["chaos"] = {
            "partitioned": bool(drive_out["chaos"]["partitioned"]),
            "gateway_killed": bool(drive_out["chaos"]["gateway_killed"]),
            "proxies": drive_out["proxies"],
            "crc_detected": int(
                net_metrics.registry.get("net_crc_corrupt_total").total()
            ),
            "dedup": dedup.to_dict(),
            "clients": client_stats,
            "amplification": (
                client_stats["requests_sent"] / jobs if jobs else 0.0
            ),
        }
    return doc
