"""TTL'd idempotency window: a retried job never decodes twice.

The resilient client stamps every logical decode job with a
client-generated idempotency key and reuses it verbatim on retries
(reconnects, hedges, CRC-rejected results).  The gateway keeps one
:class:`DedupWindow` — keyed by ``(tenant, key)`` — holding, for each
recently seen key, either the finished result or a future for the
in-flight decode:

* a retry arriving *after* the original finished is answered from the
  cached result (``hits``), re-framed under the retry's own job id;
* a retry arriving *while* the original is still decoding awaits the
  same future (``joined``) — one decode, two result frames;
* failures are never cached: the future resolves to ``None`` and every
  waiter falls through to a fresh decode, because "retry after error"
  must actually retry.

Entries expire after ``ttl_s`` (lazily, on access) and the window is
capped at ``max_entries`` with oldest-first eviction, so an abusive or
buggy client cannot grow gateway memory without bound.  The window is
event-loop-confined — no locks — and can be *shared* across several
gateway replicas in one process (the soak harness does this so a hedge
that lands on the second replica still joins the first replica's
decode).
"""

from __future__ import annotations

import asyncio
import collections
import time
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = ["DedupWindow"]


class DedupWindow(object):
    """Recently-seen idempotency keys with TTL + size-capped eviction."""

    def __init__(
        self,
        ttl_s: float = 30.0,
        max_entries: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._clock = clock
        # key -> (expiry, value); insertion order doubles as age order
        # because entries are re-inserted on every put
        self._entries: "collections.OrderedDict[Hashable, Tuple[float, Any]]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.joined = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _purge(self) -> None:
        now = self._clock()
        while self._entries:
            key, (expiry, _value) = next(iter(self._entries.items()))
            if expiry > now:
                break
            del self._entries[key]
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached value or in-flight future for ``key``, else None."""
        self._purge()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        return entry[1]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/replace ``key`` (restarts its TTL)."""
        self._entries.pop(key, None)
        self._entries[key] = (self._clock() + self.ttl_s, value)
        self._purge()

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` if present (used when a decode fails)."""
        self._entries.pop(key, None)

    async def resolve(self, value: Any) -> Optional[Any]:
        """Await an in-flight entry if it is a future; pass results through.

        Returns None when the original attempt failed (its future
        resolves to None) — the caller should decode fresh.
        """
        if isinstance(value, asyncio.Future):
            self.joined += 1
            return await asyncio.shield(value)
        self.hits += 1
        return value

    def to_dict(self) -> dict:
        """Counter snapshot for reports."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "joined": self.joined,
            "misses": self.misses,
        }
