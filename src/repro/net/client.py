"""Clients for the decode gateway: asyncio-native and blocking.

:class:`AsyncDecodeClient` multiplexes any number of outstanding
requests over one connection: every request gets a connection-local job
id, results stream back in completion order, and a background reader
task routes each RESULT/ERROR frame to the awaiting caller.  Server
errors re-raise as the *same* typed
:class:`~repro.errors.ServeError` member the gateway hit (quota
exhaustion as :class:`~repro.errors.QuotaExceededError`, backpressure
as :class:`~repro.errors.QueueFullError`, ...), so remote and
in-process callers handle failure identically.

Connections are HELLO-negotiated by default: the client proposes
protocol v2 plus its feature flags and adopts whatever the gateway
answers — CRC32C frame integrity, gateway heartbeats (the read loop
answers inbound PINGs), and idempotency keys on requests.  A gateway
that rejects or ignores HELLO gets a clean v1 reconnect, so old peers
keep working unchanged; pass ``negotiate=False`` to pin a connection
to v1 outright.

:class:`DecodeClient` is the blocking facade: it runs a private event
loop on a daemon thread and forwards calls, so synchronous code (and
``ThreadPoolExecutor`` load generators) can use the gateway without
touching asyncio.  Its :meth:`~DecodeClient.close` is idempotent, and
every blocking call fails fast with
:class:`~repro.errors.ClientClosedError` — instead of hanging on a
dead executor — once the client is closed or its loop thread has died.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    ClientClosedError,
    GatewayClosedError,
    NetProtocolError,
    ServeTimeoutError,
)
from repro.net.admission import GOLD
from repro.net.protocol import (
    CLIENT_FLAGS,
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_IDEMPOTENCY,
    FLAG_TRACE,
    NULL_TRACE,
    SUPPORTED_VERSIONS,
    V1,
    V2,
    VERSION,
    ErrorFrame,
    Hello,
    Ping,
    Pong,
    Result,
    TraceContext,
    encode_hello,
    encode_ping,
    encode_pong,
    encode_request,
    read_frame,
)
from repro.obs.trace import new_trace_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

__all__ = ["AsyncDecodeClient", "DecodeClient", "RemoteResult"]


@dataclass(frozen=True)
class RemoteResult(object):
    """One decoded frame as seen by a client.

    ``bits`` is the full hard-decision codeword; ``latency_s`` is the
    client-observed round trip (request write to result frame).
    """

    job_id: int
    bits: np.ndarray
    converged: bool
    iterations: int
    latency_s: float
    #: the distributed trace id the request travelled under (0 when the
    #: connection or client is untraced)
    trace_id: int = 0


async def _negotiate(
    host: str,
    port: int,
    max_frame_bytes: int,
    fallback_to_v1: bool = True,
    hello_timeout: float = 10.0,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, int, int]:
    """Open a connection and settle (version, flags) via HELLO.

    A peer that answers anything but HELLO — an ERROR frame, garbage,
    or an immediate close — predates negotiation; it gets a fresh
    connection pinned to v1 so no handshake bytes linger in its stream.

    With ``fallback_to_v1=False`` any handshake anomaly raises instead:
    on a wire hostile enough to mangle the HELLO exchange, silently
    degrading to v1 would drop the CRC protection exactly where it is
    needed most, so strict callers (the resilient client) fail the
    attempt and retry.
    """
    reader, writer = await asyncio.open_connection(host, port)
    version, flags = V1, 0
    reply = None
    try:
        writer.write(encode_hello(CLIENT_FLAGS, VERSION))
        await writer.drain()
        # deadline: a mangled length prefix would stall this read
        # forever — the peer is waiting for bytes that never come
        reply = await asyncio.wait_for(
            read_frame(reader, max_frame_bytes), hello_timeout
        )
    except (NetProtocolError, ConnectionError, OSError,
            asyncio.TimeoutError) as exc:
        if not fallback_to_v1:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            if isinstance(exc, asyncio.TimeoutError):
                raise ServeTimeoutError(
                    f"HELLO handshake not answered within {hello_timeout}s"
                ) from None
            raise
        reply = None
    if isinstance(reply, Hello):
        if reply.version in SUPPORTED_VERSIONS:
            version = reply.version
        flags = reply.flags & CLIENT_FLAGS
        if version < V2:
            flags = 0
    else:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
        if not fallback_to_v1:
            raise NetProtocolError(
                f"peer did not answer HELLO (got {type(reply).__name__}); "
                f"refusing the v1 fallback on a strict connection"
            )
        reader, writer = await asyncio.open_connection(host, port)
    return reader, writer, version, flags


class AsyncDecodeClient(object):
    """Asyncio client for one gateway connection.

    Build with :meth:`connect`; close with :meth:`close` (or use it as
    an async context manager).  Defaults (tenant, code id, priority)
    set at connect time apply per request unless overridden.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        version: int = V1,
        flags: int = 0,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self.code_id = code_id
        self.priority = priority
        self.max_frame_bytes = max_frame_bytes
        self.version = version
        self.flags = flags
        self.recorder = recorder
        self._job_seq = 0
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._send_lock = asyncio.Lock()
        self._closed = False
        self._conn_error: Optional[BaseException] = None
        self.pings_answered = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        negotiate: bool = True,
        fallback_to_v1: bool = True,
        hello_timeout: float = 10.0,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> "AsyncDecodeClient":
        """Open a gateway connection and start the result reader.

        With ``negotiate=True`` (default) the connection speaks the
        highest HELLO-agreed protocol version; ``negotiate=False`` pins
        it to v1 (no handshake bytes on the wire at all).
        ``fallback_to_v1=False`` turns a failed or garbled handshake
        into an error instead of a silent v1 downgrade.  ``recorder``
        enables client-side request spans (one ``client.request`` span
        per decode, carrying the distributed trace id).
        """
        if negotiate:
            reader, writer, version, flags = await _negotiate(
                host, port, max_frame_bytes,
                fallback_to_v1=fallback_to_v1, hello_timeout=hello_timeout,
            )
        else:
            reader, writer = await asyncio.open_connection(host, port)
            version, flags = V1, 0
        return cls(
            reader, writer,
            tenant=tenant, code_id=code_id, priority=priority,
            max_frame_bytes=max_frame_bytes, version=version, flags=flags,
            recorder=recorder,
        )

    async def __aenter__(self) -> "AsyncDecodeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests in flight on this connection."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran or the connection died."""
        return self._closed or self._conn_error is not None

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    async def decode(
        self,
        llrs: np.ndarray,
        code_id: Optional[str] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
        idempotency_key: str = "",
        trace: Optional[TraceContext] = None,
    ) -> RemoteResult:
        """Send one frame and await its result.

        ``idempotency_key`` marks retries of one logical job for the
        gateway's dedup window; it rides the wire only when the
        connection negotiated the capability (v1 connections silently
        drop it — the retry then simply decodes again, which is the v1
        status quo).  ``trace`` is an inherited trace context — the
        resilient client passes its per-attempt span here so the wire
        hop parents under it; with a recorder attached and no inherited
        context, each decode starts a fresh distributed trace.  Raises
        the typed error the gateway shipped, or
        :class:`~repro.errors.ServeTimeoutError` when ``timeout``
        seconds pass first, or
        :class:`~repro.errors.GatewayClosedError` when the connection
        drops with the request unanswered.
        """
        if self._closed:
            raise GatewayClosedError("client is closed")
        if self._conn_error is not None:
            raise GatewayClosedError(
                f"connection is down: {self._conn_error}"
            )
        self._job_seq += 1
        job_id = self._job_seq
        code = self.code_id if code_id is None else code_id
        rec = self.recorder
        recording = rec is not None and rec.enabled
        # establish the trace id (inherited or fresh) and this hop's span
        trace_id = 0
        parent_span: Optional[int] = None
        if trace is not None and trace.trace_id:
            trace_id, parent_span = trace.trace_id, trace.span_id
        elif recording:
            trace_id = new_trace_id()
        span_id = rec.allocate_span_id() if recording and trace_id else 0
        wire_trace: Optional[TraceContext] = None
        if self.flags & FLAG_TRACE:
            # a FLAG_TRACE connection always carries the field; the
            # parent the gateway adopts is our request span when we
            # record one, else the inherited span, else nothing
            if trace_id:
                wire_trace = TraceContext(
                    trace_id, span_id or (parent_span or 0)
                )
            else:
                wire_trace = NULL_TRACE
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending[job_id] = future
        t0 = time.monotonic()
        t0_pc = time.perf_counter()
        frame = encode_request(
            job_id,
            self.tenant,
            code,
            self.priority if priority is None else priority,
            llrs=np.asarray(llrs, dtype=np.float64),
            version=self.version,
            idempotency_key=(
                idempotency_key if self.flags & FLAG_IDEMPOTENCY else ""
            ),
            trace=wire_trace,
        )
        try:
            try:
                async with self._send_lock:
                    self._writer.write(frame)
                    await self._writer.drain()
            except (ConnectionError, RuntimeError, OSError) as exc:
                self._pending.pop(job_id, None)
                raise GatewayClosedError(f"send failed: {exc}") from None
            try:
                if timeout is not None:
                    result = await asyncio.wait_for(future, timeout)
                else:
                    result = await future
            except asyncio.TimeoutError:
                self._pending.pop(job_id, None)
                raise ServeTimeoutError(
                    f"no result for job {job_id} within {timeout}s"
                ) from None
        except BaseException as exc:
            if span_id:
                rec.complete(
                    "client.request", t0_pc, span_id=span_id,
                    parent_id=parent_span, trace=trace_id, job=job_id,
                    tenant=self.tenant, code_id=code, ok=False,
                    error=type(exc).__name__,
                )
            raise
        if isinstance(result, Result):
            if span_id:
                labels = dict(
                    trace=trace_id, job=job_id, tenant=self.tenant,
                    code_id=code, ok=True, converged=result.converged,
                    iterations=result.iterations,
                )
                if result.trace is not None:
                    labels["gateway_span"] = result.trace.span_id
                rec.complete(
                    "client.request", t0_pc, span_id=span_id,
                    parent_id=parent_span, **labels
                )
            return RemoteResult(
                job_id=job_id,
                bits=result.bits,
                converged=result.converged,
                iterations=result.iterations,
                latency_s=time.monotonic() - t0,
                trace_id=trace_id,
            )
        raise NetProtocolError(f"unexpected reply {type(result).__name__}")

    async def ping(self, timeout: Optional[float] = 5.0) -> float:
        """Round-trip a PING; returns the RTT in seconds."""
        if self._closed:
            raise GatewayClosedError("client is closed")
        self._job_seq += 1
        job_id = self._job_seq
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending[job_id] = future
        t0 = time.monotonic()
        async with self._send_lock:
            self._writer.write(encode_ping(job_id, version=self.version))
            await self._writer.drain()
        try:
            await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(job_id, None)
            raise ServeTimeoutError(f"no pong within {timeout}s") from None
        return time.monotonic() - t0

    async def close(self) -> None:
        """Close the connection; unanswered requests fail fast."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        self._fail_pending(GatewayClosedError("client closed"))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(
                    self._reader, self.max_frame_bytes,
                    trace=bool(self.flags & FLAG_TRACE),
                )
                if frame is None:
                    self._conn_error = GatewayClosedError(
                        "gateway closed the connection"
                    )
                    break
                if isinstance(frame, (Result, Pong)):
                    future = self._pending.pop(frame.job_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif isinstance(frame, Ping):
                    # gateway heartbeat: answer so it knows we are alive
                    try:
                        async with self._send_lock:
                            self._writer.write(
                                encode_pong(frame.job_id,
                                            version=self.version)
                            )
                            await self._writer.drain()
                        self.pings_answered += 1
                    except (ConnectionError, RuntimeError, OSError):
                        pass
                elif isinstance(frame, ErrorFrame):
                    exc = frame.to_exception()
                    if frame.job_id == 0:
                        # connection-scoped error: poisons every request
                        self._conn_error = exc
                        break
                    future = self._pending.pop(frame.job_id, None)
                    if future is not None and not future.done():
                        future.set_exception(exc)
                # anything else (a stray Request/Hello) is ignored
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._conn_error = exc
        finally:
            error = self._conn_error or GatewayClosedError(
                "connection reader exited"
            )
            if not isinstance(error, Exception):
                error = GatewayClosedError(str(error))
            self._fail_pending(error)

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                if not isinstance(exc, GatewayClosedError):
                    exc = GatewayClosedError(str(exc))
                future.set_exception(exc)


class DecodeClient(object):
    """Blocking gateway client (private event loop on a daemon thread).

    Usable as a context manager::

        with DecodeClient(host, port, tenant="gold") as client:
            result = client.decode(llrs)

    Lifecycle: :meth:`close` is idempotent, and once the client is
    closed — or its private loop thread has died for any reason — every
    blocking call raises :class:`~repro.errors.ClientClosedError`
    immediately rather than queueing work for an executor that will
    never run it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        connect_timeout: float = 10.0,
        negotiate: bool = True,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"decode-client-{host}:{port}",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client: AsyncDecodeClient = self._call(
                AsyncDecodeClient.connect(
                    host, port,
                    tenant=tenant, code_id=code_id, priority=priority,
                    negotiate=negotiate, recorder=recorder,
                ),
                timeout=connect_timeout,
            )
        except BaseException:
            self._stop_loop()
            raise

    @property
    def version(self) -> int:
        """The negotiated protocol version of the connection."""
        return self._client.version

    @property
    def flags(self) -> int:
        """The negotiated feature flags of the connection."""
        return self._client.flags

    def _call(self, coro, timeout: Optional[float] = None):
        if (
            self._closed
            or self._loop.is_closed()
            or not self._thread.is_alive()
        ):
            coro.close()  # suppress the never-awaited warning
            raise ClientClosedError(
                "DecodeClient is closed (or its event-loop thread died); "
                "open a new client"
            )
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except asyncio.TimeoutError:
            future.cancel()
            raise ServeTimeoutError(
                f"gateway call did not finish within {timeout}s"
            ) from None

    def decode(
        self,
        llrs: np.ndarray,
        code_id: Optional[str] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
        idempotency_key: str = "",
    ) -> RemoteResult:
        """Blocking :meth:`AsyncDecodeClient.decode`."""
        slack = None if timeout is None else timeout + 5.0
        return self._call(
            self._client.decode(
                llrs, code_id=code_id, priority=priority, timeout=timeout,
                idempotency_key=idempotency_key,
            ),
            timeout=slack,
        )

    def ping(self, timeout: float = 5.0) -> float:
        """Blocking :meth:`AsyncDecodeClient.ping`."""
        return self._call(self._client.ping(timeout), timeout=timeout + 5.0)

    def close(self) -> None:
        """Close the connection and stop the private loop.

        Idempotent, and never hangs: when the loop thread has already
        died the asyncio-side close is skipped (there is nobody to run
        it) and only the local teardown happens.
        """
        if self._closed:
            return
        self._closed = True
        if self._thread.is_alive() and not self._loop.is_closed():
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self._client.close(), self._loop
                )
                future.result(10.0)
            except Exception:
                pass
        self._stop_loop()

    def _stop_loop(self) -> None:
        if self._thread.is_alive() and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        self._thread.join(timeout=10.0)
        if not self._thread.is_alive() and not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "DecodeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
