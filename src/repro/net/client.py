"""Clients for the decode gateway: asyncio-native and blocking.

:class:`AsyncDecodeClient` multiplexes any number of outstanding
requests over one connection: every request gets a connection-local job
id, results stream back in completion order, and a background reader
task routes each RESULT/ERROR frame to the awaiting caller.  Server
errors re-raise as the *same* typed
:class:`~repro.errors.ServeError` member the gateway hit (quota
exhaustion as :class:`~repro.errors.QuotaExceededError`, backpressure
as :class:`~repro.errors.QueueFullError`, ...), so remote and
in-process callers handle failure identically.

:class:`DecodeClient` is the blocking facade: it runs a private event
loop on a daemon thread and forwards calls, so synchronous code (and
``ThreadPoolExecutor`` load generators) can use the gateway without
touching asyncio.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import GatewayClosedError, NetProtocolError, ServeTimeoutError
from repro.net.admission import GOLD
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ErrorFrame,
    Pong,
    Result,
    encode_ping,
    encode_request,
    read_frame,
)

__all__ = ["AsyncDecodeClient", "DecodeClient", "RemoteResult"]


@dataclass(frozen=True)
class RemoteResult(object):
    """One decoded frame as seen by a client.

    ``bits`` is the full hard-decision codeword; ``latency_s`` is the
    client-observed round trip (request write to result frame).
    """

    job_id: int
    bits: np.ndarray
    converged: bool
    iterations: int
    latency_s: float


class AsyncDecodeClient(object):
    """Asyncio client for one gateway connection.

    Build with :meth:`connect`; close with :meth:`close` (or use it as
    an async context manager).  Defaults (tenant, code id, priority)
    set at connect time apply per request unless overridden.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self.code_id = code_id
        self.priority = priority
        self.max_frame_bytes = max_frame_bytes
        self._job_seq = 0
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._send_lock = asyncio.Lock()
        self._closed = False
        self._conn_error: Optional[BaseException] = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "AsyncDecodeClient":
        """Open a gateway connection and start the result reader."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(
            reader, writer,
            tenant=tenant, code_id=code_id, priority=priority,
            max_frame_bytes=max_frame_bytes,
        )

    async def __aenter__(self) -> "AsyncDecodeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests in flight on this connection."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    async def decode(
        self,
        llrs: np.ndarray,
        code_id: Optional[str] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> RemoteResult:
        """Send one frame and await its result.

        Raises the typed error the gateway shipped, or
        :class:`~repro.errors.ServeTimeoutError` when ``timeout``
        seconds pass first, or
        :class:`~repro.errors.GatewayClosedError` when the connection
        drops with the request unanswered.
        """
        if self._closed:
            raise GatewayClosedError("client is closed")
        if self._conn_error is not None:
            raise GatewayClosedError(
                f"connection is down: {self._conn_error}"
            )
        self._job_seq += 1
        job_id = self._job_seq
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending[job_id] = future
        t0 = time.monotonic()
        frame = encode_request(
            job_id,
            self.tenant,
            self.code_id if code_id is None else code_id,
            self.priority if priority is None else priority,
            llrs=np.asarray(llrs, dtype=np.float64),
        )
        try:
            async with self._send_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._pending.pop(job_id, None)
            raise GatewayClosedError(f"send failed: {exc}") from None
        try:
            if timeout is not None:
                result = await asyncio.wait_for(future, timeout)
            else:
                result = await future
        except asyncio.TimeoutError:
            self._pending.pop(job_id, None)
            raise ServeTimeoutError(
                f"no result for job {job_id} within {timeout}s"
            ) from None
        if isinstance(result, Result):
            return RemoteResult(
                job_id=job_id,
                bits=result.bits,
                converged=result.converged,
                iterations=result.iterations,
                latency_s=time.monotonic() - t0,
            )
        raise NetProtocolError(f"unexpected reply {type(result).__name__}")

    async def ping(self, timeout: Optional[float] = 5.0) -> float:
        """Round-trip a PING; returns the RTT in seconds."""
        if self._closed:
            raise GatewayClosedError("client is closed")
        self._job_seq += 1
        job_id = self._job_seq
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending[job_id] = future
        t0 = time.monotonic()
        async with self._send_lock:
            self._writer.write(encode_ping(job_id))
            await self._writer.drain()
        try:
            await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(job_id, None)
            raise ServeTimeoutError(f"no pong within {timeout}s") from None
        return time.monotonic() - t0

    async def close(self) -> None:
        """Close the connection; unanswered requests fail fast."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        self._fail_pending(GatewayClosedError("client closed"))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader, self.max_frame_bytes)
                if frame is None:
                    self._conn_error = GatewayClosedError(
                        "gateway closed the connection"
                    )
                    break
                if isinstance(frame, (Result, Pong)):
                    future = self._pending.pop(frame.job_id, None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif isinstance(frame, ErrorFrame):
                    exc = frame.to_exception()
                    if frame.job_id == 0:
                        # connection-scoped error: poisons every request
                        self._conn_error = exc
                        break
                    future = self._pending.pop(frame.job_id, None)
                    if future is not None and not future.done():
                        future.set_exception(exc)
                # anything else (a stray Request/Ping) is ignored
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._conn_error = exc
        finally:
            error = self._conn_error or GatewayClosedError(
                "connection reader exited"
            )
            if not isinstance(error, Exception):
                error = GatewayClosedError(str(error))
            self._fail_pending(error)

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                if not isinstance(exc, GatewayClosedError):
                    exc = GatewayClosedError(str(exc))
                future.set_exception(exc)


class DecodeClient(object):
    """Blocking gateway client (private event loop on a daemon thread).

    Usable as a context manager::

        with DecodeClient(host, port, tenant="gold") as client:
            result = client.decode(llrs)
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        code_id: str = "",
        priority: int = GOLD,
        connect_timeout: float = 10.0,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"decode-client-{host}:{port}",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client: AsyncDecodeClient = self._call(
                AsyncDecodeClient.connect(
                    host, port,
                    tenant=tenant, code_id=code_id, priority=priority,
                ),
                timeout=connect_timeout,
            )
        except BaseException:
            self._stop_loop()
            raise

    def _call(self, coro, timeout: Optional[float] = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except asyncio.TimeoutError:
            future.cancel()
            raise ServeTimeoutError(
                f"gateway call did not finish within {timeout}s"
            ) from None

    def decode(
        self,
        llrs: np.ndarray,
        code_id: Optional[str] = None,
        priority: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> RemoteResult:
        """Blocking :meth:`AsyncDecodeClient.decode`."""
        slack = None if timeout is None else timeout + 5.0
        return self._call(
            self._client.decode(
                llrs, code_id=code_id, priority=priority, timeout=timeout
            ),
            timeout=slack,
        )

    def ping(self, timeout: float = 5.0) -> float:
        """Blocking :meth:`AsyncDecodeClient.ping`."""
        return self._call(self._client.ping(timeout), timeout=timeout + 5.0)

    def close(self) -> None:
        """Close the connection and stop the private loop (idempotent)."""
        if self._loop.is_closed():
            return
        try:
            self._call(self._client.close(), timeout=10.0)
        except Exception:
            pass
        self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "DecodeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
