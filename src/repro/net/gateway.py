"""Asyncio TCP gateway bridging framed clients onto a decode service.

:class:`DecodeGateway` is the network front door of the serving stack —
the router layer of Condo & Masera's NoC-based decoder recast in
asyncio: many concurrent connections multiplex decode requests onto the
heterogeneous shard pool of a
:class:`~repro.serve.pool.DecodeService`.

Per connection, frames are read off the stream and each REQUEST becomes
an independent task, so results *stream back in completion order*, not
request order (the job id in every frame is the correlation key).  The
bridge from asyncio to the thread-world service is
``asyncio.wrap_future`` over the ``concurrent.futures.Future`` that
``DecodeService.submit`` returns — the event loop never blocks on a
decode.

Admission runs before submission: the
:class:`~repro.net.admission.AdmissionController` meters the tenant's
token bucket and converts its priority class into an iteration budget
(fed to ``submit(iteration_budget=...)``), so quota exhaustion and
degradation both happen at the door.  Every failure — protocol, quota,
backpressure, shard death — is one typed ``ServeError`` member, shipped
as an ERROR frame and re-raised as the same type client-side.

Wire-level resilience (protocol v2, HELLO-negotiated per connection;
v1 peers keep working unchanged):

* **Frame integrity** — v2 frames carry a CRC32C trailer; a corrupt
  frame raises :class:`~repro.errors.FrameCorruptionError`, is counted
  (``net_crc_corrupt_total``), answered with a connection-scoped ERROR,
  and the connection is closed so both sides resync from a clean slate.
* **Idempotent retries** — v2 REQUESTs may carry a client-generated
  idempotency key; the gateway's :class:`~repro.net.dedup.DedupWindow`
  replays finished results and *joins* in-flight decodes, so a retried
  or hedged job never decodes twice within the TTL window.
* **Dead-peer detection** — when ``heartbeat_interval_s`` is set and the
  peer negotiated the heartbeat flag, an idle connection is PINGed on
  that cadence; ``heartbeat_misses`` unanswered pings close it
  (``net_dead_peer_total``), so half-open TCP sessions cannot pin
  gateway state forever.

Graceful drain: :meth:`close` stops the listener, lets in-flight
requests finish streaming their results (bounded by
``drain_timeout_s``), refuses new requests with
:class:`~repro.errors.GatewayClosedError`, then closes connections.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.errors import (
    FrameCorruptionError,
    GatewayClosedError,
    NetProtocolError,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
)
from repro.net.admission import AdmissionController
from repro.net.dedup import DedupWindow
from repro.net.metrics import NetMetrics
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_CRC32C,
    FLAG_HEARTBEAT,
    FLAG_IDEMPOTENCY,
    FLAG_TRACE,
    NULL_TRACE,
    V1,
    V2,
    Hello,
    Ping,
    Pong,
    Request,
    TraceContext,
    decode_frame,
    encode_error,
    encode_hello,
    encode_ping,
    encode_pong,
    encode_result,
    read_raw,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.obs.trace import TraceRecorder
    from repro.serve.pool import DecodeService

__all__ = ["DecodeGateway", "GATEWAY_FLAGS"]

#: Capabilities this gateway is willing to negotiate in a HELLO reply.
GATEWAY_FLAGS = FLAG_CRC32C | FLAG_HEARTBEAT | FLAG_IDEMPOTENCY | FLAG_TRACE

#: Severity of each gateway lifecycle event in the structured log.
_EVENT_LEVELS = {
    "net.listen": "info",
    "net.drain": "info",
    "net.closed": "info",
    "net.conn_open": "debug",
    "net.conn_close": "debug",
    "net.hello": "debug",
    "net.request": "debug",
    "net.result": "debug",
    "net.dedup": "debug",
    "net.reject": "warning",
    "net.error": "warning",
    "net.protocol_error": "warning",
    "net.crc_corrupt": "warning",
    "net.dead_peer": "warning",
}

#: Rejection reasons, keyed by the typed error that caused them.
_REJECT_REASONS = {
    QuotaExceededError: "quota",
    QueueFullError: "backpressure",
    GatewayClosedError: "drain",
    ServiceClosedError: "drain",
}


class _ConnState(object):
    """Per-connection negotiation + liveness state."""

    __slots__ = ("writer", "lock", "peer", "version", "flags",
                 "last_rx", "missed_pings", "ping_seq", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.peer = str(writer.get_extra_info("peername"))
        self.version = V1
        self.flags = 0
        self.last_rx = time.monotonic()
        self.missed_pings = 0
        self.ping_seq = 0
        self.closed = False

    def saw_frame(self) -> None:
        self.last_rx = time.monotonic()
        self.missed_pings = 0


class DecodeGateway(object):
    """Framed TCP server in front of a :class:`DecodeService`.

    Parameters
    ----------
    service:
        The (already running) decode service to bridge onto.  The
        gateway never owns it — lifecycle stays with the caller so one
        service can sit behind several listeners.
    admission:
        The tenant quota/priority gate consulted per request.
    host / port:
        Listen address; port 0 (default) lets the OS pick — read the
        bound address back from :attr:`address` after :meth:`start`.
    metrics:
        Optional :class:`NetMetrics`; pass one built on the service's
        registry so gateway and engine series share one snapshot/SLO
        evaluation.  A private one is created if absent.
    log / recorder:
        Optional structured :class:`~repro.obs.log.EventLog` and
        :class:`~repro.obs.trace.TraceRecorder` for lifecycle events.
    max_frame_bytes:
        Upper bound on accepted frame size (protocol abuse guard).
    drain_timeout_s:
        How long :meth:`close` waits for in-flight requests to finish
        before force-closing connections.
    dedup:
        Optional :class:`DedupWindow` for v2 idempotency keys; pass one
        shared instance to several replica gateways so hedged requests
        dedup across all of them.  A private window is created when
        None; pass ``dedup_ttl_s <= 0`` to disable entirely.
    dedup_ttl_s:
        TTL of the private dedup window (ignored when ``dedup`` given).
    heartbeat_interval_s:
        PING cadence for idle v2 connections that negotiated the
        heartbeat flag; None (default) disables gateway-side pings.
    heartbeat_misses:
        Unanswered pings after which a peer is declared dead.
    """

    def __init__(
        self,
        service: "DecodeService",
        admission: AdmissionController,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[NetMetrics] = None,
        log: "Optional[EventLog]" = None,
        recorder: "Optional[TraceRecorder]" = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        drain_timeout_s: float = 10.0,
        dedup: Optional[DedupWindow] = None,
        dedup_ttl_s: float = 30.0,
        heartbeat_interval_s: Optional[float] = None,
        heartbeat_misses: int = 3,
    ) -> None:
        self.service = service
        self.admission = admission
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else NetMetrics()
        self.log = log
        self.recorder = recorder
        self.max_frame_bytes = max_frame_bytes
        self.drain_timeout_s = drain_timeout_s
        if dedup is not None:
            self.dedup: Optional[DedupWindow] = dedup
        elif dedup_ttl_s > 0:
            self.dedup = DedupWindow(ttl_s=dedup_ttl_s)
        else:
            self.dedup = None
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_misses = heartbeat_misses
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._closed = False
        self._writers: Set[asyncio.StreamWriter] = set()
        self._inflight: Set["asyncio.Task"] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._heartbeats: Set["asyncio.Task"] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._event("net.listen", host=self.host, port=self.port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final once :meth:`start` returned)."""
        return self.host, self.port

    @property
    def draining(self) -> bool:
        """True once :meth:`close` has begun refusing new requests."""
        return self._draining

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has completed."""
        return self._closed

    async def close(self, drain: bool = True) -> None:
        """Stop the listener and shut connections down.

        With ``drain=True`` (default) in-flight requests finish and
        stream their results first (bounded by ``drain_timeout_s``);
        with ``drain=False`` they are cancelled and their clients see
        the connection drop.  Idempotent.
        """
        if self._closed:
            return
        self._draining = True
        self._event("net.drain", inflight=len(self._inflight), drain=drain)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._heartbeats):
            task.cancel()
        if drain:
            if self._inflight:
                await asyncio.wait(
                    list(self._inflight), timeout=self.drain_timeout_s
                )
        else:
            for task in list(self._inflight):
                task.cancel()
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.drain_timeout_s
            )
        self._closed = True
        self._event("net.closed")

    async def __aenter__(self) -> "DecodeGateway":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        self.metrics.conn_opened()
        conn = _ConnState(writer)
        self._event("net.conn_open", peer=conn.peer)
        conn_tasks: Set["asyncio.Task"] = set()
        heartbeat_task: Optional["asyncio.Task"] = None
        try:
            while True:
                try:
                    payload = await read_raw(reader, self.max_frame_bytes)
                except NetProtocolError as exc:
                    await self._conn_fatal(conn, exc)
                    break
                if payload is None:
                    break  # client closed cleanly
                self.metrics.bytes_in(len(payload) + 4)
                try:
                    frame = decode_frame(
                        payload, trace=bool(conn.flags & FLAG_TRACE)
                    )
                except NetProtocolError as exc:
                    await self._conn_fatal(conn, exc)
                    break
                conn.saw_frame()
                if isinstance(frame, Hello):
                    heartbeat_task = self._negotiate(conn, frame,
                                                     heartbeat_task)
                    continue
                if isinstance(frame, Ping):
                    await self._send_quiet(
                        conn, encode_pong(frame.job_id, version=conn.version)
                    )
                    continue
                if isinstance(frame, Pong):
                    continue  # liveness bookkeeping happened in saw_frame
                if not isinstance(frame, Request):
                    exc = NetProtocolError(
                        f"clients may not send {type(frame).__name__} frames"
                    )
                    self._event("net.protocol_error", peer=conn.peer,
                                error=str(exc))
                    await self._send_quiet(
                        conn,
                        encode_error(frame.job_id, exc, version=conn.version),
                    )
                    break
                req_task = asyncio.ensure_future(
                    self._serve_request(frame, conn)
                )
                conn_tasks.add(req_task)
                self._inflight.add(req_task)
                req_task.add_done_callback(conn_tasks.discard)
                req_task.add_done_callback(self._inflight.discard)
        finally:
            conn.closed = True
            if heartbeat_task is not None:
                heartbeat_task.cancel()
                self._heartbeats.discard(heartbeat_task)
            if conn_tasks:
                # let this connection's tail of results flush before the
                # socket goes away (drain-on-close already bounded these)
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self.metrics.conn_closed()
            self._event("net.conn_close", peer=conn.peer)
            if task is not None:
                self._conn_tasks.discard(task)

    def _negotiate(
        self,
        conn: _ConnState,
        hello: Hello,
        heartbeat_task: Optional["asyncio.Task"],
    ) -> Optional["asyncio.Task"]:
        """Settle version/flags for this connection and answer HELLO."""
        conn.version = V2 if hello.version >= V2 else V1
        conn.flags = hello.flags & GATEWAY_FLAGS
        if conn.version < V2:
            conn.flags = 0  # every capability needs the v2 framing
        self.metrics.hello(conn.version)
        self._event("net.hello", peer=conn.peer, version=conn.version,
                    flags=conn.flags)
        reply = encode_hello(flags=conn.flags, version=conn.version,
                             job_id=hello.job_id)
        # fire-and-forget under the connection's write lock
        send = asyncio.ensure_future(self._send_quiet(conn, reply))
        send.add_done_callback(lambda _t: None)
        if (
            heartbeat_task is None
            and self.heartbeat_interval_s
            and conn.flags & FLAG_HEARTBEAT
        ):
            heartbeat_task = asyncio.ensure_future(self._heartbeat(conn))
            self._heartbeats.add(heartbeat_task)
            heartbeat_task.add_done_callback(self._heartbeats.discard)
        return heartbeat_task

    async def _heartbeat(self, conn: _ConnState) -> None:
        """PING an idle peer on a cadence; close it after missed pongs."""
        interval = float(self.heartbeat_interval_s or 0.0)
        try:
            while not conn.closed:
                await asyncio.sleep(interval)
                if conn.closed:
                    return
                if time.monotonic() - conn.last_rx <= interval:
                    continue  # traffic is liveness; no ping needed
                if conn.missed_pings >= self.heartbeat_misses:
                    self.metrics.dead_peer()
                    self._event("net.dead_peer", peer=conn.peer,
                                missed=conn.missed_pings)
                    conn.writer.close()
                    return
                conn.missed_pings += 1
                conn.ping_seq += 1
                await self._send_quiet(
                    conn, encode_ping(conn.ping_seq, version=conn.version)
                )
        except asyncio.CancelledError:
            raise

    async def _conn_fatal(
        self, conn: _ConnState, exc: NetProtocolError
    ) -> None:
        """Report a connection-scoped protocol failure (ERROR, job 0)."""
        if isinstance(exc, FrameCorruptionError):
            self.metrics.crc_corrupt()
            self._event("net.crc_corrupt", peer=conn.peer, error=str(exc))
        else:
            self._event("net.protocol_error", peer=conn.peer,
                        error=str(exc))
        await self._send_quiet(
            conn, encode_error(0, exc, version=conn.version)
        )

    async def _serve_request(self, req: Request, conn: _ConnState) -> None:
        """Admit, submit, await, and stream back one request.

        When the request carries a trace context (``FLAG_TRACE``
        connections with a tracing client), the gateway *adopts* it:
        one ``gateway.request`` span parented under the client's wire
        span, with ``gateway.dedup`` / ``gateway.queue_probe`` /
        ``gateway.admission`` / ``gateway.submit`` / ``gateway.respond``
        children, the waterfall split recorded as span attributes, and
        the same context threaded into ``DecodeService.submit`` so the
        pool's queue-wait/decode spans join the tree.  Spans use
        explicit parent ids rather than the thread-local stack because
        every request interleaves on one event-loop thread.
        """
        t0 = time.monotonic()
        t0_pc = time.perf_counter()
        tenant = req.tenant or "anonymous"
        code_key = req.code_id or None
        code_label = req.code_id or "default"
        rec = self.recorder
        req_trace_id = req.trace.trace_id if req.trace is not None else 0
        tracing = rec is not None and rec.enabled and bool(req_trace_id)
        serve_span = rec.allocate_span_id() if tracing else 0
        remote_parent = req.trace.span_id if tracing else 0
        reply_trace: Optional[TraceContext] = None
        if conn.flags & FLAG_TRACE:
            # echo the trace id (plus our span) so the client can join
            # the reply to its own tree even without a shared recorder
            reply_trace = (
                TraceContext(req_trace_id, serve_span)
                if req_trace_id else NULL_TRACE
            )

        def child(name: str, start_pc: float, **labels: object) -> None:
            if tracing:
                rec.complete(
                    name, start_pc, parent_id=serve_span,
                    trace=req_trace_id, **labels
                )

        def finish(outcome: str, **extra: object) -> None:
            if tracing:
                rec.complete(
                    "gateway.request", t0_pc, span_id=serve_span,
                    parent_id=remote_parent or None, trace=req_trace_id,
                    tenant=tenant, code_id=code_label, job=req.job_id,
                    outcome=outcome, **extra
                )

        self.metrics.request(tenant)
        self._event("net.request", tenant=tenant, job=req.job_id,
                    priority=req.priority)
        dedup_key = None
        owner: "Optional[asyncio.Future]" = None
        if (
            self.dedup is not None
            and req.idempotency_key
            and conn.flags & FLAG_IDEMPOTENCY
        ):
            dedup_key = (tenant, req.idempotency_key)
            t_dedup = time.perf_counter()
            entry = self.dedup.lookup(dedup_key)
            if entry is not None:
                outcome = (
                    "joined" if isinstance(entry, asyncio.Future) else "cached"
                )
                value = await self.dedup.resolve(entry)
                if value is not None:
                    child("gateway.dedup", t_dedup, outcome=outcome)
                    converged, iterations, bits = value
                    t_respond = time.perf_counter()
                    await self._send_quiet(
                        conn,
                        encode_result(req.job_id, converged, iterations,
                                      bits, version=conn.version,
                                      trace=reply_trace),
                    )
                    child("gateway.respond", t_respond)
                    total_s = time.monotonic() - t0
                    self.metrics.dedup_hit(outcome)
                    self.metrics.result(tenant, total_s)
                    self.metrics.phase(tenant, code_label, "total", total_s)
                    self._event("net.dedup", tenant=tenant, job=req.job_id,
                                outcome=outcome)
                    finish("dedup", dedup=outcome, total_s=round(total_s, 6))
                    return
                # the original attempt failed: fall through and decode
            child("gateway.dedup", t_dedup, outcome="miss")
            owner = asyncio.get_running_loop().create_future()
            self.dedup.put(dedup_key, owner)
        admission_s = queue_wait_s = decode_s = 0.0
        try:
            if self._draining:
                raise GatewayClosedError(
                    "gateway is draining; resubmit elsewhere"
                )
            t_probe = time.perf_counter()
            fill = self.service.queue_fill(code_key)
            child("gateway.queue_probe", t_probe, fill=round(fill, 4))
            t_admit = time.perf_counter()
            decision = self.admission.admit(tenant, fill, req.priority)
            admission_s = time.perf_counter() - t_probe
            child("gateway.admission", t_admit,
                  shed=decision.shed, budget=decision.iteration_budget)
            if decision.shed:
                self.metrics.shed(tenant)
            t_submit = time.perf_counter()
            future = self.service.submit(
                req.llrs(),
                code_key=code_key,
                timeout=0.0,
                iteration_budget=decision.iteration_budget,
                trace=(
                    TraceContext(req_trace_id, serve_span)
                    if tracing else None
                ),
            )
            done = await asyncio.wrap_future(future)
            child("gateway.submit", t_submit, job=req.job_id)
            job = done.job
            if job.dispatched_at is not None:
                queue_wait_s = max(0.0, job.dispatched_at - job.enqueued_at)
                decode_s = max(0.0, done.completed_at - job.dispatched_at)
            result = done.result
            value = (
                bool(result.converged), int(result.iterations), result.bits
            )
            if dedup_key is not None:
                self.dedup.put(dedup_key, value)
            if owner is not None and not owner.done():
                owner.set_result(value)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if dedup_key is not None:
                self.dedup.discard(dedup_key)
            await self._reply_error(req, tenant, conn, exc,
                                    trace=reply_trace)
            self.metrics.phase(tenant, code_label, "total",
                               time.monotonic() - t0)
            finish("error", error=type(exc).__name__)
            return
        finally:
            # failures are never cached: joiners of a future that never
            # produced a value decode fresh when they see None
            if owner is not None and not owner.done():
                owner.set_result(None)
        t_respond = time.perf_counter()
        await self._send_quiet(
            conn,
            encode_result(req.job_id, value[0], value[1], value[2],
                          version=conn.version, trace=reply_trace),
        )
        respond_s = time.perf_counter() - t_respond
        child("gateway.respond", t_respond)
        total_s = time.monotonic() - t0
        self.metrics.result(tenant, total_s)
        phase = self.metrics.phase
        phase(tenant, code_label, "total", total_s)
        phase(tenant, code_label, "admission", admission_s)
        phase(tenant, code_label, "queue_wait", queue_wait_s)
        phase(tenant, code_label, "decode", decode_s)
        phase(tenant, code_label, "respond", respond_s)
        self._event("net.result", tenant=tenant, job=req.job_id,
                    converged=value[0], iterations=value[1])
        finish(
            "ok", converged=value[0], iterations=value[1],
            admission_s=round(admission_s, 6),
            queue_wait_s=round(queue_wait_s, 6),
            decode_s=round(decode_s, 6),
            respond_s=round(respond_s, 6),
            total_s=round(total_s, 6),
        )

    async def _reply_error(
        self,
        req: Request,
        tenant: str,
        conn: _ConnState,
        exc: BaseException,
        trace: Optional[TraceContext] = None,
    ) -> None:
        reason = _REJECT_REASONS.get(type(exc))
        if reason is not None:
            self.metrics.rejected(tenant, reason)
            self._event("net.reject", tenant=tenant, job=req.job_id,
                        reason=reason, error=str(exc))
        else:
            self.metrics.error(tenant, type(exc).__name__)
            self._event("net.error", tenant=tenant, job=req.job_id,
                        kind=type(exc).__name__, error=str(exc))
        if not isinstance(exc, ServeError):
            exc = ServeError(f"{type(exc).__name__}: {exc}")
        await self._send_quiet(
            conn,
            encode_error(req.job_id, exc, version=conn.version, trace=trace),
        )

    async def _send_quiet(self, conn: _ConnState, data: bytes) -> None:
        """Write one frame; a torn connection is the client's problem."""
        try:
            async with conn.lock:
                conn.writer.write(data)
                await conn.writer.drain()
            self.metrics.bytes_out(len(data))
        except (ConnectionError, RuntimeError, OSError):
            pass

    def _event(self, name: str, **fields: object) -> None:
        if self.recorder is not None:
            self.recorder.event(name, **fields)
        if self.log is not None:
            self.log.log(_EVENT_LEVELS.get(name, "info"), name, **fields)
