"""Asyncio TCP gateway bridging framed clients onto a decode service.

:class:`DecodeGateway` is the network front door of the serving stack —
the router layer of Condo & Masera's NoC-based decoder recast in
asyncio: many concurrent connections multiplex decode requests onto the
heterogeneous shard pool of a
:class:`~repro.serve.pool.DecodeService`.

Per connection, frames are read off the stream and each REQUEST becomes
an independent task, so results *stream back in completion order*, not
request order (the job id in every frame is the correlation key).  The
bridge from asyncio to the thread-world service is
``asyncio.wrap_future`` over the ``concurrent.futures.Future`` that
``DecodeService.submit`` returns — the event loop never blocks on a
decode.

Admission runs before submission: the
:class:`~repro.net.admission.AdmissionController` meters the tenant's
token bucket and converts its priority class into an iteration budget
(fed to ``submit(iteration_budget=...)``), so quota exhaustion and
degradation both happen at the door.  Every failure — protocol, quota,
backpressure, shard death — is one typed ``ServeError`` member, shipped
as an ERROR frame and re-raised as the same type client-side.

Graceful drain: :meth:`close` stops the listener, lets in-flight
requests finish streaming their results (bounded by
``drain_timeout_s``), refuses new requests with
:class:`~repro.errors.GatewayClosedError`, then closes connections.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.errors import (
    GatewayClosedError,
    NetProtocolError,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
)
from repro.net.admission import AdmissionController
from repro.net.metrics import NetMetrics
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    Ping,
    Request,
    decode_frame,
    encode_error,
    encode_pong,
    encode_result,
    read_raw,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import EventLog
    from repro.obs.trace import TraceRecorder
    from repro.serve.pool import DecodeService

__all__ = ["DecodeGateway"]

#: Severity of each gateway lifecycle event in the structured log.
_EVENT_LEVELS = {
    "net.listen": "info",
    "net.drain": "info",
    "net.closed": "info",
    "net.conn_open": "debug",
    "net.conn_close": "debug",
    "net.request": "debug",
    "net.result": "debug",
    "net.reject": "warning",
    "net.error": "warning",
    "net.protocol_error": "warning",
}

#: Rejection reasons, keyed by the typed error that caused them.
_REJECT_REASONS = {
    QuotaExceededError: "quota",
    QueueFullError: "backpressure",
    GatewayClosedError: "drain",
    ServiceClosedError: "drain",
}


class DecodeGateway(object):
    """Framed TCP server in front of a :class:`DecodeService`.

    Parameters
    ----------
    service:
        The (already running) decode service to bridge onto.  The
        gateway never owns it — lifecycle stays with the caller so one
        service can sit behind several listeners.
    admission:
        The tenant quota/priority gate consulted per request.
    host / port:
        Listen address; port 0 (default) lets the OS pick — read the
        bound address back from :attr:`address` after :meth:`start`.
    metrics:
        Optional :class:`NetMetrics`; pass one built on the service's
        registry so gateway and engine series share one snapshot/SLO
        evaluation.  A private one is created if absent.
    log / recorder:
        Optional structured :class:`~repro.obs.log.EventLog` and
        :class:`~repro.obs.trace.TraceRecorder` for lifecycle events.
    max_frame_bytes:
        Upper bound on accepted frame size (protocol abuse guard).
    drain_timeout_s:
        How long :meth:`close` waits for in-flight requests to finish
        before force-closing connections.
    """

    def __init__(
        self,
        service: "DecodeService",
        admission: AdmissionController,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[NetMetrics] = None,
        log: "Optional[EventLog]" = None,
        recorder: "Optional[TraceRecorder]" = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        drain_timeout_s: float = 10.0,
    ) -> None:
        self.service = service
        self.admission = admission
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else NetMetrics()
        self.log = log
        self.recorder = recorder
        self.max_frame_bytes = max_frame_bytes
        self.drain_timeout_s = drain_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._closed = False
        self._writers: Set[asyncio.StreamWriter] = set()
        self._inflight: Set["asyncio.Task"] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._event("net.listen", host=self.host, port=self.port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (final once :meth:`start` returned)."""
        return self.host, self.port

    @property
    def draining(self) -> bool:
        """True once :meth:`close` has begun refusing new requests."""
        return self._draining

    async def close(self, drain: bool = True) -> None:
        """Stop the listener and shut connections down.

        With ``drain=True`` (default) in-flight requests finish and
        stream their results first (bounded by ``drain_timeout_s``);
        with ``drain=False`` they are cancelled and their clients see
        the connection drop.  Idempotent.
        """
        if self._closed:
            return
        self._draining = True
        self._event("net.drain", inflight=len(self._inflight), drain=drain)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            if self._inflight:
                await asyncio.wait(
                    list(self._inflight), timeout=self.drain_timeout_s
                )
        else:
            for task in list(self._inflight):
                task.cancel()
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(
                list(self._conn_tasks), timeout=self.drain_timeout_s
            )
        self._closed = True
        self._event("net.closed")

    async def __aenter__(self) -> "DecodeGateway":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        self.metrics.conn_opened()
        peer = writer.get_extra_info("peername")
        self._event("net.conn_open", peer=str(peer))
        write_lock = asyncio.Lock()
        conn_tasks: Set["asyncio.Task"] = set()
        try:
            while True:
                try:
                    payload = await read_raw(reader, self.max_frame_bytes)
                except NetProtocolError as exc:
                    self._event("net.protocol_error", peer=str(peer),
                                error=str(exc))
                    await self._send_quiet(
                        writer, write_lock, encode_error(0, exc)
                    )
                    break
                if payload is None:
                    break  # client closed cleanly
                self.metrics.bytes_in(len(payload) + 4)
                try:
                    frame = decode_frame(payload)
                except NetProtocolError as exc:
                    self._event("net.protocol_error", peer=str(peer),
                                error=str(exc))
                    await self._send_quiet(
                        writer, write_lock, encode_error(0, exc)
                    )
                    break
                if isinstance(frame, Ping):
                    await self._send_quiet(
                        writer, write_lock, encode_pong(frame.job_id)
                    )
                    continue
                if not isinstance(frame, Request):
                    exc = NetProtocolError(
                        f"clients may not send {type(frame).__name__} frames"
                    )
                    self._event("net.protocol_error", peer=str(peer),
                                error=str(exc))
                    await self._send_quiet(
                        writer, write_lock, encode_error(frame.job_id, exc)
                    )
                    break
                req_task = asyncio.ensure_future(
                    self._serve_request(frame, writer, write_lock)
                )
                conn_tasks.add(req_task)
                self._inflight.add(req_task)
                req_task.add_done_callback(conn_tasks.discard)
                req_task.add_done_callback(self._inflight.discard)
        finally:
            if conn_tasks:
                # let this connection's tail of results flush before the
                # socket goes away (drain-on-close already bounded these)
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            self.metrics.conn_closed()
            self._event("net.conn_close", peer=str(peer))
            if task is not None:
                self._conn_tasks.discard(task)

    async def _serve_request(
        self,
        req: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Admit, submit, await, and stream back one request."""
        t0 = time.monotonic()
        tenant = req.tenant or "anonymous"
        code_key = req.code_id or None
        self.metrics.request(tenant)
        self._event("net.request", tenant=tenant, job=req.job_id,
                    priority=req.priority)
        try:
            if self._draining:
                raise GatewayClosedError("gateway is draining; resubmit elsewhere")
            fill = self.service.queue_fill(code_key)
            decision = self.admission.admit(tenant, fill, req.priority)
            if decision.shed:
                self.metrics.shed(tenant)
            future = self.service.submit(
                req.llrs(),
                code_key=code_key,
                timeout=0.0,
                iteration_budget=decision.iteration_budget,
            )
            done = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await self._reply_error(req, tenant, writer, write_lock, exc)
            return
        result = done.result
        await self._send_quiet(
            writer,
            write_lock,
            encode_result(
                req.job_id, bool(result.converged),
                int(result.iterations), result.bits,
            ),
        )
        self.metrics.result(tenant, time.monotonic() - t0)
        self._event("net.result", tenant=tenant, job=req.job_id,
                    converged=bool(result.converged),
                    iterations=int(result.iterations))

    async def _reply_error(
        self,
        req: Request,
        tenant: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        exc: BaseException,
    ) -> None:
        reason = _REJECT_REASONS.get(type(exc))
        if reason is not None:
            self.metrics.rejected(tenant, reason)
            self._event("net.reject", tenant=tenant, job=req.job_id,
                        reason=reason, error=str(exc))
        else:
            self.metrics.error(tenant, type(exc).__name__)
            self._event("net.error", tenant=tenant, job=req.job_id,
                        kind=type(exc).__name__, error=str(exc))
        if not isinstance(exc, ServeError):
            exc = ServeError(f"{type(exc).__name__}: {exc}")
        await self._send_quiet(
            writer, write_lock, encode_error(req.job_id, exc)
        )

    async def _send_quiet(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        data: bytes,
    ) -> None:
        """Write one frame; a torn connection is the client's problem."""
        try:
            async with write_lock:
                writer.write(data)
                await writer.drain()
            self.metrics.bytes_out(len(data))
        except (ConnectionError, RuntimeError, OSError):
            pass

    def _event(self, name: str, **fields: object) -> None:
        if self.recorder is not None:
            self.recorder.event(name, **fields)
        if self.log is not None:
            self.log.log(_EVENT_LEVELS.get(name, "info"), name, **fields)
