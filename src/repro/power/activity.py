"""Activity extraction: architecture trace -> per-block clocking rates.

The clock-gating model needs, per register population, the fraction of
cycles it is actually clocked.  For the decoder that decomposes as:

* core pipeline registers and the min1/min2/pos1/sign arrays clock
  while their core issues (the trace's busy fraction);
* the Q FIFO/array clocks one word per push — per-flip-flop activity
  is the push rate divided by the FIFO depth (only the addressed word's
  enable fires);
* the barrel shifter has no state (combinational);
* control/sequencing registers always clock (part of the ungateable
  fraction in the power model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.scheduler_trace import ArchTrace
from repro.hls.rtl import RtlModule


@dataclass
class ActivityProfile(object):
    """Register-bit populations and their clocking activity."""

    block_bits: Dict[str, float] = field(default_factory=dict)
    block_activity: Dict[str, float] = field(default_factory=dict)

    @property
    def total_bits(self) -> float:
        """All register bits covered by the profile."""
        return sum(self.block_bits.values())

    def weighted_activity(self) -> float:
        """Bit-weighted average activity (before the ungateable floor)."""
        total = self.total_bits
        if total == 0:
            return 1.0
        return (
            sum(
                bits * self.block_activity.get(name, 1.0)
                for name, bits in self.block_bits.items()
            )
            / total
        )


def register_blocks(rtl: RtlModule) -> Dict[str, float]:
    """Partition a decoder netlist's register bits into gating blocks.

    Pipeline registers inside a compiled loop module go to the block
    named by the module path suffix (``.../j`` -> core1, ``.../k`` ->
    core2); register-file and FIFO macros are assigned by name.
    """
    blocks: Dict[str, float] = {}

    def put(name: str, bits: float) -> None:
        blocks[name] = blocks.get(name, 0.0) + bits

    for module, mult in rtl.walk():
        if module.register_bits:
            if module.name.endswith("/j"):
                put("core1", module.register_bits * mult)
            elif module.name.endswith("/k"):
                put("core2", module.register_bits * mult)
            else:
                put("control", module.register_bits * mult)
        for macro in module.memories:
            if macro.kind not in ("regfile", "fifo"):
                continue
            bits = macro.bits * mult
            if macro.kind == "fifo" or macro.name.startswith("q_"):
                put("q_storage", bits)
            elif "_c2" in macro.name:
                put("core2", bits)
            elif "_c1" in macro.name or macro.name.endswith("_array"):
                put("core1", bits)
            else:
                put("control", bits)
    return blocks


def extract_activity(
    rtl: RtlModule,
    trace: ArchTrace,
    q_depth_words: int,
) -> ActivityProfile:
    """Combine netlist register populations with trace busy fractions.

    Parameters
    ----------
    rtl:
        Compiled decoder netlist.
    trace:
        Cycle trace of a representative decode.
    q_depth_words:
        Depth of the Q storage (per-word write enables mean per-bit
        activity is the push rate over the depth).
    """
    blocks = register_blocks(rtl)
    busy1 = trace.utilization("core1")
    busy2 = trace.utilization("core2")
    activity = {
        "core1": busy1,
        "core2": busy2,
        # One word of the Q storage is written per core1-busy cycle.
        "q_storage": busy1 / max(q_depth_words, 1),
        "control": 1.0,
    }
    return ActivityProfile(blocks, activity)
