"""Gate-level-style power estimation (the SpyGlass stand-in).

Power decomposes the way the paper's Table I reports it:

* **leakage** — static, proportional to standard-cell area;
* **internal** — dominated by sequential (flip-flop + clock) energy;
  the component clock gating reduces;
* **switching** — combinational toggling, set by datapath activity.

:mod:`model` holds the component models, :mod:`activity` extracts
per-block activity from an architecture trace, and :mod:`spyglass`
assembles the with/without-clock-gating comparison of Table I and the
SRAM-inclusive peak power of Table II.
"""

from repro.power.model import PowerBreakdown, PowerModel
from repro.power.activity import ActivityProfile, extract_activity, register_blocks
from repro.power.spyglass import SpyGlassEstimator, SpyGlassReport
from repro.power.dvfs import DvfsModel, OperatingPoint
from repro.power.energy import EnergyReport, energy_per_frame
from repro.power.timeline import PowerTimeline, power_timeline

__all__ = [
    "PowerBreakdown",
    "PowerModel",
    "ActivityProfile",
    "extract_activity",
    "register_blocks",
    "SpyGlassEstimator",
    "SpyGlassReport",
    "DvfsModel",
    "OperatingPoint",
    "EnergyReport",
    "energy_per_frame",
    "PowerTimeline",
    "power_timeline",
]
