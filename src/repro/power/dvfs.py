"""Voltage-frequency scaling and energy-per-bit analysis.

The paper's motivation is the wireless *handset*: throughput at minimum
energy.  The 0.9 V / 400 MHz point of Table II is one point on a
voltage-frequency curve; this module models the rest of it so the
energy-optimal operating point for a required throughput can be found —
the analysis a low-power SoC team runs right after getting the paper's
numbers.

Model (standard alpha-power MOSFET approximations at 65 nm):

* delay scales as ``V / (V - Vth)^alpha`` with ``alpha ~= 1.3``,
  normalized to the nominal 0.9 V corner — this caps the achievable
  clock at each voltage;
* dynamic power scales as ``(V / Vnom)^2 * f``;
* leakage scales as ``(V / Vnom)^3`` (DIBL-dominated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ModelError

_VTH = 0.35  # threshold voltage at 65 nm GP, volts
_ALPHA = 1.3  # alpha-power law exponent


@dataclass(frozen=True)
class OperatingPoint(object):
    """One (voltage, frequency) operating point with its costs.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    clock_mhz:
        Operating frequency (must be <= fmax at this voltage).
    dynamic_mw / leakage_mw:
        Scaled power components.
    throughput_mbps:
        Delivered information throughput at this clock.
    energy_pj_per_bit:
        Total energy divided by information throughput — the handset
        metric.
    """

    vdd: float
    clock_mhz: float
    dynamic_mw: float
    leakage_mw: float
    throughput_mbps: float

    @property
    def total_mw(self) -> float:
        """Dynamic plus leakage power."""
        return self.dynamic_mw + self.leakage_mw

    @property
    def energy_pj_per_bit(self) -> float:
        """Energy per delivered information bit in pJ."""
        if self.throughput_mbps <= 0:
            return float("inf")
        return self.total_mw * 1e3 / self.throughput_mbps


class DvfsModel(object):
    """Scale one measured design point across the voltage range.

    Parameters
    ----------
    nominal_vdd / nominal_clock_mhz:
        The measured corner (the paper's 0.9 V / 400 MHz).
    dynamic_mw / leakage_mw:
        Power decomposition at the nominal corner (dynamic = internal +
        switching + SRAM dynamic; leakage = cell + SRAM leakage).
    throughput_mbps:
        Delivered throughput at the nominal corner.
    """

    def __init__(
        self,
        nominal_vdd: float = 0.9,
        nominal_clock_mhz: float = 400.0,
        dynamic_mw: float = 0.0,
        leakage_mw: float = 0.0,
        throughput_mbps: float = 0.0,
    ) -> None:
        if nominal_vdd <= _VTH:
            raise ModelError(f"vdd {nominal_vdd} below threshold {_VTH}")
        if nominal_clock_mhz <= 0:
            raise ModelError("nominal clock must be positive")
        self.nominal_vdd = nominal_vdd
        self.nominal_clock_mhz = nominal_clock_mhz
        self.dynamic_mw = dynamic_mw
        self.leakage_mw = leakage_mw
        self.throughput_mbps = throughput_mbps

    # ------------------------------------------------------------------
    # physics
    # ------------------------------------------------------------------
    def fmax_mhz(self, vdd: float) -> float:
        """Achievable clock at a supply voltage (alpha-power law)."""
        if vdd <= _VTH:
            return 0.0
        nominal_speed = (self.nominal_vdd - _VTH) ** _ALPHA / self.nominal_vdd
        speed = (vdd - _VTH) ** _ALPHA / vdd
        return self.nominal_clock_mhz * speed / nominal_speed

    def operating_point(
        self, vdd: float, clock_mhz: Optional[float] = None
    ) -> OperatingPoint:
        """Cost one (voltage, clock) pair; clock defaults to fmax(vdd)."""
        fmax = self.fmax_mhz(vdd)
        clock = fmax if clock_mhz is None else clock_mhz
        if clock > fmax * (1 + 1e-9):
            raise ModelError(
                f"{clock:.0f} MHz infeasible at {vdd:.2f} V "
                f"(fmax {fmax:.0f} MHz)"
            )
        v_ratio = vdd / self.nominal_vdd
        f_ratio = clock / self.nominal_clock_mhz
        return OperatingPoint(
            vdd=vdd,
            clock_mhz=clock,
            dynamic_mw=self.dynamic_mw * v_ratio**2 * f_ratio,
            leakage_mw=self.leakage_mw * v_ratio**3,
            throughput_mbps=self.throughput_mbps * f_ratio,
        )

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def sweep(
        self, vdd_points: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
    ) -> List[OperatingPoint]:
        """Operating points at fmax for each voltage."""
        return [self.operating_point(v) for v in vdd_points]

    def min_energy_point(
        self,
        required_mbps: float,
        vdd_grid: Optional[Sequence[float]] = None,
    ) -> OperatingPoint:
        """Lowest-energy point meeting a throughput requirement.

        Runs at the *lowest* feasible clock for the requirement at each
        voltage (race-to-idle is not modelled; the decoder streams).
        """
        if required_mbps <= 0:
            raise ModelError("required throughput must be positive")
        if required_mbps > self.throughput_mbps * self.fmax_mhz(
            1.2
        ) / self.nominal_clock_mhz:
            raise ModelError(
                f"requirement {required_mbps} Mbps unreachable even at 1.2 V"
            )
        grid = vdd_grid or [0.5 + 0.025 * i for i in range(29)]  # 0.5-1.2 V
        needed_clock = (
            required_mbps / self.throughput_mbps * self.nominal_clock_mhz
        )
        best: Optional[OperatingPoint] = None
        for vdd in grid:
            if vdd <= _VTH or self.fmax_mhz(vdd) < needed_clock:
                continue
            point = self.operating_point(vdd, needed_clock)
            if best is None or point.energy_pj_per_bit < best.energy_pj_per_bit:
                best = point
        if best is None:
            raise ModelError(
                f"no grid voltage supports {needed_clock:.0f} MHz"
            )
        return best
