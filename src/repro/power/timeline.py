"""Time-resolved power: the waveform behind "Max Power 180 mW".

A single average hides the profile a power-delivery network has to
survive.  This module folds a design's per-component power over its
cycle-accurate activity trace into a per-cycle power series: sequential
and combinational power track the busy units, SRAM power tracks the
access pattern, leakage is flat.  From the series come the peak, the
average, and an ASCII sparkline for quick inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.arch.scheduler_trace import ArchTrace
from repro.errors import ModelError
from repro.power.model import PowerBreakdown

_SPARK = " .:-=+*#%@"


@dataclass
class PowerTimeline(object):
    """Per-cycle total power of one decode (mW)."""

    series_mw: np.ndarray
    clock_mhz: float

    @property
    def peak_mw(self) -> float:
        """Highest single-cycle power."""
        return float(self.series_mw.max()) if self.series_mw.size else 0.0

    @property
    def average_mw(self) -> float:
        """Mean power over the decode."""
        return float(self.series_mw.mean()) if self.series_mw.size else 0.0

    @property
    def peak_to_average(self) -> float:
        """Crest factor seen by the power grid."""
        avg = self.average_mw
        return self.peak_mw / avg if avg else 0.0

    def sparkline(self, width: int = 72) -> str:
        """ASCII waveform of the series."""
        if not self.series_mw.size:
            return "(empty)"
        bins = np.array_split(self.series_mw, min(width, self.series_mw.size))
        values = np.array([b.mean() for b in bins])
        top = values.max() or 1.0
        chars = [
            _SPARK[min(int(v / top * (len(_SPARK) - 1)), len(_SPARK) - 1)]
            for v in values
        ]
        return "".join(chars)


def power_timeline(
    power: PowerBreakdown,
    trace: ArchTrace,
    clock_mhz: float,
    sram_mw_active: float = 0.0,
) -> PowerTimeline:
    """Distribute a power decomposition over a trace's cycles.

    Dynamic components scale with the number of busy core units per
    cycle (0, 1, or 2 of core1/core2); leakage is constant; SRAM power
    applies during busy cycles (its traffic is per-issue).
    """
    cycles = trace.total_cycles
    if cycles <= 0:
        raise ModelError("trace has no cycles")
    busy = np.zeros((2, cycles), dtype=bool)
    units = {"core1": 0, "core2": 1}
    for seg in trace.segments:
        row = units.get(seg.unit)
        if row is None:
            continue
        busy[row, seg.start : min(seg.end, cycles)] = True
    active_units = busy.sum(axis=0)  # 0..2 per cycle

    # Average activity the decomposition was computed at.
    mean_active = active_units.mean() or 1.0
    dynamic_mw = power.internal_mw + power.switching_mw
    series = (
        power.leakage_mw
        + dynamic_mw * (active_units / mean_active) * 0.85
        + dynamic_mw * 0.15  # clock tree and control never gate fully
        + sram_mw_active * (active_units > 0)
    )
    return PowerTimeline(series_mw=series.astype(np.float64), clock_mhz=clock_mhz)
