"""Component power models over RTL structure and activity.

All three components take their constants from the technology model;
the defaults are calibrated so the full pipelined decoder at 400 MHz
reproduces the paper's Table I decomposition (3.43 / 64.5 / 22.5 mW
without gating).  See EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ModelError
from repro.synth.tech65 import TSMC65GP, TechnologyModel

#: Average combinational toggle activity of the decoder datapath under
#: random-ish LLR data (fraction of gates switching per cycle).
DEFAULT_TOGGLE_ACTIVITY = 0.200

#: Fraction of sequential internal power that clock gating cannot
#: remove: the clock trunk above the gate insertion points, the
#: always-on control/sequencing registers, and the gates themselves.
UNGATEABLE_FRACTION = 0.278

#: Peak-to-typical activity margin used for Table II's "max power".
PEAK_ACTIVITY_FACTOR = 1.40


@dataclass
class PowerBreakdown(object):
    """One power estimate, decomposed as SpyGlass reports it (mW)."""

    leakage_mw: float
    internal_mw: float
    switching_mw: float
    sram_mw: float = 0.0
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mw(self) -> float:
        """Sum of every component."""
        return self.leakage_mw + self.internal_mw + self.switching_mw + self.sram_mw


class PowerModel(object):
    """Computes the three standard-cell components plus SRAM power.

    Parameters
    ----------
    tech:
        Technology constants.
    toggle_activity:
        Combinational switching activity (per gate per cycle).
    ungateable_fraction:
        See :data:`UNGATEABLE_FRACTION`.
    """

    def __init__(
        self,
        tech: TechnologyModel = TSMC65GP,
        toggle_activity: float = DEFAULT_TOGGLE_ACTIVITY,
        ungateable_fraction: float = UNGATEABLE_FRACTION,
    ) -> None:
        if not 0.0 <= toggle_activity <= 1.0:
            raise ModelError(f"toggle_activity {toggle_activity} not in [0, 1]")
        if not 0.0 <= ungateable_fraction <= 1.0:
            raise ModelError(
                f"ungateable_fraction {ungateable_fraction} not in [0, 1]"
            )
        self.tech = tech
        self.toggle_activity = toggle_activity
        self.ungateable_fraction = ungateable_fraction

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def leakage_mw(self, std_cell_ge: float) -> float:
        """Static leakage of the standard-cell area."""
        if std_cell_ge < 0:
            raise ModelError("negative area")
        return std_cell_ge * self.tech.leakage_nw_per_ge * 1e-6

    def internal_mw(
        self,
        ff_bits: float,
        clock_mhz: float,
        activity: float = 1.0,
    ) -> float:
        """Sequential internal power of ``ff_bits`` flip-flops.

        ``activity`` is the average fraction of cycles the flops are
        actually clocked (1.0 = no gating).
        """
        if ff_bits < 0 or not 0.0 <= activity <= 1.0:
            raise ModelError("bad internal-power inputs")
        energy_j = ff_bits * self.tech.ff_clock_energy_fj * 1e-15 * activity
        return energy_j * clock_mhz * 1e6 * 1e3

    def gated_internal_mw(
        self,
        block_bits: Dict[str, float],
        block_activity: Dict[str, float],
        clock_mhz: float,
    ) -> float:
        """Internal power with register/block-level clock gating.

        Each block's registers clock only during its active fraction;
        an ungateable share of the total always clocks.
        """
        total_bits = sum(block_bits.values())
        if total_bits == 0:
            return 0.0
        ungated = self.internal_mw(total_bits, clock_mhz)
        weighted = sum(
            bits * min(max(block_activity.get(name, 1.0), 0.0), 1.0)
            for name, bits in block_bits.items()
        )
        gated_fraction = (
            self.ungateable_fraction
            + (1.0 - self.ungateable_fraction) * (weighted / total_bits)
        )
        return ungated * gated_fraction

    def switching_mw(self, comb_ge: float, clock_mhz: float) -> float:
        """Combinational switching power of the datapath."""
        if comb_ge < 0:
            raise ModelError("negative area")
        energy_j = comb_ge * self.tech.ge_switch_energy_fj * 1e-15
        return energy_j * self.toggle_activity * clock_mhz * 1e6 * 1e3

    def sram_mw(
        self,
        bits: int,
        word_bits: int,
        accesses_per_cycle: float,
        clock_mhz: float,
    ) -> float:
        """SRAM macro power: access energy plus leakage."""
        if bits < 0 or word_bits < 0 or accesses_per_cycle < 0:
            raise ModelError("bad SRAM power inputs")
        access_j = (
            word_bits
            * self.tech.sram_access_energy_fj_per_bit
            * 1e-15
            * accesses_per_cycle
        )
        dynamic = access_j * clock_mhz * 1e6 * 1e3
        leak = bits / 1024.0 * self.tech.sram_leakage_nw_per_kbit * 1e-6
        return dynamic + leak
