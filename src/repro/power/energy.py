"""Per-frame and per-bit energy accounting from simulation traces.

Power reports answer "how many mW at this clock"; a handset battery
budget wants "how many nJ per decoded frame".  This module combines a
design point's power decomposition with a *specific decode's* cycle
count and memory traffic, so early termination's energy benefit — not
just its latency benefit — is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.result import ArchDecodeResult
from repro.power.model import PowerBreakdown
from repro.synth.tech65 import TSMC65GP, TechnologyModel


@dataclass(frozen=True)
class EnergyReport(object):
    """Energy of one decoded frame.

    Attributes
    ----------
    cycles:
        Decode latency in cycles.
    static_nj / sequential_nj / combinational_nj / sram_nj:
        Energy components in nanojoules.
    payload_bits:
        Information bits delivered by the frame.
    """

    cycles: int
    static_nj: float
    sequential_nj: float
    combinational_nj: float
    sram_nj: float
    payload_bits: int

    @property
    def total_nj(self) -> float:
        """Total energy per frame in nJ."""
        return (
            self.static_nj
            + self.sequential_nj
            + self.combinational_nj
            + self.sram_nj
        )

    @property
    def pj_per_bit(self) -> float:
        """Energy per information bit in pJ."""
        if self.payload_bits <= 0:
            return float("inf")
        return self.total_nj * 1e3 / self.payload_bits


def energy_per_frame(
    power: PowerBreakdown,
    result: ArchDecodeResult,
    payload_bits: int,
    sram_word_bits: int = 768,
    tech: TechnologyModel = TSMC65GP,
) -> EnergyReport:
    """Fold a power decomposition over one decode's actual duration.

    Parameters
    ----------
    power:
        Standard-cell decomposition at the decode's clock (the gated
        report from :class:`~repro.power.spyglass.SpyGlassEstimator`).
    result:
        The architectural decode (cycles + memory access counts via
        the simulator's SRAM stats are *not* needed — energy scales
        with cycles since the steady-state traffic is per-cycle).
    payload_bits:
        Information bits in the frame.
    sram_word_bits:
        Width of one SRAM access (z lanes x message bits).
    """
    seconds = result.cycles / (result.clock_mhz * 1e6)
    to_nj = 1e6  # mW * s = mJ; mJ -> nJ is 1e6

    # Steady-state SRAM traffic: ~4 word accesses per busy cycle
    # (P/R read by core1, P/R written by core2).
    busy = result.trace.busy_cycles("core1") + result.trace.busy_cycles("core2")
    accesses = 2 * busy
    sram_j = (
        accesses
        * sram_word_bits
        * tech.sram_access_energy_fj_per_bit
        * 1e-15
    )

    return EnergyReport(
        cycles=result.cycles,
        static_nj=power.leakage_mw * seconds * to_nj,
        sequential_nj=power.internal_mw * seconds * to_nj,
        combinational_nj=power.switching_mw * seconds * to_nj,
        sram_nj=sram_j * 1e9,
        payload_bits=payload_bits,
    )
