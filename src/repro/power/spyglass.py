"""SpyGlass-style power reports (Table I / Table II).

:class:`SpyGlassEstimator` pulls together the compiled netlist, the
area report, and an architecture activity trace, and emits the paper's
comparison: leakage / internal / switching / total with and without
clock gating — standard cells only, "not including external SRAMs",
exactly as Table I notes — plus an SRAM-inclusive peak estimate for
Table II's "Max Power" row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.scheduler_trace import ArchTrace
from repro.hls.compiler import HlsResult
from repro.power.activity import extract_activity
from repro.power.model import PEAK_ACTIVITY_FACTOR, PowerBreakdown, PowerModel
from repro.synth.tech65 import TSMC65GP, TechnologyModel


@dataclass
class SpyGlassReport(object):
    """The Table I pair: estimates with and without clock gating."""

    with_gating: PowerBreakdown
    without_gating: PowerBreakdown

    @property
    def internal_saving(self) -> float:
        """Fractional sequential-internal reduction from gating.

        The paper reports 29% for the pipelined decoder.
        """
        before = self.without_gating.internal_mw
        if before == 0:
            return 0.0
        return 1.0 - self.with_gating.internal_mw / before


class SpyGlassEstimator(object):
    """Standard-cell power estimation over one compiled design point."""

    def __init__(
        self,
        tech: TechnologyModel = TSMC65GP,
        model: Optional[PowerModel] = None,
    ) -> None:
        self.tech = tech
        self.model = model or PowerModel(tech)

    def estimate(
        self,
        hls: HlsResult,
        trace: ArchTrace,
        q_depth_words: int,
    ) -> SpyGlassReport:
        """Produce the with/without-clock-gating pair (std cells only)."""
        area = hls.area(self.tech)
        clock = hls.clock_mhz

        ff_ge = area.breakdown_ge.get("registers", 0.0)
        comb_ge = area.std_cell_ge - ff_ge
        leakage = self.model.leakage_mw(area.std_cell_ge)
        switching = self.model.switching_mw(comb_ge, clock)

        profile = extract_activity(hls.rtl, trace, q_depth_words)
        ungated_internal = self.model.internal_mw(profile.total_bits, clock)
        gated_internal = self.model.gated_internal_mw(
            profile.block_bits, profile.block_activity, clock
        )

        return SpyGlassReport(
            with_gating=PowerBreakdown(leakage, gated_internal, switching),
            without_gating=PowerBreakdown(leakage, ungated_internal, switching),
        )

    def peak_power_mw(
        self,
        hls: HlsResult,
        trace: ArchTrace,
        q_depth_words: int,
        accesses_per_cycle: float = 4.0,
    ) -> float:
        """Table II's "Max Power": SRAMs included, peak activity.

        ``accesses_per_cycle`` reflects the steady-state memory traffic
        of the pipelined decoder: P read + R read (core1) and P write +
        R write (core2) every cycle.
        """
        report = self.estimate(hls, trace, q_depth_words)
        sram_bits = hls.rtl.total_memory_bits(("sram",))
        word_bits = max(
            (m.width_bits for mod, _ in hls.rtl.walk() for m in mod.memories
             if m.kind == "sram"),
            default=0,
        )
        sram = self.model.sram_mw(
            sram_bits, word_bits, accesses_per_cycle, hls.clock_mhz
        )
        return (report.with_gating.total_mw + sram) * PEAK_ACTIVITY_FACTOR
