"""Decoder instrumentation: message statistics for fixed-point tuning.

Choosing a message format (the EXP-EXT5 study) needs more than final
error rates — the designer wants to see *why* a format fails: what
fraction of P and Q messages saturate, and how the LLR distribution
grows across iterations.  This module wraps a layered decode with
statistics collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

import numpy as np

from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.minsum import (
    min1_min2,
    scale_magnitude_fixed,
    sign_with_zero_positive,
)
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class MessageStats(object):
    """Per-iteration message statistics of one fixed-point decode.

    Attributes
    ----------
    p_saturation:
        Fraction of P entries at +/-max after each iteration.
    q_saturation:
        Fraction of Q messages clipped during each iteration.
    p_mean_magnitude:
        Mean |P| in integer codes after each iteration.
    """

    fmt: FixedPointFormat
    p_saturation: List[float] = field(default_factory=list)
    q_saturation: List[float] = field(default_factory=list)
    p_mean_magnitude: List[float] = field(default_factory=list)

    @property
    def final_p_saturation(self) -> float:
        """P saturation at exit (the headline tuning number)."""
        return self.p_saturation[-1] if self.p_saturation else 0.0

    def publish(self, registry: "MetricsRegistry") -> None:
        """Export the per-iteration series as labelled registry gauges.

        Gauges ``decode_p_saturation`` / ``decode_q_saturation`` /
        ``decode_p_mean_magnitude`` are keyed by iteration index, and
        ``decode_stats_frames`` counts how many decodes were published,
        so message-format studies render through the same text / JSON /
        Prometheus pipeline as the serving and fault metrics.
        """
        series = (
            ("decode_p_saturation",
             "fraction of P entries at +/-max after an iteration",
             self.p_saturation),
            ("decode_q_saturation",
             "fraction of Q messages clipped during an iteration",
             self.q_saturation),
            ("decode_p_mean_magnitude",
             "mean |P| in integer codes after an iteration",
             self.p_mean_magnitude),
        )
        for name, help_text, values in series:
            gauge = registry.gauge(name, help_text, ("iteration",))
            for it, value in enumerate(values):
                gauge.set(float(value), iteration=str(it))
        registry.counter(
            "decode_stats_frames", "instrumented decodes published"
        ).inc()


def instrumented_decode(
    code: QCLDPCCode,
    channel_llrs: np.ndarray,
    max_iterations: int = 10,
    fmt: FixedPointFormat = MESSAGE_8BIT,
    early_termination: bool = True,
) -> tuple:
    """Fixed-point layered decode with statistics collection.

    Returns ``(DecodeResult, MessageStats)``.  The arithmetic is
    identical to :class:`~repro.decoder.layered.LayeredMinSumDecoder`
    in fixed mode (verified by test), with clip events counted.
    """
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.shape != (code.n,):
        raise DecodingError(f"LLR length {llrs.shape} != ({code.n},)")

    p = fmt.quantize(llrs).astype(np.int32)
    r = [np.zeros((layer.degree, code.z), dtype=np.int32) for layer in code.layers]
    stats = MessageStats(fmt)
    sat = fmt.max_code

    iteration_syndromes: List[int] = []
    iterations = 0
    for _ in range(max_iterations):
        q_total = q_clipped = 0
        for l in range(code.num_layers):
            layer = code.layer(l)
            idx = layer.var_idx
            raw_q = p[idx].astype(np.int64) - r[l]
            q = fmt.saturate(raw_q)
            q_total += raw_q.size
            q_clipped += int(np.count_nonzero(np.abs(raw_q) > sat))
            signs = sign_with_zero_positive(q)
            min1, min2, pos1 = min1_min2(np.abs(q))
            total_sign = np.prod(signs, axis=0, dtype=np.int64)
            mags = np.where(
                np.arange(layer.degree)[:, None] == pos1[None, :], min2, min1
            )
            r_new = fmt.saturate(
                (total_sign[None, :] * signs) * scale_magnitude_fixed(mags)
            )
            p[idx] = fmt.saturate(q.astype(np.int64) + r_new)
            r[l] = r_new
        iterations += 1
        stats.q_saturation.append(q_clipped / max(q_total, 1))
        stats.p_saturation.append(
            float(np.count_nonzero(np.abs(p) >= sat)) / p.size
        )
        stats.p_mean_magnitude.append(float(np.mean(np.abs(p))))
        weight = int(code.syndrome(hard_decision(p)).sum())
        iteration_syndromes.append(weight)
        if early_termination and weight == 0:
            break

    bits = hard_decision(p)
    weight = iteration_syndromes[-1]
    result = DecodeResult(
        bits=bits,
        converged=weight == 0,
        iterations=iterations,
        llrs=fmt.dequantize(p),
        syndrome_weight=weight,
        iteration_syndromes=iteration_syndromes,
    )
    return result, stats
