"""Flooding (two-phase) belief-propagation baselines.

The classic schedule updates *all* check nodes, then *all* variable
nodes, once per iteration.  It is the baseline the layered schedule is
compared against: layered decoding converges in roughly half the
iterations because each layer sees the preceding layers' updates within
the same iteration.

Two check-node rules are provided:

* ``"sum-product"`` — the exact tanh rule (best error-rate reference);
* ``"min-sum"`` — the min-sum approximation with optional scaling, the
  apples-to-apples baseline for Algorithm 1.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.minsum import min1_min2, sign_with_zero_positive
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

_CHECK_RULES = ("sum-product", "min-sum")
_TANH_CLIP = 30.0


class FloodingDecoder(object):
    """Two-phase flooding BP decoder over the full Tanner graph.

    Messages are kept per layer in the same ``(degree, z)`` blocks the
    layered decoder uses, which keeps the numpy implementation fully
    vectorized: a flooding iteration is "compute every layer's check
    update from the *same* P snapshot, then apply all updates at once".
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = 20,
        check_rule: str = "min-sum",
        scaling_factor: float = 1.0,
        early_termination: bool = True,
    ) -> None:
        if check_rule not in _CHECK_RULES:
            raise DecodingError(
                f"check_rule must be one of {_CHECK_RULES}, got {check_rule!r}"
            )
        if max_iterations < 1:
            raise DecodingError(f"max_iterations must be >= 1, got {max_iterations}")
        self.code = code
        self.max_iterations = max_iterations
        self.check_rule = check_rule
        self.scaling_factor = scaling_factor
        self.early_termination = early_termination

    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode one frame of channel LLRs (length n, float)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(f"LLR length {llrs.shape} != ({self.code.n},)")
        code = self.code
        # Variable-to-check messages per layer, initialized to channel LLRs.
        v2c = [llrs[layer.var_idx].copy() for layer in code.layers]
        c2v = [np.zeros((layer.degree, code.z)) for layer in code.layers]

        iteration_syndromes: List[int] = []
        iterations = 0
        p = llrs.copy()
        for _ in range(self.max_iterations):
            # Check-node phase (from the same v2c snapshot everywhere).
            for l, layer in enumerate(code.layers):
                c2v[l] = self._check_update(v2c[l])
            # Variable-node phase: P = channel + sum of incoming c2v.
            p = llrs.copy()
            for l, layer in enumerate(code.layers):
                np.add.at(p, layer.var_idx.ravel(), c2v[l].ravel())
            # New v2c = P minus own contribution (extrinsic).
            for l, layer in enumerate(code.layers):
                v2c[l] = p[layer.var_idx] - c2v[l]

            iterations += 1
            weight = int(code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if self.early_termination and weight == 0:
                break

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=p,
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )

    # ------------------------------------------------------------------
    # check-node rules
    # ------------------------------------------------------------------
    def _check_update(self, v2c: np.ndarray) -> np.ndarray:
        if self.check_rule == "min-sum":
            return self._check_update_minsum(v2c)
        return self._check_update_sumproduct(v2c)

    def _check_update_minsum(self, v2c: np.ndarray) -> np.ndarray:
        signs = sign_with_zero_positive(v2c)
        min1, min2, pos1 = min1_min2(np.abs(v2c))
        total_sign = np.prod(signs, axis=0, dtype=np.int64)
        degree = v2c.shape[0]
        mags = np.where(
            np.arange(degree)[:, None] == pos1[None, :], min2, min1
        )
        return self.scaling_factor * (total_sign[None, :] * signs) * mags

    def _check_update_sumproduct(self, v2c: np.ndarray) -> np.ndarray:
        # tanh rule with the self-term divided out:
        #   c2v_k = 2 atanh( prod_{j != k} tanh(v2c_j / 2) )
        half = np.clip(v2c / 2.0, -_TANH_CLIP, _TANH_CLIP)
        t = np.tanh(half)
        # Guard exact zeros so the product/divide stays finite.
        t = np.where(np.abs(t) < 1e-12, np.copysign(1e-12, t + 1e-300), t)
        prod = np.prod(t, axis=0)
        extrinsic = prod[None, :] / t
        extrinsic = np.clip(extrinsic, -0.999999999999, 0.999999999999)
        return 2.0 * np.arctanh(extrinsic)
