"""Layered sum-product decoding: the exact check rule, layered schedule.

Algorithm 1 approximates the check-node update with a scaled minimum;
this decoder runs the *exact* tanh rule inside the same layered
schedule.  It is the error-rate ceiling for the schedule — min-sum
variants are judged by how little they lose against it — at the cost of
transcendental arithmetic no 400 MHz 65 nm datapath would pay.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

_TANH_CLIP = 30.0
_EPS = 1e-12


class LayeredSumProductDecoder(object):
    """Layered decoder with the exact tanh check-node rule.

    Same state organization as :class:`LayeredMinSumDecoder` (P vector
    plus per-layer R messages); only stage 2's magnitude computation
    differs: ``R'_mn = 2 atanh( prod_{j != n} tanh(Q_mj / 2) )``.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = 10,
        early_termination: bool = True,
    ) -> None:
        if max_iterations < 1:
            raise DecodingError(f"max_iterations must be >= 1, got {max_iterations}")
        self.code = code
        self.max_iterations = max_iterations
        self.early_termination = early_termination

    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode one frame of channel LLRs (length n, float)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(f"LLR length {llrs.shape} != ({self.code.n},)")
        code = self.code
        p = llrs.copy()
        r = [np.zeros((layer.degree, code.z)) for layer in code.layers]

        iteration_syndromes: List[int] = []
        iterations = 0
        for _ in range(self.max_iterations):
            for l in range(code.num_layers):
                layer = code.layer(l)
                idx = layer.var_idx
                q = p[idx] - r[l]
                t = np.tanh(np.clip(q / 2.0, -_TANH_CLIP, _TANH_CLIP))
                t = np.where(np.abs(t) < _EPS, np.copysign(_EPS, t + 1e-300), t)
                prod = np.prod(t, axis=0)
                extrinsic = np.clip(prod[None, :] / t, -1 + _EPS, 1 - _EPS)
                r_new = 2.0 * np.arctanh(extrinsic)
                p[idx] = q + r_new
                r[l] = r_new
            iterations += 1
            weight = int(code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if self.early_termination and weight == 0:
                break

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=p,
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )
