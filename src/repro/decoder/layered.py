"""Layered scaled min-sum decoding (the paper's Algorithm 1).

One iteration processes the ``L`` layers (block rows) in sequence; each
layer runs the two stages the paper maps onto core1/core2:

* stage 1 (read & pre-process): ``Q_mn = P_n - R_mn`` for every edge of
  the layer, then find the min / second-min magnitude and sign product
  per check row;
* stage 2 (decode & write back): ``R'_mn = 0.75 * prod sign * min`` and
  ``P'_n = Q_mn + R'_mn``, written back to the P/R memories.

Because P is updated layer by layer, each layer immediately sees the
previous layers' refinements — the source of layered decoding's ~2x
convergence advantage over flooding, which the tests verify.

Two arithmetic modes are provided:

* ``fixed=False`` — IEEE-754 doubles, the algorithm reference;
* ``fixed=True``  — bit-accurate two's-complement arithmetic in the
  paper's 8-bit message format with symmetric saturation and the
  shift-add 0.75 scaler, matching the synthesized datapath.  The
  cycle-accurate RTL model in :mod:`repro.arch.decoder_rtl` must agree
  with this path bit for bit.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.accel.plan import get_plan
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.minsum import (
    SCALING_FACTOR,
    min1_min2,
    offset_magnitude_fixed,
    scale_magnitude_fixed,
    sign_with_zero_positive,
)
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.trace import TraceRecorder

DEFAULT_MAX_ITERATIONS = 10


class LayeredMinSumDecoder(object):
    """Layered scaled min-sum decoder for QC-LDPC codes.

    Parameters
    ----------
    code:
        The QC-LDPC code to decode.
    max_iterations:
        Full-iteration budget (paper: 10).
    scaling_factor:
        Check-message scaling, float mode only (paper: 0.75; the fixed
        mode always uses the hardware shift-add 0.75).
    fixed:
        Use bit-accurate fixed-point arithmetic.
    fmt:
        Fixed-point message format (default: the paper's 8-bit format).
    early_termination:
        Stop as soon as all parity checks pass at an iteration boundary
        (the paper's top-level early exit).
    layer_order:
        Optional permutation of layer indices per iteration (default:
        natural order, as in Algorithm 1).
    variant:
        ``"scaled"`` (the paper's Algorithm 1) or ``"offset"`` — the
        offset-min-sum alternative ``max(|m| - beta, 0)``, a standard
        design option ablated in the benchmarks.
    offset_beta:
        Offset in LLR units (float mode) / integer codes (fixed mode);
        only used by the offset variant.
    iteration_hook:
        Optional callback ``hook(iteration_index, p)`` invoked at the
        start of every iteration with the working a-posteriori state —
        float LLRs in float mode, integer codes in fixed mode — which it
        may mutate in place.  The fault-injection subsystem
        (:mod:`repro.faults`) uses this to model message perturbation;
        instrumentation and annealed-schedule experiments fit the same
        seam.
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`.  When attached
        (and enabled) every decode emits nested ``decode.frame`` /
        ``decode.iteration`` / ``decode.layer`` spans attributing wall
        time per layer and iteration.  Tracing never touches the
        working arrays, so results are bit-identical with and without
        it; a ``None`` or disabled recorder costs one branch per
        layer.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        scaling_factor: float = SCALING_FACTOR,
        fixed: bool = False,
        fmt: FixedPointFormat = MESSAGE_8BIT,
        early_termination: bool = True,
        layer_order: Optional[Sequence[int]] = None,
        variant: str = "scaled",
        offset_beta: float = 0.3,
        iteration_hook: Optional[Callable[[int, np.ndarray], None]] = None,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        if max_iterations < 1:
            raise DecodingError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0.0 < scaling_factor <= 1.0:
            raise DecodingError(
                f"scaling_factor must be in (0, 1], got {scaling_factor}"
            )
        if variant not in ("scaled", "offset"):
            raise DecodingError(
                f"variant must be 'scaled' or 'offset', got {variant!r}"
            )
        if offset_beta < 0:
            raise DecodingError(f"offset_beta must be >= 0, got {offset_beta}")
        self.variant = variant
        self.offset_beta = offset_beta
        self.iteration_hook = iteration_hook
        self.recorder = recorder
        self.code = code
        self.max_iterations = max_iterations
        self.scaling_factor = scaling_factor
        self.fixed = fixed
        self.fmt = fmt
        self.early_termination = early_termination
        # Cached routing tables (gather indices, argmin comparison
        # columns) shared by every decoder of this code structure.
        self.plan = get_plan(code)
        if layer_order is None:
            self.layer_order = list(range(code.num_layers))
        else:
            self.layer_order = [int(i) for i in layer_order]
            if sorted(self.layer_order) != list(range(code.num_layers)):
                raise DecodingError(
                    "layer_order must be a permutation of the layer indices"
                )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode one frame of channel LLRs (length n, float)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(
                f"LLR length {llrs.shape} != ({self.code.n},)"
            )
        if self.fixed:
            return self._decode_fixed(llrs)
        return self._decode_float(llrs)

    def decode_codes(self, llr_codes: np.ndarray) -> DecodeResult:
        """Decode pre-quantized integer LLR codes (fixed mode only)."""
        if not self.fixed:
            raise DecodingError("decode_codes requires fixed=True")
        codes = np.asarray(llr_codes, dtype=np.int32)
        if codes.shape != (self.code.n,):
            raise DecodingError(f"code length {codes.shape} != ({self.code.n},)")
        return self._run_fixed(self.fmt.saturate(codes))

    # ------------------------------------------------------------------
    # floating-point path
    # ------------------------------------------------------------------
    def _decode_float(self, llrs: np.ndarray) -> DecodeResult:
        code = self.code
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        p = llrs.copy()
        r = [np.zeros((layer.degree, code.z)) for layer in code.layers]

        iteration_syndromes: List[int] = []
        iterations = 0
        frame_t0 = time.perf_counter() if tracing else 0.0
        for it in range(self.max_iterations):
            if self.iteration_hook is not None:
                self.iteration_hook(it, p)
            it_t0 = time.perf_counter() if tracing else 0.0
            for l in self.layer_order:
                if tracing:
                    layer_t0 = time.perf_counter()
                lp = self.plan.layers[l]
                idx = lp.var_idx
                q = p[idx] - r[l]
                signs = sign_with_zero_positive(q)
                min1, min2, pos1 = min1_min2(np.abs(q))
                total_sign = np.prod(signs, axis=0, dtype=np.int64)
                mags = np.where(lp.degree_col == pos1[None, :], min2, min1)
                if self.variant == "offset":
                    shaped = np.maximum(mags - self.offset_beta, 0.0)
                else:
                    shaped = self.scaling_factor * mags
                r_new = (total_sign[None, :] * signs) * shaped
                p[idx] = q + r_new
                r[l] = r_new
                if tracing:
                    rec.complete("decode.layer", layer_t0, layer=l,
                                 iteration=it, mode="float")
            iterations += 1
            weight = int(self.code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if tracing:
                rec.complete("decode.iteration", it_t0, iteration=it,
                             syndrome=weight, mode="float")
            if self.early_termination and weight == 0:
                break
        if tracing:
            rec.complete("decode.frame", frame_t0, iterations=iterations,
                         mode="float")

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=p,
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )

    # ------------------------------------------------------------------
    # fixed-point path
    # ------------------------------------------------------------------
    def _decode_fixed(self, llrs: np.ndarray) -> DecodeResult:
        return self._run_fixed(self.fmt.quantize(llrs))

    def _run_fixed(self, p_codes: np.ndarray) -> DecodeResult:
        code = self.code
        fmt = self.fmt
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        p = p_codes.astype(np.int32)
        r = [
            np.zeros((layer.degree, code.z), dtype=np.int32)
            for layer in code.layers
        ]

        iteration_syndromes: List[int] = []
        iterations = 0
        frame_t0 = time.perf_counter() if tracing else 0.0
        for it in range(self.max_iterations):
            if self.iteration_hook is not None:
                self.iteration_hook(it, p)
            it_t0 = time.perf_counter() if tracing else 0.0
            for l in self.layer_order:
                if tracing:
                    layer_t0 = time.perf_counter()
                lp = self.plan.layers[l]
                idx = lp.var_idx
                q = fmt.saturate(p[idx].astype(np.int64) - r[l])
                signs = sign_with_zero_positive(q)
                min1, min2, pos1 = min1_min2(np.abs(q))
                total_sign = np.prod(signs, axis=0, dtype=np.int64)
                mags = np.where(lp.degree_col == pos1[None, :], min2, min1)
                if self.variant == "offset":
                    beta_codes = int(round(self.offset_beta / fmt.scale))
                    shaped = offset_magnitude_fixed(mags, beta=beta_codes)
                else:
                    shaped = scale_magnitude_fixed(mags)
                r_new = (total_sign[None, :] * signs) * shaped
                r_new = fmt.saturate(r_new)
                p[idx] = fmt.saturate(q.astype(np.int64) + r_new)
                r[l] = r_new
                if tracing:
                    rec.complete("decode.layer", layer_t0, layer=l,
                                 iteration=it, mode="fixed")
            iterations += 1
            weight = int(self.code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if tracing:
                rec.complete("decode.iteration", it_t0, iteration=it,
                             syndrome=weight, mode="fixed")
            if self.early_termination and weight == 0:
                break
        if tracing:
            rec.complete("decode.frame", frame_t0, iterations=iterations,
                         mode="fixed")

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=fmt.dequantize(p),
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )
