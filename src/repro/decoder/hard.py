"""Hard-decision decoders: Gallager-B and weighted bit flipping.

Low-complexity baselines below min-sum on the performance/complexity
curve.  The paper's introduction frames LDPC decoder design as a
power/throughput/quality trade — these decoders anchor the cheap end
of that trade in the benchmark ablations: a fraction of the arithmetic
(no multiplies, 1-bit messages for Gallager-B) for a couple of dB of
coding loss.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision


class GallagerBDecoder(object):
    """Gallager's algorithm B: majority voting over 1-bit messages.

    Each iteration every check node sends each neighbour the XOR of the
    *other* neighbours' current bits; a variable flips its bit when at
    least ``threshold`` of its incoming votes disagree with its channel
    value.  The default threshold is the classic majority
    ``ceil((degree + 1) / 2)`` computed per variable.
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = 20,
        threshold: int = 0,
    ) -> None:
        if max_iterations < 1:
            raise DecodingError("max_iterations must be >= 1")
        self.code = code
        self.max_iterations = max_iterations
        self.threshold = threshold

    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode from LLRs (only their signs are used)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(f"LLR length {llrs.shape} != ({self.code.n},)")
        code = self.code
        received = hard_decision(llrs)
        bits = received.copy()

        degrees = np.array(
            [len(a) for a in code.variable_adjacency], dtype=np.int64
        )
        if self.threshold:
            thresholds = np.full(code.n, self.threshold, dtype=np.int64)
        else:
            thresholds = (degrees + 2) // 2  # strict majority

        iterations = 0
        iteration_syndromes: List[int] = []
        for _ in range(self.max_iterations):
            syndrome = code.syndrome(bits)
            weight = int(syndrome.sum())
            if weight == 0:
                iteration_syndromes.append(0)
                iterations += 1
                break
            # Vote: a check sends "flip" to a neighbour when the check
            # fails with that neighbour's bit included — equivalently,
            # count failing checks per variable (Gallager-B with the
            # extrinsic bit folded in; exact for majority thresholds).
            votes = np.zeros(code.n, dtype=np.int64)
            failing = np.flatnonzero(syndrome)
            for m in failing:
                votes[code.check_adjacency[int(m)]] += 1
            flip = votes >= thresholds
            if not flip.any():
                # Fixed point short of convergence: flip the worst one.
                worst = int(np.argmax(votes))
                if votes[worst] == 0:
                    iterations += 1
                    iteration_syndromes.append(weight)
                    break
                flip = np.zeros(code.n, dtype=bool)
                flip[worst] = True
            bits = bits ^ flip.astype(np.uint8)
            iterations += 1
            iteration_syndromes.append(int(code.syndrome(bits).sum()))

        weight = iteration_syndromes[-1] if iteration_syndromes else int(
            code.syndrome(bits).sum()
        )
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=max(iterations, 1),
            llrs=np.where(bits == 0, 1.0, -1.0),
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes or [weight],
        )


class WeightedBitFlipDecoder(object):
    """Weighted bit flipping: soft reliability, single flip per round.

    Each iteration computes, per variable, the sum over its failing
    checks weighted by the channel reliability, and flips the variable
    with the largest flipping metric.  Better than Gallager-B, still
    far cheaper than min-sum; converges slowly (one flip per
    iteration), so budget iterations generously.
    """

    def __init__(self, code: QCLDPCCode, max_iterations: int = 100) -> None:
        if max_iterations < 1:
            raise DecodingError("max_iterations must be >= 1")
        self.code = code
        self.max_iterations = max_iterations

    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode from channel LLRs."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(f"LLR length {llrs.shape} != ({self.code.n},)")
        code = self.code
        bits = hard_decision(llrs)
        reliability = np.abs(llrs)
        # Per check, the least reliable participant sets its weight.
        check_weight = np.array(
            [reliability[adj].min() for adj in code.check_adjacency]
        )

        iterations = 0
        iteration_syndromes: List[int] = []
        for _ in range(self.max_iterations):
            syndrome = code.syndrome(bits)
            weight = int(syndrome.sum())
            iterations += 1
            if weight == 0:
                iteration_syndromes.append(0)
                break
            # Flipping metric: weighted failing checks minus own confidence.
            metric = np.full(code.n, -np.inf)
            involved = np.zeros(code.n, dtype=bool)
            score = np.zeros(code.n)
            for m in np.flatnonzero(syndrome):
                adj = code.check_adjacency[int(m)]
                score[adj] += check_weight[int(m)]
                involved[adj] = True
            metric[involved] = score[involved] - 0.5 * reliability[involved]
            bits = bits.copy()
            bits[int(np.argmax(metric))] ^= 1
            iteration_syndromes.append(int(code.syndrome(bits).sum()))

        weight = iteration_syndromes[-1] if iteration_syndromes else 0
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=np.where(bits == 0, 1.0, -1.0) * reliability,
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes or [weight],
        )
