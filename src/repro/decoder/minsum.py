"""Min-sum arithmetic kernels shared by the decoders and the RTL model.

These functions are the software equivalent of the paper's ``core1_dp``
(min/second-min search with sign accumulation) and ``core2_dp`` (scaled
R update) datapath cells.  The architecture model in :mod:`repro.arch`
calls the same kernels so that the cycle-accurate decoder is
bit-identical to the numpy decoder by construction of the update rule —
the integration tests then verify the *schedules* agree too.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The paper's scaling factor for the scaled min-sum check update.
SCALING_FACTOR = 0.75


def sign_with_zero_positive(values: np.ndarray) -> np.ndarray:
    """Sign in {-1, +1} with sign(0) = +1.

    A two's-complement datapath derives the sign from the MSB, so an
    exact zero is treated as positive; using ``np.sign`` (which returns
    0) would corrupt the sign product.
    """
    return np.where(np.asarray(values) < 0, -1, 1).astype(np.int8)


def min1_min2(magnitudes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column min, second-min, and argmin of a (degree, z) array.

    Mirrors core1's running min/min2 registers: ``min1[r]`` is the
    smallest magnitude seen by check row ``r``, ``min2[r]`` the smallest
    over the remaining entries, ``pos1[r]`` the block index attaining
    ``min1``.  For degree 1 the second minimum is reported as ``min1``
    (hardware initializes min2 to the saturation value; degree-1 rows do
    not occur in the supported code families).
    """
    magnitudes = np.asarray(magnitudes)
    if magnitudes.ndim != 2:
        raise ValueError(f"expected (degree, z) array, got {magnitudes.shape}")
    degree = magnitudes.shape[0]
    pos1 = magnitudes.argmin(axis=0)
    cols = np.arange(magnitudes.shape[1])
    min1 = magnitudes[pos1, cols]
    if degree == 1:
        return min1, min1.copy(), pos1
    masked = magnitudes.copy()
    # Use the dtype's maximum so the kernel works for ints and floats.
    if np.issubdtype(masked.dtype, np.integer):
        sentinel = np.iinfo(masked.dtype).max
    else:
        sentinel = np.inf
    masked[pos1, cols] = sentinel
    min2 = masked.min(axis=0)
    return min1, min2, pos1


def scale_magnitude_float(magnitude: np.ndarray) -> np.ndarray:
    """Floating-point scaled magnitude: ``0.75 * |m|``."""
    return SCALING_FACTOR * np.asarray(magnitude, dtype=np.float64)


def scale_magnitude_fixed(magnitude: np.ndarray) -> np.ndarray:
    """Fixed-point scaled magnitude: ``(3 * m) >> 2`` with truncation.

    This is how the synthesized datapath realizes the 0.75 factor — a
    shift-add (``m - (m >> 2)`` is equivalent for non-negative m only
    when no rounding is involved; we use the multiply-accumulate form
    ``(m + (m << 1)) >> 2`` which truncates toward zero for the
    non-negative magnitudes involved).
    """
    magnitude = np.asarray(magnitude)
    if not np.issubdtype(magnitude.dtype, np.integer):
        raise TypeError("fixed-point scaling requires an integer array")
    return (3 * magnitude.astype(np.int64)) >> 2


def offset_magnitude_fixed(magnitude: np.ndarray, beta: int = 1) -> np.ndarray:
    """Offset min-sum alternative: ``max(|m| - beta, 0)``.

    Not used by the paper's decoder, but a standard design alternative;
    the ablation benchmark compares it against the 0.75 scaling.
    """
    magnitude = np.asarray(magnitude)
    return np.maximum(magnitude.astype(np.int64) - beta, 0)
