"""LDPC decoding algorithms.

The paper's Algorithm 1 — layered scaled min-sum with factor 0.75 —
is implemented in :class:`LayeredMinSumDecoder`, in both floating-point
and bit-accurate fixed-point (the 8-bit message format of the
synthesized datapath).  :class:`FloodingDecoder` provides the classic
two-phase baselines (sum-product and min-sum) the layered schedule is
measured against.
"""

from repro.decoder.result import BatchDecodeResult, DecodeResult
from repro.decoder.layered import LayeredMinSumDecoder
from repro.decoder.column_layered import ColumnLayeredMinSumDecoder
from repro.decoder.flooding import FloodingDecoder
from repro.decoder.hard import GallagerBDecoder, WeightedBitFlipDecoder
from repro.decoder.layered_spa import LayeredSumProductDecoder
from repro.decoder.stats import MessageStats, instrumented_decode
from repro.decoder.minsum import (
    min1_min2,
    scale_magnitude_fixed,
    scale_magnitude_float,
    sign_with_zero_positive,
)
from repro.decoder.api import decode, decode_many

__all__ = [
    "BatchDecodeResult",
    "DecodeResult",
    "LayeredMinSumDecoder",
    "ColumnLayeredMinSumDecoder",
    "FloodingDecoder",
    "GallagerBDecoder",
    "WeightedBitFlipDecoder",
    "LayeredSumProductDecoder",
    "MessageStats",
    "instrumented_decode",
    "min1_min2",
    "scale_magnitude_fixed",
    "scale_magnitude_float",
    "sign_with_zero_positive",
    "decode",
    "decode_many",
]
