"""Column-layered (vertical shuffled) scaled min-sum decoding.

The row-layered schedule (:mod:`repro.decoder.layered`, the paper's
Algorithm 1) sweeps *block rows*: one layer update reads the layer's P
entries, refreshes every edge of that layer, and writes the whole layer
back.  The column-layered schedule of Cui, Wang & Cui ("Reduced-
complexity column-layered decoding...", IET Commun. 2011) sweeps *block
columns* instead: processing block column ``j`` visits every layer
incident to ``j`` and refreshes only the edges of column ``j``, so each
variable node's a-posteriori value is updated ``deg(v)`` times per
iteration and newly sharpened column beliefs propagate *within* a layer
sweep rather than only between layers.

Memory-access contrast with the paper's architecture: the row-layered
datapath streams one R word per edge of one layer and hits each P word
once per layer (the two-port P SRAM pattern of Fig 5); the
column-layered datapath holds one P word (z LLRs) hot across all of its
incident layers and re-derives each check's min/sign state per visit —
trading repeated check evaluation (degree x arithmetic) for single-
column P traffic, which is why the hardware literature pairs it with
compressed per-check state (min1/min2/index).  This software model
keeps the uncompressed re-evaluation form so the arithmetic stays
step-for-step comparable with the row-layered kernels: on a converged
frame both schedules settle on the same codeword, and the randomized
differential suite (``tests/test_decoder_column_layered.py``) pins the
per-frame/batch bit-exactness contract.

Both arithmetic modes mirror :class:`LayeredMinSumDecoder` exactly
(float doubles; bit-accurate 8-bit two's-complement with symmetric
saturation and the shift-add 0.75 scaler), so the batch form
(:mod:`repro.serve.column`) can be proven bit-exact against this
reference the same way the row kernels are.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.plan import column_adjacency, get_plan
from repro.channel.quantize import MESSAGE_8BIT, FixedPointFormat
from repro.codes.qc import QCLDPCCode
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS
from repro.decoder.minsum import (
    SCALING_FACTOR,
    min1_min2,
    scale_magnitude_fixed,
    sign_with_zero_positive,
)
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError
from repro.utils.bitops import hard_decision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.trace import TraceRecorder

__all__ = ["ColumnLayeredMinSumDecoder"]


class ColumnLayeredMinSumDecoder(object):
    """Column-layered scaled min-sum decoder for QC-LDPC codes.

    Parameters
    ----------
    code:
        The QC-LDPC code to decode.
    max_iterations:
        Full-sweep budget (one iteration = one pass over all block
        columns).
    scaling_factor:
        Check-message scaling, float mode only (paper: 0.75).
    fixed:
        Use bit-accurate fixed-point arithmetic.
    fmt:
        Fixed-point message format (default: the paper's 8-bit format).
    early_termination:
        Stop as soon as all parity checks pass at an iteration boundary.
    column_order:
        Optional permutation of block-column indices per iteration
        (default: natural order).
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder`; emits
        ``decode.frame`` / ``decode.iteration`` spans (column sweeps are
        too fine-grained to span individually).
    """

    def __init__(
        self,
        code: QCLDPCCode,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        scaling_factor: float = SCALING_FACTOR,
        fixed: bool = False,
        fmt: FixedPointFormat = MESSAGE_8BIT,
        early_termination: bool = True,
        column_order: Optional[Sequence[int]] = None,
        recorder: "Optional[TraceRecorder]" = None,
    ) -> None:
        if max_iterations < 1:
            raise DecodingError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0.0 < scaling_factor <= 1.0:
            raise DecodingError(
                f"scaling_factor must be in (0, 1], got {scaling_factor}"
            )
        self.code = code
        self.max_iterations = max_iterations
        self.scaling_factor = scaling_factor
        self.fixed = fixed
        self.fmt = fmt
        self.early_termination = early_termination
        self.recorder = recorder
        self.plan = get_plan(code)
        self.col_edges: Tuple[Tuple[Tuple[int, int], ...], ...] = (
            column_adjacency(self.plan)
        )
        if column_order is None:
            self.column_order = list(range(code.nb))
        else:
            self.column_order = [int(j) for j in column_order]
            if sorted(self.column_order) != list(range(code.nb)):
                raise DecodingError(
                    "column_order must be a permutation of the block columns"
                )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, channel_llrs: np.ndarray) -> DecodeResult:
        """Decode one frame of channel LLRs (length n, float)."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        if llrs.shape != (self.code.n,):
            raise DecodingError(
                f"LLR length {llrs.shape} != ({self.code.n},)"
            )
        if self.fixed:
            return self._run_fixed(self.fmt.quantize(llrs))
        return self._decode_float(llrs)

    def decode_codes(self, llr_codes: np.ndarray) -> DecodeResult:
        """Decode pre-quantized integer LLR codes (fixed mode only)."""
        if not self.fixed:
            raise DecodingError("decode_codes requires fixed=True")
        codes = np.asarray(llr_codes, dtype=np.int32)
        if codes.shape != (self.code.n,):
            raise DecodingError(f"code length {codes.shape} != ({self.code.n},)")
        return self._run_fixed(self.fmt.saturate(codes))

    # ------------------------------------------------------------------
    # floating-point path
    # ------------------------------------------------------------------
    def _decode_float(self, llrs: np.ndarray) -> DecodeResult:
        code = self.code
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        p = llrs.copy()
        r = [np.zeros((layer.degree, code.z)) for layer in code.layers]

        iteration_syndromes: List[int] = []
        iterations = 0
        frame_t0 = time.perf_counter() if tracing else 0.0
        for it in range(self.max_iterations):
            it_t0 = time.perf_counter() if tracing else 0.0
            for j in self.column_order:
                for l, k in self.col_edges[j]:
                    lp = self.plan.layers[l]
                    idx = lp.var_idx
                    q = p[idx] - r[l]
                    signs = sign_with_zero_positive(q)
                    min1, min2, pos1 = min1_min2(np.abs(q))
                    total_sign = np.prod(signs, axis=0, dtype=np.int64)
                    mags = np.where(lp.degree_col == pos1[None, :], min2, min1)
                    shaped = self.scaling_factor * mags
                    r_new = (total_sign[None, :] * signs) * shaped
                    # Column write-back: only block column j's edge of
                    # this layer is refreshed.
                    p[idx[k]] = q[k] + r_new[k]
                    r[l][k] = r_new[k]
            iterations += 1
            weight = int(self.code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if tracing:
                rec.complete("decode.iteration", it_t0, iteration=it,
                             syndrome=weight, mode="float")
            if self.early_termination and weight == 0:
                break
        if tracing:
            rec.complete("decode.frame", frame_t0, iterations=iterations,
                         mode="float")

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=p,
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )

    # ------------------------------------------------------------------
    # fixed-point path
    # ------------------------------------------------------------------
    def _run_fixed(self, p_codes: np.ndarray) -> DecodeResult:
        code = self.code
        fmt = self.fmt
        rec = self.recorder
        tracing = rec is not None and rec.enabled
        p = p_codes.astype(np.int32)
        r = [
            np.zeros((layer.degree, code.z), dtype=np.int32)
            for layer in code.layers
        ]

        iteration_syndromes: List[int] = []
        iterations = 0
        frame_t0 = time.perf_counter() if tracing else 0.0
        for it in range(self.max_iterations):
            it_t0 = time.perf_counter() if tracing else 0.0
            for j in self.column_order:
                for l, k in self.col_edges[j]:
                    lp = self.plan.layers[l]
                    idx = lp.var_idx
                    q = fmt.saturate(p[idx].astype(np.int64) - r[l])
                    signs = sign_with_zero_positive(q)
                    min1, min2, pos1 = min1_min2(np.abs(q))
                    total_sign = np.prod(signs, axis=0, dtype=np.int64)
                    mags = np.where(lp.degree_col == pos1[None, :], min2, min1)
                    shaped = scale_magnitude_fixed(mags)
                    r_new = (total_sign[None, :] * signs) * shaped
                    r_new = fmt.saturate(r_new)
                    p[idx[k]] = fmt.saturate(q[k].astype(np.int64) + r_new[k])
                    r[l][k] = r_new[k]
            iterations += 1
            weight = int(self.code.syndrome(hard_decision(p)).sum())
            iteration_syndromes.append(weight)
            if tracing:
                rec.complete("decode.iteration", it_t0, iteration=it,
                             syndrome=weight, mode="fixed")
            if self.early_termination and weight == 0:
                break
        if tracing:
            rec.complete("decode.frame", frame_t0, iterations=iterations,
                         mode="fixed")

        bits = hard_decision(p)
        weight = iteration_syndromes[-1]
        return DecodeResult(
            bits=bits,
            converged=weight == 0,
            iterations=iterations,
            llrs=fmt.dequantize(p),
            syndrome_weight=weight,
            iteration_syndromes=iteration_syndromes,
        )
