"""High-level one-call decode API.

``decode(code, llrs)`` covers the common case — the paper's layered
scaled min-sum with 10 iterations and early termination — while the
decoder classes remain available for repeated-use and advanced
configuration.
"""

from __future__ import annotations

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.flooding import FloodingDecoder
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS, LayeredMinSumDecoder
from repro.decoder.layered_spa import LayeredSumProductDecoder
from repro.decoder.result import DecodeResult
from repro.errors import DecodingError

_ALGORITHMS = (
    "layered-min-sum",
    "layered-sum-product",
    "flooding-min-sum",
    "flooding-sum-product",
)


def decode(
    code: QCLDPCCode,
    channel_llrs: np.ndarray,
    algorithm: str = "layered-min-sum",
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    fixed: bool = False,
) -> DecodeResult:
    """Decode one frame with a named algorithm.

    Parameters
    ----------
    code:
        The QC-LDPC code.
    channel_llrs:
        Length-n channel LLRs (positive = bit 0 more likely).
    algorithm:
        ``"layered-min-sum"`` (the paper's Algorithm 1, default),
        ``"layered-sum-product"``, ``"flooding-min-sum"``, or
        ``"flooding-sum-product"``.
    max_iterations:
        Full-iteration budget.
    fixed:
        Bit-accurate 8-bit arithmetic (layered only).
    """
    if algorithm == "layered-min-sum":
        return LayeredMinSumDecoder(
            code, max_iterations=max_iterations, fixed=fixed
        ).decode(channel_llrs)
    if fixed:
        raise DecodingError("fixed-point mode is only available for layered-min-sum")
    if algorithm == "layered-sum-product":
        return LayeredSumProductDecoder(
            code, max_iterations=max_iterations
        ).decode(channel_llrs)
    if algorithm == "flooding-min-sum":
        return FloodingDecoder(
            code, max_iterations=max_iterations, check_rule="min-sum"
        ).decode(channel_llrs)
    if algorithm == "flooding-sum-product":
        return FloodingDecoder(
            code, max_iterations=max_iterations, check_rule="sum-product"
        ).decode(channel_llrs)
    raise DecodingError(
        f"unknown algorithm {algorithm!r}; choose from {_ALGORITHMS}"
    )
