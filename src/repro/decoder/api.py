"""High-level one-call decode API.

``decode(code, llrs)`` covers the common case — the paper's layered
scaled min-sum with 10 iterations and early termination — while the
decoder classes remain available for repeated-use and advanced
configuration.  ``decode_many(code, llrs_2d)`` is the batched
counterpart: layered min-sum frames go through the vectorized batch
kernel (:mod:`repro.serve.batch`), other algorithms fall back to a
per-frame loop, and both paths share one algorithm dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.codes.qc import QCLDPCCode
from repro.decoder.flooding import FloodingDecoder
from repro.decoder.layered import DEFAULT_MAX_ITERATIONS, LayeredMinSumDecoder
from repro.decoder.layered_spa import LayeredSumProductDecoder
from repro.decoder.result import BatchDecodeResult, DecodeResult
from repro.errors import DecodingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

_ALGORITHMS = (
    "layered-min-sum",
    "layered-sum-product",
    "flooding-min-sum",
    "flooding-sum-product",
)


def _make_decoder(
    code: QCLDPCCode,
    algorithm: str,
    max_iterations: int,
    fixed: bool,
    recorder: "Optional[TraceRecorder]" = None,
):
    """Validate ``algorithm``/``fixed`` and build the per-frame decoder.

    The single dispatch point shared by :func:`decode` and
    :func:`decode_many`.  The trace recorder reaches the layered
    min-sum path only (the instrumented kernel); other algorithms
    accept but ignore it.
    """
    if algorithm not in _ALGORITHMS:
        raise DecodingError(
            f"unknown algorithm {algorithm!r}; choose from {_ALGORITHMS}"
        )
    if fixed and algorithm != "layered-min-sum":
        raise DecodingError("fixed-point mode is only available for layered-min-sum")
    if algorithm == "layered-min-sum":
        return LayeredMinSumDecoder(
            code, max_iterations=max_iterations, fixed=fixed, recorder=recorder
        )
    if algorithm == "layered-sum-product":
        return LayeredSumProductDecoder(code, max_iterations=max_iterations)
    check_rule = "min-sum" if algorithm == "flooding-min-sum" else "sum-product"
    return FloodingDecoder(code, max_iterations=max_iterations, check_rule=check_rule)


def decode(
    code: QCLDPCCode,
    channel_llrs: np.ndarray,
    algorithm: str = "layered-min-sum",
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    fixed: bool = False,
    recorder: "Optional[TraceRecorder]" = None,
) -> DecodeResult:
    """Decode one frame with a named algorithm.

    Parameters
    ----------
    code:
        The QC-LDPC code.
    channel_llrs:
        Length-n channel LLRs (positive = bit 0 more likely).
    algorithm:
        ``"layered-min-sum"`` (the paper's Algorithm 1, default),
        ``"layered-sum-product"``, ``"flooding-min-sum"``, or
        ``"flooding-sum-product"``.
    max_iterations:
        Full-iteration budget.
    fixed:
        Bit-accurate 8-bit arithmetic (layered only).
    recorder:
        Optional :class:`~repro.obs.trace.TraceRecorder` receiving
        per-iteration/per-layer wall-time spans (layered min-sum only;
        results are identical with or without it).
    """
    return _make_decoder(
        code, algorithm, max_iterations, fixed, recorder
    ).decode(channel_llrs)


def decode_many(
    code: QCLDPCCode,
    channel_llrs: np.ndarray,
    algorithm: str = "layered-min-sum",
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    fixed: bool = False,
    recorder: "Optional[TraceRecorder]" = None,
    kernel: str = "batch",
    schedule: str = "row",
) -> BatchDecodeResult:
    """Decode a ``(B, n)`` LLR matrix; rows are independent frames.

    The default algorithm runs through the vectorized batch kernel
    (bit-exact with :func:`decode` frame by frame, converged frames
    retired early); the other algorithms decode row by row and are
    repackaged into the same :class:`BatchDecodeResult`.  ``recorder``
    reaches the layered batch kernel's ``batch.iteration`` /
    ``batch.layer`` spans.  ``kernel`` selects the layered batch
    implementation: ``"batch"`` (default) or ``"fused"`` — the fused
    transposed-state kernel from :mod:`repro.accel.fused`, fastest for
    large batches and equally bit-exact.  ``schedule`` selects the
    message-passing schedule for the layered min-sum path: ``"row"``
    (the paper's layered Algorithm 1, default) or ``"column"`` — the
    column-layered (vertical shuffled) variant from
    :mod:`repro.serve.column`; the column schedule has its own kernel,
    so it composes only with ``kernel="batch"``.
    """
    if kernel not in ("batch", "fused"):
        raise DecodingError(
            f"kernel must be 'batch' or 'fused', got {kernel!r}"
        )
    if schedule not in ("row", "column"):
        raise DecodingError(
            f"schedule must be 'row' or 'column', got {schedule!r}"
        )
    if schedule == "column" and kernel != "batch":
        raise DecodingError(
            "schedule='column' has a dedicated kernel; combine it with "
            f"kernel='batch', not {kernel!r}"
        )
    if schedule == "column" and algorithm != "layered-min-sum":
        raise DecodingError(
            "schedule='column' is only available for layered-min-sum"
        )
    llrs = np.asarray(channel_llrs, dtype=np.float64)
    if llrs.ndim != 2 or llrs.shape[1] != code.n:
        raise DecodingError(f"LLR matrix shape {llrs.shape} != (B, {code.n})")
    # Validate algorithm/fixed exactly as decode() does, for every path.
    decoder = _make_decoder(code, algorithm, max_iterations, fixed, recorder)

    if algorithm == "layered-min-sum":
        # Imported here: repro.serve imports repro.decoder at load time.
        if schedule == "column":
            from repro.serve.column import ColumnBatchLayeredMinSumDecoder

            batch_cls = ColumnBatchLayeredMinSumDecoder
        elif kernel == "fused":
            from repro.accel.fused import FusedBatchLayeredMinSumDecoder

            batch_cls = FusedBatchLayeredMinSumDecoder
        else:
            from repro.serve.batch import BatchLayeredMinSumDecoder

            batch_cls = BatchLayeredMinSumDecoder
        return batch_cls(
            code, max_iterations=max_iterations, fixed=fixed, recorder=recorder
        ).decode(llrs)

    results = [decoder.decode(row) for row in llrs]
    return BatchDecodeResult(
        bits=np.stack([r.bits for r in results])
        if results
        else np.zeros((0, code.n), dtype=np.uint8),
        converged=np.array([r.converged for r in results], dtype=bool),
        iterations=np.array([r.iterations for r in results], dtype=np.int64),
        llrs=np.stack([r.llrs for r in results])
        if results
        else np.zeros((0, code.n), dtype=np.float64),
        syndrome_weights=np.array(
            [r.syndrome_weight for r in results], dtype=np.int64
        ),
        iteration_syndromes=[list(r.iteration_syndromes) for r in results],
        max_iterations=max_iterations,
    )
