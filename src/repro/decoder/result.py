"""Decode outcome record shared by every decoder in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class DecodeResult(object):
    """Outcome of one codeword decode.

    Attributes
    ----------
    bits:
        Hard-decision codeword estimate (length n).
    converged:
        True iff all parity checks were satisfied at exit.
    iterations:
        Number of *full* iterations executed (early termination makes
        this smaller than the configured maximum; it drives the
        latency/throughput numbers of the architecture models).
    llrs:
        Final a-posteriori values P_n (float, dequantized for the
        fixed-point decoder).
    syndrome_weight:
        Number of unsatisfied checks at exit (0 when ``converged``).
    iteration_syndromes:
        Unsatisfied-check count after each completed iteration; useful
        for convergence plots and for validating early termination.
    """

    bits: np.ndarray
    converged: bool
    iterations: int
    llrs: np.ndarray
    syndrome_weight: int
    iteration_syndromes: List[int] = field(default_factory=list)

    def message_bits(self, k: int) -> np.ndarray:
        """The systematic payload (first ``k`` positions)."""
        return self.bits[:k].copy()
