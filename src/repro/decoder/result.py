"""Decode outcome record shared by every decoder in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class DecodeResult(object):
    """Outcome of one codeword decode.

    Attributes
    ----------
    bits:
        Hard-decision codeword estimate (length n).
    converged:
        True iff all parity checks were satisfied at exit.
    iterations:
        Number of *full* iterations executed (early termination makes
        this smaller than the configured maximum; it drives the
        latency/throughput numbers of the architecture models).
    llrs:
        Final a-posteriori values P_n (float, dequantized for the
        fixed-point decoder).
    syndrome_weight:
        Number of unsatisfied checks at exit (0 when ``converged``).
    iteration_syndromes:
        Unsatisfied-check count after each completed iteration; useful
        for convergence plots and for validating early termination.
    """

    bits: np.ndarray
    converged: bool
    iterations: int
    llrs: np.ndarray
    syndrome_weight: int
    iteration_syndromes: List[int] = field(default_factory=list)

    def message_bits(self, k: int) -> np.ndarray:
        """The systematic payload (first ``k`` positions)."""
        return self.bits[:k].copy()


@dataclass
class BatchDecodeResult(object):
    """Outcome of decoding a batch of ``B`` codewords at once.

    Row ``i`` of every array describes frame ``i`` of the input LLR
    matrix; :meth:`frame` / :meth:`per_frame` convert rows back into the
    per-frame :class:`DecodeResult` the rest of the package consumes.

    Attributes
    ----------
    bits:
        ``(B, n)`` hard-decision codeword estimates.
    converged:
        ``(B,)`` bool, True where all parity checks passed.
    iterations:
        ``(B,)`` full iterations executed per frame (early retirement
        makes these smaller than ``max_iterations``).
    llrs:
        ``(B, n)`` final a-posteriori values (dequantized in fixed mode).
    syndrome_weights:
        ``(B,)`` unsatisfied-check counts at exit.
    iteration_syndromes:
        Per frame, the unsatisfied-check count after each completed
        iteration (length = that frame's ``iterations``).
    max_iterations:
        The iteration budget the batch ran under; together with
        ``iterations`` it yields :attr:`iterations_saved`.
    """

    bits: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    llrs: np.ndarray
    syndrome_weights: np.ndarray
    iteration_syndromes: List[List[int]] = field(default_factory=list)
    max_iterations: int = 0

    def __len__(self) -> int:
        return int(self.bits.shape[0])

    @property
    def num_converged(self) -> int:
        """Number of frames whose parity checks all passed."""
        return int(np.count_nonzero(self.converged))

    @property
    def iterations_saved(self) -> int:
        """Iterations avoided by early retirement of converged frames."""
        if self.max_iterations <= 0:
            return 0
        saved = self.max_iterations - self.iterations[self.converged]
        return int(saved.sum())

    def frame(self, i: int) -> DecodeResult:
        """Frame ``i`` as a per-frame :class:`DecodeResult`."""
        syndromes = (
            list(self.iteration_syndromes[i])
            if i < len(self.iteration_syndromes)
            else []
        )
        return DecodeResult(
            bits=self.bits[i].copy(),
            converged=bool(self.converged[i]),
            iterations=int(self.iterations[i]),
            llrs=self.llrs[i].copy(),
            syndrome_weight=int(self.syndrome_weights[i]),
            iteration_syndromes=syndromes,
        )

    def per_frame(self) -> List[DecodeResult]:
        """All frames as per-frame results, in batch order."""
        return [self.frame(i) for i in range(len(self))]
